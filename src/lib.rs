#![warn(missing_docs)]

//! # tossup-wl — Toss-up Wear Leveling for Phase-Change Memories
//!
//! A full reproduction of *Toss-up Wear Leveling: Protecting Phase-Change
//! Memories from Inconsistent Write Patterns* (Zhang & Sun, DAC 2017) as a
//! Rust workspace. This facade crate re-exports the public APIs of every
//! subsystem so applications can depend on a single crate.
//!
//! ## Subsystems
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rng`] | `twl-rng` | Feistel hardware RNG, simulation PRNGs |
//! | [`cache`] | `twl-cache` | Table 1's L1/L2 cache hierarchy |
//! | [`pcm`] | `twl-pcm` | PCM device model with process-variation endurance |
//! | [`wl`] | `twl-wl-core` | `WearLeveler` trait, tables, NOWL baseline |
//! | [`twl`] | `twl-core` | Toss-up Wear Leveling (the paper's contribution) |
//! | [`baselines`] | `twl-baselines` | Security Refresh, BWL, WRL, Start-Gap |
//! | [`attacks`] | `twl-attacks` | repeat/random/scan/inconsistent attacks |
//! | [`workloads`] | `twl-workloads` | PARSEC-like synthetic traces |
//! | [`memctrl`] | `twl-memctrl` | Memory-controller timing model |
//! | [`faults`] | `twl-faults` | Cell faults, ECP correction, page retirement |
//! | [`lifetime`] | `twl-lifetime` | Lifetime simulation & calibration |
//! | [`telemetry`] | `twl-telemetry` | Metrics, wear sampling, JSONL traces |
//!
//! ## Quickstart
//!
//! ```
//! use tossup_wl::pcm::{PcmConfig, PcmDevice};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = PcmConfig::builder()
//!     .pages(1024)
//!     .mean_endurance(10_000)
//!     .seed(42)
//!     .build()?;
//! let device = PcmDevice::new(&config);
//! assert_eq!(device.page_count(), 1024);
//! # Ok(())
//! # }
//! ```

pub use twl_attacks as attacks;
pub use twl_baselines as baselines;
pub use twl_cache as cache;
pub use twl_core as twl;
pub use twl_faults as faults;
pub use twl_lifetime as lifetime;
pub use twl_memctrl as memctrl;
pub use twl_pcm as pcm;
pub use twl_rng as rng;
pub use twl_telemetry as telemetry;
pub use twl_wl_core as wl;
pub use twl_workloads as workloads;
