//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! just enough of serde's public surface for the workspace to compile:
//! the `Serialize` / `Deserialize` trait *names* and the matching derive
//! macros (which expand to nothing — see `serde_derive`). No code in the
//! workspace bounds on these traits; structured export is handled by
//! `twl-telemetry`'s own JSONL writer.

pub use serde_derive::{Deserialize, Serialize};

/// Name-compatible marker for serde's `Serialize` trait.
pub trait Serialize {}

/// Name-compatible marker for serde's `Deserialize` trait.
pub trait Deserialize<'de> {}
