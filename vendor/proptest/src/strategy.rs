//! Value-generation strategies: the sampled (non-shrinking) core.

use std::ops::Range;

/// Deterministic generator used by the runner (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a property name, so every run of a given
    /// test sees the same case sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and rust versions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; `hi` must exceed `lo`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty sample range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is fine here: the bias of
        // a 64-bit reduction over test-sized spans is immaterial.
        lo + (((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64)
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (API parity helper).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_in_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a full-domain uniform strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform strategy over `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps the given arms; panics if empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_in_range(0, self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);
