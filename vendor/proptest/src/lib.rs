//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate
//! re-implements the slice of proptest's API the workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with ranges / tuples /
//! `any` / `Just` / `prop_map` / `prop_oneof!`, [`collection::vec`], the
//! `prop_assert*` macros, and [`test_runner::ProptestConfig`].
//!
//! Semantics are deliberately simple: each property runs for
//! `ProptestConfig::cases` deterministic pseudo-random cases (seeded from
//! the property's name, so failures reproduce across runs). There is no
//! shrinking — a failing case panics with the values that produced it
//! still visible in the assertion message.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Supports the same shape the real crate does for the workspace's
/// tests: an optional `#![proptest_config(..)]` header followed by any
/// number of `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::strategy::TestRng::from_name(stringify!($name));
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            // Cap total attempts so a property that rejects almost every
            // input terminates instead of spinning.
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __executed < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __executed += 1;
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Rejects the current case (it is skipped, not failed) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Picks uniformly between the given strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::OneOf::new(__arms)
    }};
}
