//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Produces vectors whose length is uniform in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.end > size.start, "empty vec length range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.next_in_range(self.size.start as u64, self.size.end as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
