//! Runner configuration and control-flow types.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// The real crate's default of 256 cases.
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Reject;
