//! Offline stand-in for `rand`.
//!
//! `twl-rng` implements [`RngCore`] for its generators so they compose
//! with the wider rand ecosystem; in this offline build environment the
//! trait itself is all that is needed, so this crate carries a
//! signature-compatible definition and nothing else.

use std::fmt;

/// Signature-compatible subset of `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest`, reporting failure through `Err` (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Signature-compatible stand-in for `rand::Error`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}
