//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, and nothing in the
//! workspace ever serializes through serde's trait machinery — the
//! `#[derive(Serialize, Deserialize)]` attributes only exist so the types
//! stay source-compatible with the real serde. The derives therefore
//! expand to nothing at all; JSON export in this workspace goes through
//! `twl-telemetry`'s hand-rolled writer instead.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
