//! Offline stand-in for `criterion`.
//!
//! Provides the API slice `twl-bench`'s micro benchmarks use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], `criterion_group!` / `criterion_main!` —
//! backed by a simple wall-clock harness: each benchmark is warmed up,
//! then timed over enough iterations to fill a fixed measurement window,
//! and the mean ns/iter is printed. Under `cargo test` (which invokes
//! bench binaries with `--test`) every benchmark runs exactly once as a
//! smoke test, as the real criterion does.

use std::time::{Duration, Instant};

const WARM_UP: Duration = Duration::from_millis(80);
const MEASURE: Duration = Duration::from_millis(320);

/// How batched inputs are sized (accepted for API parity; the harness
/// always runs one setup per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine invocation.
    PerIteration,
}

/// Units-of-work declaration used to annotate throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness from the process arguments (`--test` runs each
    /// benchmark once; a bare string filters benchmarks by substring).
    #[must_use]
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                other if !other.starts_with('-') => filter = Some(other.to_owned()),
                _ => {}
            }
        }
        Self { test_mode, filter }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.to_owned(),
            throughput: None,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let test_mode = self.test_mode;
        if self.matches(name) {
            run_benchmark(name, None, test_mode, f);
        }
        self
    }

    /// Prints the trailing summary line.
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("benchmarks complete");
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f))
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares units of work per routine call for ns/unit reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        if self.criterion.matches(&full) {
            run_benchmark(&full, self.throughput, self.criterion.test_mode, f);
        }
        self
    }

    /// Ends the group (statistics are per-benchmark, so this only exists
    /// for API parity).
    pub fn finish(self) {}
}

fn run_benchmark(
    name: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        test_mode,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("{name}: ok (smoke)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            println!("{name}: {:.1} ns/iter ({:.1} ns/elem)", ns, ns / n as f64);
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            println!("{name}: {:.1} ns/iter ({:.1} ns/byte)", ns, ns / n as f64);
        }
        _ => println!("{name}: {ns:.1} ns/iter"),
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters = 1;
            return;
        }
        let warm_end = Instant::now() + WARM_UP;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        let warm_end = Instant::now() + WARM_UP;
        while Instant::now() < warm_end {
            std::hint::black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
