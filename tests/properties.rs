//! Property-based tests over the workspace's core invariants.
//!
//! The single most important invariant in a wear-leveling simulator is
//! that *every scheme's logical→physical mapping remains a bijection
//! under arbitrary traffic* — a broken mapping silently corrupts data
//! in a real device and silently mis-measures wear in a simulator. The
//! properties here drive every scheme with arbitrary write sequences
//! and check the permutation, plus conservation laws (every device
//! write accounted) and the statistical contracts of the substrate
//! (Feistel bijectivity, toss-up proportions, Zipf calibration).

use proptest::prelude::*;
use std::collections::HashSet;
use tossup_wl::lifetime::{build_scheme, SchemeKind};
use tossup_wl::pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
use tossup_wl::rng::{FeistelPermutation, SimRng, SplitMix64};
use tossup_wl::workloads::{zipf_alpha_for_hot_share, Zipf};

const PAGES: u64 = 64;

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Nowl),
        Just(SchemeKind::Sr),
        Just(SchemeKind::Bwl),
        Just(SchemeKind::Wrl),
        Just(SchemeKind::StartGap),
        Just(SchemeKind::TwlSwp),
        Just(SchemeKind::TwlAp),
    ]
}

proptest! {
    /// Any scheme, any write sequence: the mapping stays a permutation
    /// and every logical page is readable where the scheme says it is.
    #[test]
    fn mapping_stays_bijective(
        kind in scheme_strategy(),
        seed in 0u64..1000,
        writes in proptest::collection::vec(0u64..PAGES, 1..400),
    ) {
        let pcm = PcmConfig::builder()
            .pages(PAGES)
            .mean_endurance(1_000_000)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut device = PcmDevice::new(&pcm);
        let mut scheme = build_scheme(kind, &device).expect("builds");
        let logical = scheme.page_count();
        for &w in &writes {
            scheme.write(LogicalPageAddr::new(w % logical), &mut device).expect("no wear-out");
        }
        let mapped: HashSet<u64> = (0..logical)
            .map(|l| scheme.translate(LogicalPageAddr::new(l)).index())
            .collect();
        prop_assert_eq!(mapped.len() as u64, logical, "translation must stay injective");
        for l in 0..logical {
            let pa = scheme.translate(LogicalPageAddr::new(l));
            prop_assert!(pa.index() < PAGES, "translation must stay in the device");
        }
    }

    /// Conservation: the scheme's accounting of device writes matches
    /// the device's own counters exactly, for every scheme.
    #[test]
    fn device_writes_are_conserved(
        kind in scheme_strategy(),
        seed in 0u64..1000,
        writes in proptest::collection::vec(0u64..PAGES, 1..300),
    ) {
        let pcm = PcmConfig::builder()
            .pages(PAGES)
            .mean_endurance(1_000_000)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut device = PcmDevice::new(&pcm);
        let mut scheme = build_scheme(kind, &device).expect("builds");
        let logical = scheme.page_count();
        for &w in &writes {
            scheme.write(LogicalPageAddr::new(w % logical), &mut device).expect("no wear-out");
        }
        prop_assert_eq!(scheme.stats().device_writes, device.total_writes());
        prop_assert_eq!(scheme.stats().logical_writes, writes.len() as u64);
        prop_assert!(scheme.stats().device_writes >= scheme.stats().logical_writes);
    }

    /// The Feistel permutation is a bijection with an exact inverse for
    /// any key, width, and round count.
    #[test]
    fn feistel_is_bijective(
        key in any::<u64>(),
        bits in (1u32..8).prop_map(|b| b * 2),
        rounds in 1u32..8,
        probe in any::<u64>(),
    ) {
        let perm = FeistelPermutation::new(bits, key, rounds);
        let v = probe & (perm.domain() - 1);
        prop_assert!(perm.permute(v) < perm.domain());
        prop_assert_eq!(perm.invert(perm.permute(v)), v);
    }

    /// `bernoulli_ratio` is unbiased: over many draws the hit rate
    /// approaches num/den for arbitrary ratios.
    #[test]
    fn bernoulli_ratio_is_unbiased(seed in any::<u64>(), num in 0u64..100, extra in 1u64..100) {
        let den = num + extra;
        let mut rng = SplitMix64::seed_from(seed);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| rng.bernoulli_ratio(num, den)).count();
        let p = hits as f64 / trials as f64;
        let expect = num as f64 / den as f64;
        // Binomial std dev is at most 0.5/sqrt(n) ≈ 0.0035; allow 6σ.
        prop_assert!((p - expect).abs() < 0.022, "p {p} vs {expect}");
    }

    /// Zipf calibration: the solved exponent reproduces the requested
    /// hottest-page share across the Table 2 range.
    #[test]
    fn zipf_calibration_roundtrips(share_ppm in 600u64..100_000, footprint in 64u64..4096) {
        let share = share_ppm as f64 / 1_000_000.0;
        prop_assume!(share > 1.5 / footprint as f64);
        let alpha = zipf_alpha_for_hot_share(share, footprint);
        let achieved = Zipf::new(footprint, alpha).hottest_share();
        prop_assert!((achieved - share).abs() / share < 0.03,
            "share {share} footprint {footprint} -> alpha {alpha} -> {achieved}");
    }

    /// Endurance maps are always positive and exactly sized.
    #[test]
    fn endurance_maps_are_well_formed(pages in 1u64..256, seed in any::<u64>()) {
        let pages = pages * 2;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(10_000)
            .seed(seed)
            .build()
            .expect("valid config");
        let device = PcmDevice::new(&pcm);
        let map = device.endurance_map();
        prop_assert_eq!(map.len() as u64, pages);
        prop_assert!(map.min() >= 1);
        prop_assert!(map.total() >= u128::from(pages));
    }
}

/// The TWL toss allocates request traffic in proportion to endurance —
/// checked as a statistical property over a wide ratio range.
#[test]
fn toss_up_requests_follow_endurance_ratio() {
    use tossup_wl::pcm::EnduranceMap;
    use tossup_wl::twl::{PairingStrategy, TossUpWearLeveling, TwlConfig};
    use tossup_wl::wl::WearLeveler;

    for (e_a, e_b) in [
        (1_000_000, 1_000_000),
        (3_000_000, 1_000_000),
        (9_000_000, 1_000_000),
    ] {
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(10_000_000)
            .sigma_fraction(0.0)
            .build()
            .expect("valid config");
        let endurance = EnduranceMap::from_values(vec![e_a, e_b]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        let config = TwlConfig::builder()
            .toss_up_interval(1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .build()
            .expect("valid TWL config");
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let n = 60_000u64;
        let mut to_a = 0u64;
        for _ in 0..n {
            let out = twl
                .write(LogicalPageAddr::new(0), &mut device)
                .expect("healthy");
            if out.pa.index() == 0 {
                to_a += 1;
            }
        }
        let measured = to_a as f64 / n as f64;
        let expected = e_a as f64 / (e_a + e_b) as f64;
        assert!(
            (measured - expected).abs() < 0.02,
            "E ratio {e_a}/{e_b}: measured {measured}, expected {expected}"
        );
    }
}
