//! Reproduces the paper's worked 4-page example *exactly*:
//!
//! * **Fig. 1** — wear-rate leveling's prediction–swap–running flow on a
//!   4-page PCM with ET = (40, 60, 80, 120) and WNT = (9, 4, 4, 2):
//!   after the swap phase, hot `LA1` sits on strong `PA4` and cold
//!   `LA4` on weak `PA1`.
//! * **Fig. 3** — the inconsistent-write attack: repeating the same
//!   prediction-phase distribution, then reversing it (90 writes to the
//!   now-weak-parked address) wears out `PA1`.
//!
//! The paper's indices are 1-based; this test uses 0-based `LA0..LA3` /
//! `PA0..PA3` with the same roles (paper's LA1 = our LA0, etc.).

use tossup_wl::baselines::{WearRateLeveling, WrlConfig};
use tossup_wl::pcm::{EnduranceMap, LogicalPageAddr, PcmConfig, PcmDevice, PhysicalPageAddr};
use tossup_wl::wl::WearLeveler;

/// Fig. 1(b)'s write-number table: LA0 is hot (9), LA3 cold (2).
const WNT: [u64; 4] = [9, 4, 4, 2];

fn paper_device() -> PcmDevice {
    let pcm = PcmConfig::builder()
        .pages(4)
        .mean_endurance(100)
        .sigma_fraction(0.0)
        .build()
        .expect("valid 4-page config");
    // Fig. 1(b)'s endurance table: PA0 weakest (40) … PA3 strongest (120).
    PcmDevice::with_endurance(&pcm, EnduranceMap::from_values(vec![40, 60, 80, 120]))
}

fn paper_wrl() -> WearRateLeveling {
    let config = WrlConfig {
        prediction_writes: WNT.iter().sum(),
        running_multiple: 10,
        swap_top_k: 1,
        table_latency: 10,
    };
    WearRateLeveling::new(&config, 4)
}

/// Emits one prediction phase of Fig. 1(b)'s distribution.
fn run_prediction(wrl: &mut WearRateLeveling, device: &mut PcmDevice) {
    for (i, &w) in WNT.iter().enumerate() {
        for _ in 0..w {
            wrl.write(LogicalPageAddr::new(i as u64), device)
                .expect("prediction phase is survivable");
        }
    }
}

#[test]
fn fig1_swap_parks_hot_on_strong_and_cold_on_weak() {
    let mut device = paper_device();
    let mut wrl = paper_wrl();
    run_prediction(&mut wrl, &mut device);
    assert_eq!(wrl.swap_phases(), 1, "prediction phase must end in a swap");
    // Fig. 1(c): LA1 -> PA4 and LA4 -> PA1 (paper 1-based).
    assert_eq!(
        wrl.translate(LogicalPageAddr::new(0)),
        PhysicalPageAddr::new(3),
        "hot LA must move to the strongest frame"
    );
    assert_eq!(
        wrl.translate(LogicalPageAddr::new(3)),
        PhysicalPageAddr::new(0),
        "cold LA must move to the weakest frame"
    );
    // The middle pages stay put.
    assert_eq!(wrl.translate(LogicalPageAddr::new(1)).index(), 1);
    assert_eq!(wrl.translate(LogicalPageAddr::new(2)).index(), 2);
}

#[test]
fn fig3_reversal_wears_out_the_weak_frame() {
    let mut device = paper_device();
    let mut wrl = paper_wrl();
    // Step-1 (Fig. 3a) = the prediction distribution, ending in the swap.
    run_prediction(&mut wrl, &mut device);
    let weak = PhysicalPageAddr::new(0);
    let victim = LogicalPageAddr::new(3);
    assert_eq!(wrl.translate(victim), weak);

    // Step-2 (Fig. 3b): "Send (write, LA4, data) 90 times". PA1 already
    // absorbed the prediction writes; 90 more exceed its endurance of 40.
    let mut failed_at = None;
    for i in 0..90u64 {
        if let Err(e) = wrl.write(victim, &mut device) {
            failed_at = Some((i, e));
            break;
        }
    }
    let (writes_taken, error) = failed_at.expect("the weak page must die within 90 writes");
    assert!(
        error.to_string().contains("PA0"),
        "the wear-out must be at the weak frame: {error}"
    );
    // PA0's budget after prediction: 40 - (9 writes to LA0 while it
    // lived there + migrations). The attack needs well under 90 writes.
    assert!(writes_taken < 40, "died after {writes_taken} attack writes");
    assert_eq!(device.first_failure(), Some(weak));
}

#[test]
fn fig1_expected_write_capacity_of_the_new_mapping() {
    // Fig. 1(c) annotates the running phase's expectation: with the
    // consistent distribution, each frame can absorb ~10 more rounds of
    // its logical page's rate. Verify the mapping survives exactly the
    // consistent running phase the paper assumes (10x prediction).
    let mut device = paper_device();
    let mut wrl = paper_wrl();
    run_prediction(&mut wrl, &mut device);
    for _ in 0..2 {
        // Two of the ten running rounds — enough to validate without
        // exhausting PA0 (whose budget is dominated by prediction wear).
        for (i, &w) in WNT.iter().enumerate() {
            for _ in 0..w {
                wrl.write(LogicalPageAddr::new(i as u64), &mut device)
                    .expect("a consistent distribution must be sustainable");
            }
        }
    }
    // Strong PA3 now carries the hot page's traffic.
    assert!(device.wear(PhysicalPageAddr::new(3)) > device.wear(PhysicalPageAddr::new(1)));
}
