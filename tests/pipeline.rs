//! End-to-end pipeline tests spanning every substrate: CPU accesses
//! through the cache hierarchy into a wear-leveled device, checkpointed
//! simulations, and the attack monitor running beside a live attack.

use tossup_wl::attacks::{Attack, AttackKind, AttackStream};
use tossup_wl::cache::{CacheHierarchy, CpuWorkload, CpuWorkloadConfig};
use tossup_wl::lifetime::{build_scheme, SchemeKind};
use tossup_wl::pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
use tossup_wl::twl::{TossUpWearLeveling, TwlConfig};
use tossup_wl::wl::{AttackMonitor, WearLeveler};

#[test]
fn cpu_to_cache_to_twl_pipeline_runs_clean() {
    let pages = 512u64;
    let pcm = PcmConfig::builder()
        .pages(pages)
        .mean_endurance(1_000_000)
        .seed(2)
        .build()
        .expect("valid config");
    let mut device = PcmDevice::new(&pcm);
    let mut twl = TossUpWearLeveling::new(&TwlConfig::dac17(), device.endurance_map());
    let mut hierarchy = CacheHierarchy::dac17(pcm.page_size_bytes);
    // Footprint 4x the L2 capacity, so dirty lines actually evict and
    // produce PCM write-backs (addresses wrap onto the smaller device).
    let mut cpu = CpuWorkload::new(&CpuWorkloadConfig {
        footprint_bytes: 8 * 1024 * 1024,
        region_alpha: 1.0,
        mean_burst: 16,
        write_fraction: 0.4,
        seed: 5,
    });

    let mut pcm_writes = 0u64;
    for _ in 0..300_000 {
        let (addr, is_write) = cpu.next_access();
        for cmd in hierarchy.access(addr, is_write) {
            let la = LogicalPageAddr::new(cmd.la.index() % pages);
            if cmd.is_write() {
                twl.write(la, &mut device).expect("healthy device");
                pcm_writes += 1;
            } else {
                twl.read(la, &device).expect("valid read");
            }
        }
    }
    let stats = hierarchy.stats();
    assert!(
        stats.l1.hit_rate() > 0.5,
        "L1 must filter: {}",
        stats.l1.hit_rate()
    );
    assert!(pcm_writes > 0, "some write-backs must reach PCM");
    assert!(
        stats.memory_traffic_ratio() < 0.5,
        "the caches must absorb most traffic: {}",
        stats.memory_traffic_ratio()
    );
    assert!(twl.remapping_table().is_bijective());
    assert_eq!(twl.stats().device_writes, device.total_writes());
}

#[test]
fn checkpointed_run_matches_uninterrupted_run() {
    let pcm = PcmConfig::builder()
        .pages(128)
        .mean_endurance(5_000)
        .seed(9)
        .build()
        .expect("valid config");

    // Uninterrupted run: 30k scan writes.
    let mut device_a = PcmDevice::new(&pcm);
    let mut scheme_a = build_scheme(SchemeKind::Sr, &device_a).expect("builds");
    for i in 0..30_000u64 {
        scheme_a
            .write(LogicalPageAddr::new(i % 128), &mut device_a)
            .expect("healthy");
    }

    // Same run with a device checkpoint in the middle. The scheme's own
    // state is cloneable too, but here we restart the *device* from a
    // snapshot and keep driving the same scheme object.
    let mut device_b = PcmDevice::new(&pcm);
    let mut scheme_b = build_scheme(SchemeKind::Sr, &device_b).expect("builds");
    for i in 0..15_000u64 {
        scheme_b
            .write(LogicalPageAddr::new(i % 128), &mut device_b)
            .expect("healthy");
    }
    let mut device_b = PcmDevice::restore(device_b.snapshot()).expect("valid snapshot");
    for i in 15_000..30_000u64 {
        scheme_b
            .write(LogicalPageAddr::new(i % 128), &mut device_b)
            .expect("healthy");
    }

    assert_eq!(device_a.total_writes(), device_b.total_writes());
    assert_eq!(device_a.wear_counters(), device_b.wear_counters());
}

#[test]
fn monitor_flags_a_live_inconsistent_attack_but_not_parsec() {
    use tossup_wl::workloads::ParsecBenchmark;

    let pages = 1024u64;
    let pcm = PcmConfig::builder()
        .pages(pages)
        .mean_endurance(100_000_000)
        .seed(3)
        .build()
        .expect("valid config");

    // Attack stream through a real scheme, monitor alongside.
    let mut device = PcmDevice::new(&pcm);
    let mut scheme = build_scheme(SchemeKind::TwlSwp, &device).expect("builds");
    let mut attack = Attack::new(AttackKind::Inconsistent, pages, 3);
    let mut monitor = AttackMonitor::for_pages();
    let mut feedback = None;
    let mut detected = false;
    for _ in 0..100_000u64 {
        let la = attack.next_write(feedback.as_ref());
        let out = scheme.write(la, &mut device).expect("healthy");
        detected |= monitor.observe_write(la, Some(&out));
        feedback = Some(out);
    }
    assert!(detected, "the monitor must flag the inconsistent attack");

    // PARSEC stream: no alarms.
    let mut monitor = AttackMonitor::for_pages();
    let mut workload = ParsecBenchmark::Ferret.workload(pages, 3);
    for _ in 0..100_000u64 {
        assert!(
            !monitor.observe_write(workload.next_write_la(), None),
            "benign traffic must not alarm"
        );
    }
}

#[test]
fn queued_controller_ranks_schemes_like_fig9() {
    use tossup_wl::memctrl::{queued_execution, ControllerConfig, MemCtrlConfig};
    use tossup_wl::workloads::ParsecBenchmark;

    let pages = 1024u64;
    let pcm = PcmConfig::builder()
        .pages(pages)
        .mean_endurance(100_000_000)
        .seed(6)
        .build()
        .expect("valid config");
    let bench = ParsecBenchmark::Vips;
    let timing = MemCtrlConfig::for_bandwidth(bench.write_bandwidth_mbps(), 4096, 0.55);

    // In the open-loop queued model total time is arrival-dominated;
    // the scheme-discriminating observable is the read latency the CPU
    // stalls on (engine cycles + migration blocking ahead of reads).
    let read_latency = |kind: SchemeKind| -> f64 {
        let mut device = PcmDevice::new(&pcm);
        let mut scheme = build_scheme(kind, &device).expect("builds");
        let mut workload = bench.workload(pages, 6);
        queued_execution(
            &timing,
            &ControllerConfig::nvmain_like(),
            scheme.as_mut(),
            &mut device,
            &mut workload,
            100_000,
        )
        .expect("nominal endurance cannot wear out")
        .mean_read_latency
    };

    let nowl = read_latency(SchemeKind::Nowl);
    let twl = read_latency(SchemeKind::TwlSwp);
    let bwl = read_latency(SchemeKind::Bwl);
    // The queued model must agree with Fig. 9's ordering on the
    // memory-bound benchmark: NOWL <= TWL < BWL.
    assert!(twl >= nowl, "TWL {twl} vs NOWL {nowl}");
    assert!(bwl > twl, "BWL {bwl} must cost more than TWL {twl}");
}
