//! Cross-crate integration tests: full attack and workload simulations
//! exercised through the public facade, asserting the paper's headline
//! qualitative results.

use tossup_wl::attacks::{Attack, AttackKind};
use tossup_wl::lifetime::{
    build_scheme, run_attack, run_workload, Calibration, SchemeKind, SimLimits,
};
use tossup_wl::pcm::{PcmConfig, PcmDevice};
use tossup_wl::workloads::ParsecBenchmark;

const PAGES: u64 = 512;
const ENDURANCE: u64 = 10_000;

fn device(seed: u64) -> PcmDevice {
    PcmDevice::new(
        &PcmConfig::builder()
            .pages(PAGES)
            .mean_endurance(ENDURANCE)
            .seed(seed)
            .build()
            .expect("valid test config"),
    )
}

fn attack_fraction(kind: SchemeKind, attack: AttackKind, seed: u64) -> f64 {
    let mut dev = device(seed);
    let mut scheme = build_scheme(kind, &dev).expect("scheme builds");
    let mut attack = Attack::new(attack, scheme.page_count(), seed);
    run_attack(
        scheme.as_mut(),
        &mut dev,
        &mut attack,
        &SimLimits::default(),
        &Calibration::attack_8gbps(),
    )
    .capacity_fraction
}

#[test]
fn headline_result_twl_survives_the_inconsistent_attack() {
    // The paper's core claim (Fig. 6): the inconsistent-write attack
    // collapses prediction-based BWL while TWL retains most of its
    // lifetime.
    let bwl = attack_fraction(SchemeKind::Bwl, AttackKind::Inconsistent, 42);
    let twl = attack_fraction(SchemeKind::TwlSwp, AttackKind::Inconsistent, 42);
    assert!(bwl < 0.1, "BWL must collapse, got {bwl}");
    assert!(twl > 0.4, "TWL must survive, got {twl}");
    assert!(twl > 10.0 * bwl, "TWL {twl} vs BWL {bwl}");
}

#[test]
fn nowl_collapses_under_repeat_but_not_uniform_attacks() {
    let repeat = attack_fraction(SchemeKind::Nowl, AttackKind::Repeat, 42);
    let random = attack_fraction(SchemeKind::Nowl, AttackKind::Random, 42);
    assert!(repeat < 0.01, "repeat hammers one page: {repeat}");
    assert!(random > 0.3, "uniform random is self-leveling: {random}");
}

#[test]
fn every_scheme_beats_nowl_under_every_attack() {
    for attack in AttackKind::ALL {
        let nowl = attack_fraction(SchemeKind::Nowl, attack, 7);
        for scheme in [SchemeKind::Sr, SchemeKind::TwlSwp, SchemeKind::TwlAp] {
            let f = attack_fraction(scheme, attack, 7);
            assert!(
                f >= nowl * 0.95,
                "{scheme} under {attack}: {f} vs NOWL {nowl}"
            );
        }
    }
}

#[test]
fn strong_weak_pairing_beats_adjacent_on_gmean() {
    // Fig. 6's TWL_swp vs TWL_ap comparison (paper: +21.7 %).
    let mut swp = 1.0;
    let mut ap = 1.0;
    for attack in AttackKind::ALL {
        swp *= attack_fraction(SchemeKind::TwlSwp, attack, 3).max(1e-9);
        ap *= attack_fraction(SchemeKind::TwlAp, attack, 3).max(1e-9);
    }
    assert!(
        swp.powf(0.25) > ap.powf(0.25),
        "SWP gmean {} must beat AP gmean {}",
        swp.powf(0.25),
        ap.powf(0.25)
    );
}

#[test]
fn security_refresh_is_flat_across_attacks() {
    // SR's signature (Fig. 6): roughly the same lifetime under every
    // attack — it levels raw wear regardless of the pattern.
    let fractions: Vec<f64> = AttackKind::ALL
        .iter()
        .map(|&a| attack_fraction(SchemeKind::Sr, a, 42))
        .collect();
    let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
    let max = fractions.iter().copied().fold(0.0, f64::max);
    assert!(
        max / min < 1.6,
        "SR must be flat across attacks: {fractions:?}"
    );
}

#[test]
fn benign_workload_ordering_matches_fig8() {
    // Fig. 8 ordering on a PARSEC-like workload: TWL and BWL well above
    // SR, everything far above NOWL.
    let bench = ParsecBenchmark::Canneal;
    let calibration = Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps());
    let fraction = |kind: SchemeKind| {
        let mut dev = device(42);
        let mut scheme = build_scheme(kind, &dev).expect("scheme builds");
        let mut workload = bench.workload(PAGES, 42);
        run_workload(
            scheme.as_mut(),
            &mut dev,
            &mut workload,
            bench.name(),
            &SimLimits::default(),
            &calibration,
        )
        .capacity_fraction
    };
    let nowl = fraction(SchemeKind::Nowl);
    let sr = fraction(SchemeKind::Sr);
    let twl = fraction(SchemeKind::TwlSwp);
    let bwl = fraction(SchemeKind::Bwl);
    assert!(twl > sr, "TWL {twl} must beat SR {sr}");
    assert!(bwl > sr, "BWL {bwl} must beat SR {sr}");
    assert!(sr > 5.0 * nowl, "SR {sr} must crush NOWL {nowl}");
}

#[test]
fn full_runs_are_deterministic() {
    let a = attack_fraction(SchemeKind::TwlSwp, AttackKind::Inconsistent, 9);
    let b = attack_fraction(SchemeKind::TwlSwp, AttackKind::Inconsistent, 9);
    assert_eq!(a, b, "same seeds must reproduce bit-identically");
}

#[test]
fn reports_carry_consistent_accounting() {
    let mut dev = device(5);
    let mut scheme = build_scheme(SchemeKind::TwlSwp, &dev).expect("scheme builds");
    let mut attack = Attack::new(AttackKind::Scan, scheme.page_count(), 5);
    let report = run_attack(
        scheme.as_mut(),
        &mut dev,
        &mut attack,
        &SimLimits::default(),
        &Calibration::attack_8gbps(),
    );
    assert!(report.completed);
    assert!(report.device_writes >= report.logical_writes);
    assert_eq!(report.device_writes, dev.total_writes());
    assert!(report.capacity_fraction > 0.0 && report.capacity_fraction <= 1.0);
    assert!(report.years > 0.0);
    assert_eq!(report.scheme, "TWL_swp");
    assert_eq!(report.workload, "scan");
    assert!(report.failed_page.is_some());
}
