//! Round-trip properties of the workload-spec grammar: any canonical
//! [`WorkloadSpec`] survives `label → parse` and `to_json → from_json`
//! without loss, and kind labels survive `Display → FromStr` in any
//! case. These are the contracts the service wire format, checkpoint
//! files, fleet cell keys, and `twl-ctl --workloads` all lean on —
//! the workload mirror of `twl-lifetime`'s scheme-spec round trip.

use proptest::prelude::*;
use twl_attacks::AttackKind;
use twl_workloads::{
    AttackParams, ParsecBenchmark, ParsecParams, TraceParams, WorkloadKind, WorkloadParams,
    WorkloadSpec,
};

fn attack_kind_strategy() -> impl Strategy<Value = AttackKind> {
    (0u64..AttackKind::ALL.len() as u64).prop_map(|i| AttackKind::ALL[i as usize])
}

fn benchmark_strategy() -> impl Strategy<Value = ParsecBenchmark> {
    (0u64..ParsecBenchmark::ALL.len() as u64).prop_map(|i| ParsecBenchmark::ALL[i as usize])
}

/// Every kind that is canonical without parameters (TRACE needs `path`).
fn bare_kind_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        attack_kind_strategy().prop_map(WorkloadKind::Attack),
        benchmark_strategy().prop_map(WorkloadKind::Parsec),
    ]
}

fn kind_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![bare_kind_strategy(), Just(WorkloadKind::Trace)]
}

/// Makes any strategy optional: half the draws are `None`.
fn opt<S>(inner: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), inner.prop_map(Some)]
}

/// A strictly positive finite float with a round-trippable short form.
fn positive_f64() -> impl Strategy<Value = f64> {
    #[allow(clippy::cast_precision_loss)]
    (1u64..100_000_000).prop_map(|v| v as f64 / 1000.0)
}

/// A probability in `[0, 1]`.
fn fraction() -> impl Strategy<Value = f64> {
    #[allow(clippy::cast_precision_loss)]
    (0u64..1001).prop_map(|v| v as f64 / 1000.0)
}

fn attack_spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        // Repeat: only `target` applies.
        opt(0u64..10_000).prop_map(|target| WorkloadSpec {
            kind: WorkloadKind::Attack(AttackKind::Repeat),
            params: WorkloadParams::Attack(AttackParams {
                target,
                ..AttackParams::default()
            }),
        }
        .canonical()),
        // Random: only `seed` applies.
        opt(any::<u64>()).prop_map(|seed| WorkloadSpec {
            kind: WorkloadKind::Attack(AttackKind::Random),
            params: WorkloadParams::Attack(AttackParams {
                seed,
                ..AttackParams::default()
            }),
        }
        .canonical()),
        // Inconsistent: the four firehose/victim phase knobs.
        (
            opt(1u64..100_000),
            opt(2u64..100_000),
            opt(1u64..1_000_000),
            opt(1u64..1_000_000),
        )
            .prop_map(
                |(group_size, victim_stride, min_phase_writes, phase_timeout_writes)| {
                    WorkloadSpec {
                        kind: WorkloadKind::Attack(AttackKind::Inconsistent),
                        params: WorkloadParams::Attack(AttackParams {
                            group_size,
                            victim_stride,
                            min_phase_writes,
                            phase_timeout_writes,
                            ..AttackParams::default()
                        }),
                    }
                    .canonical()
                }
            ),
    ]
}

fn parsec_spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        benchmark_strategy(),
        opt(positive_f64()),
        opt(2u64..1_000_000),
        opt(fraction()),
        opt(any::<u64>()),
    )
        .prop_map(|(bench, zipf_alpha, footprint, read_fraction, seed)| {
            WorkloadSpec {
                kind: WorkloadKind::Parsec(bench),
                params: WorkloadParams::Parsec(ParsecParams {
                    zipf_alpha,
                    footprint,
                    read_fraction,
                    seed,
                }),
            }
            .canonical()
        })
}

fn trace_spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (any::<u64>(), opt(any::<u64>()), opt(positive_f64())).prop_map(
        |(stamp, seed, bandwidth_mbps)| {
            WorkloadSpec {
                kind: WorkloadKind::Trace,
                params: WorkloadParams::Trace(TraceParams {
                    path: format!("captures/run-{stamp:016x}.trace"),
                    seed,
                    bandwidth_mbps,
                }),
            }
            .canonical()
        },
    )
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        bare_kind_strategy().prop_map(WorkloadSpec::new),
        attack_spec_strategy(),
        parsec_spec_strategy(),
        trace_spec_strategy(),
    ]
}

proptest! {
    /// `label()` is parseable and parses back to the same spec.
    #[test]
    fn spec_labels_round_trip(spec in spec_strategy()) {
        spec.validate().expect("generated specs are valid");
        let label = spec.label();
        let parsed: WorkloadSpec = label
            .parse()
            .unwrap_or_else(|e| panic!("label `{label}` does not parse: {e}"));
        prop_assert_eq!(&parsed, &spec);
        // Parsing is idempotent: the reparsed spec renders the same label.
        prop_assert_eq!(parsed.label(), label);
    }

    /// The JSON codec is lossless, including through the text form.
    #[test]
    fn spec_json_round_trips(spec in spec_strategy()) {
        let encoded = spec.to_json();
        let decoded = WorkloadSpec::from_json(&encoded)
            .unwrap_or_else(|e| panic!("{spec} does not decode from its own JSON: {e}"));
        prop_assert_eq!(&decoded, &spec);
        let text = encoded.to_compact();
        let reparsed = twl_telemetry::json::Json::parse(&text)
            .unwrap_or_else(|e| panic!("compact JSON for {spec} does not reparse: {e}"));
        let redecoded = WorkloadSpec::from_json(&reparsed)
            .unwrap_or_else(|e| panic!("{spec} does not decode through text: {e}"));
        prop_assert_eq!(redecoded, spec);
    }

    /// Default specs encode as the bare kind string — the wire form
    /// every pre-WorkloadSpec frame used — and decode back losslessly.
    #[test]
    fn default_specs_encode_as_bare_strings(kind in bare_kind_strategy()) {
        let spec = WorkloadSpec::new(kind);
        let encoded = spec.to_json();
        prop_assert_eq!(encoded.to_compact(), format!("\"{}\"", kind.label()));
        prop_assert_eq!(WorkloadSpec::from_json(&encoded).unwrap(), spec);
    }

    /// Kind labels round-trip case-insensitively.
    #[test]
    fn kind_labels_round_trip(kind in kind_strategy()) {
        prop_assert_eq!(kind.label().parse::<WorkloadKind>(), Ok(kind));
        prop_assert_eq!(kind.label().to_uppercase().parse::<WorkloadKind>(), Ok(kind));
        prop_assert_eq!(kind.label().to_lowercase().parse::<WorkloadKind>(), Ok(kind));
    }
}
