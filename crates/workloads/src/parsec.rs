//! The PARSEC benchmark profiles of Table 2.

use crate::{zipf_alpha_for_hot_share, SyntheticWorkload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 13 PARSEC benchmarks the paper evaluates (Table 2), with their
/// measured write bandwidths and the paper's reported lifetimes.
///
/// Each benchmark can instantiate a calibrated [`SyntheticWorkload`]
/// whose hottest-page write share reproduces the paper's
/// `ideal / lifetime-without-WL` ratio (the locality signal Table 2
/// exposes) — see [`ParsecBenchmark::workload`].
///
/// # Examples
///
/// ```
/// use twl_workloads::ParsecBenchmark;
///
/// let vips = ParsecBenchmark::Vips;
/// assert_eq!(vips.write_bandwidth_mbps(), 3309.0);
/// assert_eq!(vips.ideal_years_paper(), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ParsecBenchmark {
    /// Option pricing (121 MB/s).
    Blackscholes,
    /// Body tracking (271 MB/s).
    Bodytrack,
    /// Simulated annealing (319 MB/s).
    Canneal,
    /// Stream deduplication (1529 MB/s).
    Dedup,
    /// Face simulation (1101 MB/s).
    Facesim,
    /// Content similarity search (1025 MB/s).
    Ferret,
    /// Fluid dynamics (1092 MB/s).
    Fluidanimate,
    /// Frequent itemset mining (491 MB/s).
    Freqmine,
    /// Raytracing (351 MB/s).
    Rtview,
    /// Online clustering (12 MB/s).
    Streamcluster,
    /// Portfolio pricing (120 MB/s).
    Swaptions,
    /// Image processing (3309 MB/s).
    Vips,
    /// Video encoding (538 MB/s).
    X264,
}

/// Table 2 row: (name, write bandwidth MB/s, ideal years, NOWL years).
type Row = (&'static str, f64, f64, f64);

impl ParsecBenchmark {
    /// All 13 benchmarks, in Table 2 order.
    pub const ALL: [ParsecBenchmark; 13] = [
        Self::Blackscholes,
        Self::Bodytrack,
        Self::Canneal,
        Self::Dedup,
        Self::Facesim,
        Self::Ferret,
        Self::Fluidanimate,
        Self::Freqmine,
        Self::Rtview,
        Self::Streamcluster,
        Self::Swaptions,
        Self::Vips,
        Self::X264,
    ];

    fn row(&self) -> Row {
        match self {
            Self::Blackscholes => ("blackscholes", 121.0, 446.0, 14.5),
            Self::Bodytrack => ("bodytrack", 271.0, 199.0, 8.0),
            Self::Canneal => ("canneal", 319.0, 169.0, 2.9),
            Self::Dedup => ("dedup", 1529.0, 35.0, 2.5),
            Self::Facesim => ("facesim", 1101.0, 49.0, 3.0),
            Self::Ferret => ("ferret", 1025.0, 52.0, 1.2),
            Self::Fluidanimate => ("fluidanimate", 1092.0, 49.0, 2.0),
            Self::Freqmine => ("freqmine", 491.0, 110.0, 6.4),
            Self::Rtview => ("rtview", 351.0, 154.0, 5.4),
            Self::Streamcluster => ("streamcluster", 12.0, 4229.0, 132.2),
            Self::Swaptions => ("swaptions", 120.0, 449.0, 12.8),
            Self::Vips => ("vips", 3309.0, 16.0, 0.9),
            Self::X264 => ("x264", 538.0, 100.0, 2.0),
        }
    }

    /// Benchmark name as printed in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.row().0
    }

    /// Measured write bandwidth in MB/s (Table 2).
    #[must_use]
    pub fn write_bandwidth_mbps(&self) -> f64 {
        self.row().1
    }

    /// Ideal lifetime in years the paper reports (Table 2).
    #[must_use]
    pub fn ideal_years_paper(&self) -> f64 {
        self.row().2
    }

    /// Lifetime without wear leveling the paper reports (Table 2).
    #[must_use]
    pub fn nowl_years_paper(&self) -> f64 {
        self.row().3
    }

    /// The `ideal / without-WL` lifetime ratio — the locality signal
    /// used to calibrate the synthetic workload's Zipf exponent.
    #[must_use]
    pub fn locality_ratio(&self) -> f64 {
        self.ideal_years_paper() / self.nowl_years_paper()
    }

    /// Builds the calibrated synthetic workload for a device of `pages`
    /// logical pages.
    ///
    /// The hottest page's write share is set to `locality_ratio / pages`
    /// (the value that makes a no-wear-leveling simulation reproduce the
    /// paper's Table 2 ratio in expectation); the footprint is half the
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is too small for the benchmark's locality ratio
    /// (needs `pages` ≳ 4 × ratio; every Table 2 ratio fits at 1024+).
    #[must_use]
    pub fn workload(&self, pages: u64, seed: u64) -> SyntheticWorkload {
        let footprint = (pages / 2).max(2);
        let hot_share = self.locality_ratio() / pages as f64;
        let alpha = zipf_alpha_for_hot_share(hot_share, footprint);
        SyntheticWorkload::new(&WorkloadConfig {
            pages,
            footprint,
            zipf_alpha: alpha,
            read_fraction: 0.55,
            seed: seed ^ (self.row().1.to_bits()),
        })
    }
}

impl fmt::Display for ParsecBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_complete_and_positive() {
        assert_eq!(ParsecBenchmark::ALL.len(), 13);
        for b in ParsecBenchmark::ALL {
            assert!(b.write_bandwidth_mbps() > 0.0);
            assert!(b.ideal_years_paper() > b.nowl_years_paper());
        }
    }

    #[test]
    fn ideal_years_follow_inverse_bandwidth_law() {
        // Table 2 satisfies ideal ≈ 53966 / BW (DESIGN.md §3); verify
        // every row to within 7 % (streamcluster is the paper's own
        // outlier at ~6 %).
        for b in ParsecBenchmark::ALL {
            let predicted = 53_966.0 / b.write_bandwidth_mbps();
            let rel = (predicted - b.ideal_years_paper()).abs() / b.ideal_years_paper();
            assert!(
                rel < 0.07,
                "{}: predicted {predicted}, paper {}",
                b,
                b.ideal_years_paper()
            );
        }
    }

    #[test]
    fn locality_ratios_span_expected_range() {
        for b in ParsecBenchmark::ALL {
            let r = b.locality_ratio();
            assert!((10.0..70.0).contains(&r), "{b}: ratio {r}");
        }
    }

    #[test]
    fn workloads_build_for_default_device() {
        for b in ParsecBenchmark::ALL {
            let mut w = b.workload(8192, 1);
            let cmd = w.next_cmd();
            assert!(cmd.la.index() < 8192);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ParsecBenchmark::Canneal.to_string(), "canneal");
    }
}
