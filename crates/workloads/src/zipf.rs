//! Zipf-distributed rank sampling.

use twl_rng::SimRng;

/// A Zipf sampler over ranks `0..n` with exponent `alpha ≥ 0`:
/// `P(rank k) ∝ 1 / (k+1)^alpha`.
///
/// Sampling uses a precomputed CDF and binary search — O(log n) per
/// draw, exact, and deterministic given the RNG.
///
/// # Examples
///
/// ```
/// use twl_rng::{SplitMix64, SimRng};
/// use twl_workloads::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SplitMix64::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    #[must_use]
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf, alpha }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the sampler has no ranks (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass of the hottest rank.
    #[must_use]
    pub fn hottest_share(&self) -> f64 {
        self.cdf[0]
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut dyn SimRng) -> u64 {
        let u = rng.next_unit_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Finds the Zipf exponent for which the hottest of `footprint` ranks
/// carries probability `hot_share`, by bisection.
///
/// This is the calibration knob that turns Table 2's
/// `ideal lifetime / lifetime-without-WL` ratio into a concrete locality
/// model: under no wear leveling, lifetime is governed by the hottest
/// page's share of the write traffic (see `twl-workloads` crate docs).
///
/// # Panics
///
/// Panics if `footprint < 2` or `hot_share` is outside the achievable
/// range `(1/footprint, ~1)`.
///
/// # Examples
///
/// ```
/// use twl_workloads::{zipf_alpha_for_hot_share, Zipf};
///
/// let alpha = zipf_alpha_for_hot_share(0.01, 4096);
/// let zipf = Zipf::new(4096, alpha);
/// assert!((zipf.hottest_share() - 0.01).abs() < 1e-4);
/// ```
#[must_use]
pub fn zipf_alpha_for_hot_share(hot_share: f64, footprint: u64) -> f64 {
    assert!(footprint >= 2, "footprint must have at least two pages");
    let min_share = 1.0 / footprint as f64;
    assert!(
        hot_share > min_share && hot_share < 0.99,
        "hot share {hot_share} unachievable over footprint {footprint}"
    );
    let share_at = |alpha: f64| Zipf::new(footprint, alpha).hottest_share();
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if share_at(mid) < hot_share {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_rng::Xoshiro256StarStar;

    #[test]
    fn alpha_zero_is_uniform() {
        let zipf = Zipf::new(16, 0.0);
        let mut rng = Xoshiro256StarStar::seed_from(1);
        let mut counts = [0u64; 16];
        for _ in 0..160_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 160_000.0;
            assert!((p - 1.0 / 16.0).abs() < 0.005, "p = {p}");
        }
    }

    #[test]
    fn empirical_share_matches_hottest_share() {
        let zipf = Zipf::new(256, 1.1);
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let n = 200_000;
        let hits = (0..n).filter(|_| zipf.sample(&mut rng) == 0).count();
        let p = hits as f64 / n as f64;
        assert!((p - zipf.hottest_share()).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn ranks_are_monotonically_less_likely() {
        let zipf = Zipf::new(64, 0.9);
        let mut rng = Xoshiro256StarStar::seed_from(7);
        let mut counts = vec![0u64; 64];
        for _ in 0..400_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Compare coarse buckets to tolerate noise.
        let head: u64 = counts[..8].iter().sum();
        let mid: u64 = counts[8..32].iter().sum();
        let tail: u64 = counts[32..].iter().sum();
        assert!(
            head > mid && mid > tail,
            "head {head} mid {mid} tail {tail}"
        );
    }

    #[test]
    fn calibration_covers_table2_range() {
        // Table 2 ratios span roughly 14x..58x over 8192 pages, i.e.
        // hot shares ~0.0017..0.0071; also check broader values.
        for share in [0.002, 0.004, 0.007, 0.02, 0.1] {
            let alpha = zipf_alpha_for_hot_share(share, 4096);
            let achieved = Zipf::new(4096, alpha).hottest_share();
            assert!(
                (achieved - share).abs() / share < 0.02,
                "share {share} -> alpha {alpha} -> {achieved}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unachievable")]
    fn impossible_share_panics() {
        let _ = zipf_alpha_for_hot_share(0.0001, 64);
    }
}
