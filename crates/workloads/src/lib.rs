#![warn(missing_docs)]

//! Synthetic PARSEC-like workloads for the `tossup-wl` simulator.
//!
//! The paper collects gem5 traces of 13 PARSEC benchmarks (Table 2) and
//! replays them in loops. We do not have gem5 or the trace files, so
//! this crate builds the closest synthetic equivalent (see `DESIGN.md`
//! §3): every benchmark becomes a [`SyntheticWorkload`] — a deterministic
//! stream of page-granularity reads and writes whose
//!
//! * **write bandwidth** is the measured value from Table 2,
//! * **page-popularity skew** is a Zipf distribution whose exponent is
//!   *calibrated per benchmark* so that the simulated
//!   "lifetime without wear leveling / ideal lifetime" ratio matches the
//!   one the paper reports in Table 2 (the only locality information
//!   Table 2 exposes), and
//! * **hot pages are scattered** across the logical space by a Feistel
//!   permutation, as they would be under any real allocator.
//!
//! [`ParsecBenchmark`] carries the Table 2 ground truth; [`Zipf`] is the
//! sampler; the `trace` module holds the `MemCmd` stream types and a simple
//! binary codec for persisting traces.
//!
//! The `spec` module is the workload analogue of the scheme side's
//! `SchemeSpec`: [`WorkloadSpec`] names any write pattern in the
//! workspace — attack modes, PARSEC generators, or captured block
//! traces ([`TraceWorkload`]) — as serializable data with canonical
//! `KIND[k=v,...]` labels, and [`WorkloadSpec::build`] turns one into a
//! uniform [`BuiltWorkload`] stream the lifetime simulator can drive.

mod parsec;
mod spec;
mod synthetic;
mod trace;
mod zipf;

pub use parsec::ParsecBenchmark;
pub use spec::{
    parse_workload_list, AttackParams, BuiltWorkload, ParsecParams, TraceParams, TraceWorkload,
    WorkloadError, WorkloadKind, WorkloadParams, WorkloadSpec,
};
pub use synthetic::{SyntheticWorkload, WorkloadConfig};
pub use trace::{read_trace, write_trace, MemCmd, MemOp, TraceWriter};
pub use zipf::{zipf_alpha_for_hot_share, Zipf};
