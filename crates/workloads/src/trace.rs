//! Memory-command stream types and a binary trace codec.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use twl_pcm::LogicalPageAddr;

/// A memory operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A page read (does not wear PCM).
    Read,
    /// A page write.
    Write,
}

/// One command of a memory trace: the `(op, LA)` pair of the paper's
/// attack model (data payloads are irrelevant to wear and timing and are
/// not modelled).
///
/// # Examples
///
/// ```
/// use twl_pcm::LogicalPageAddr;
/// use twl_workloads::{MemCmd, MemOp};
///
/// let cmd = MemCmd::write(LogicalPageAddr::new(4));
/// assert_eq!(cmd.op, MemOp::Write);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemCmd {
    /// Operation kind.
    pub op: MemOp,
    /// Target logical page.
    pub la: LogicalPageAddr,
}

impl MemCmd {
    /// A write command.
    #[must_use]
    pub fn write(la: LogicalPageAddr) -> Self {
        Self {
            op: MemOp::Write,
            la,
        }
    }

    /// A read command.
    #[must_use]
    pub fn read(la: LogicalPageAddr) -> Self {
        Self {
            op: MemOp::Read,
            la,
        }
    }

    /// Whether this command wears the device.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.op == MemOp::Write
    }
}

/// Serializes a trace as a compact binary stream (1 op byte + 8 LE
/// address bytes per command).
///
/// A mutable reference works as a writer too, per the std `Write`
/// blanket impls.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &[MemCmd]) -> io::Result<()> {
    for cmd in trace {
        let op = match cmd.op {
            MemOp::Read => 0u8,
            MemOp::Write => 1u8,
        };
        writer.write_all(&[op])?;
        writer.write_all(&cmd.la.index().to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a trace written by [`write_trace`]. A mutable reference
/// works as a reader too.
///
/// # Errors
///
/// Returns an error on I/O failure, a truncated record, or an unknown
/// op byte.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Vec<MemCmd>> {
    let mut trace = Vec::new();
    let mut op_buf = [0u8; 1];
    loop {
        match reader.read_exact(&mut op_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let mut addr_buf = [0u8; 8];
        reader.read_exact(&mut addr_buf)?;
        let la = LogicalPageAddr::new(u64::from_le_bytes(addr_buf));
        let op = match op_buf[0] {
            0 => MemOp::Read,
            1 => MemOp::Write,
            b => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown op byte {b}"),
                ))
            }
        };
        trace.push(MemCmd { op, la });
    }
    Ok(trace)
}

/// Incremental writer for the binary trace format: appends one command
/// at a time and counts what it wrote, so a long-lived capture (the
/// `twl-blockd` block-write stream) streams to its sink without
/// buffering the whole trace.
///
/// The byte stream is identical to one [`write_trace`] call over the
/// same commands — a capture file is readable by [`read_trace`] at any
/// flush point.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a sink; nothing is written until the first append.
    pub fn new(inner: W) -> Self {
        Self { inner, written: 0 }
    }

    /// Appends one command.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn append(&mut self, cmd: MemCmd) -> io::Result<()> {
        write_trace(&mut self.inner, std::slice::from_ref(&cmd))?;
        self.written += 1;
        Ok(())
    }

    /// Commands appended so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Unwraps the sink (without flushing).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_writer_matches_the_one_shot_codec() {
        let trace = vec![
            MemCmd::write(LogicalPageAddr::new(3)),
            MemCmd::read(LogicalPageAddr::new(9)),
            MemCmd::write(LogicalPageAddr::new(3)),
        ];
        let mut one_shot = Vec::new();
        write_trace(&mut one_shot, &trace).unwrap();
        let mut streamed = TraceWriter::new(Vec::new());
        for &cmd in &trace {
            streamed.append(cmd).unwrap();
        }
        assert_eq!(streamed.written(), 3);
        assert_eq!(streamed.into_inner(), one_shot);
    }

    #[test]
    fn codec_roundtrip() {
        let trace = vec![
            MemCmd::write(LogicalPageAddr::new(0)),
            MemCmd::read(LogicalPageAddr::new(u64::MAX)),
            MemCmd::write(LogicalPageAddr::new(12345)),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(buf.len(), 3 * 9);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let trace = vec![MemCmd::write(LogicalPageAddr::new(7))];
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(5);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_op_is_an_error() {
        let buf = [9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let back = read_trace([].as_slice()).unwrap();
        assert!(back.is_empty());
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The binary codec round-trips arbitrary traces exactly.
        #[test]
        fn codec_roundtrips_arbitrary_traces(
            cmds in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..200),
        ) {
            let trace: Vec<MemCmd> = cmds
                .iter()
                .map(|&(w, la)| {
                    let la = LogicalPageAddr::new(la);
                    if w { MemCmd::write(la) } else { MemCmd::read(la) }
                })
                .collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).expect("in-memory write");
            prop_assert_eq!(buf.len(), trace.len() * 9);
            let back = read_trace(buf.as_slice()).expect("valid bytes");
            prop_assert_eq!(back, trace);
        }
    }
}
