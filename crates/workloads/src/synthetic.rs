//! The synthetic workload generator.

use crate::{MemCmd, Zipf};
use serde::{Deserialize, Serialize};
use twl_pcm::LogicalPageAddr;
use twl_rng::{FeistelPermutation, SimRng, Xoshiro256StarStar};

/// Configuration of a [`SyntheticWorkload`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Logical pages of the device the workload runs against.
    pub pages: u64,
    /// Number of distinct pages the workload touches.
    pub footprint: u64,
    /// Zipf exponent of the page-popularity distribution.
    pub zipf_alpha: f64,
    /// Fraction of commands that are reads (reads do not wear PCM but
    /// load the memory controller).
    pub read_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

/// A deterministic, endless stream of page-granularity memory commands
/// with Zipf-skewed page popularity.
///
/// Popularity ranks are scattered across the logical address space by a
/// Feistel permutation, so "hot" pages are not clustered at low
/// addresses (they would not be under a real allocator either).
///
/// # Examples
///
/// ```
/// use twl_workloads::{SyntheticWorkload, WorkloadConfig};
///
/// let mut workload = SyntheticWorkload::new(&WorkloadConfig {
///     pages: 256,
///     footprint: 128,
///     zipf_alpha: 0.8,
///     read_fraction: 0.5,
///     seed: 42,
/// });
/// let cmd = workload.next_cmd();
/// assert!(cmd.la.index() < 256);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    config: WorkloadConfig,
    zipf: Zipf,
    scatter: FeistelPermutation,
    rng: Xoshiro256StarStar,
}

impl SyntheticWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is zero or exceeds `pages`, or
    /// `read_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(config: &WorkloadConfig) -> Self {
        assert!(
            config.footprint > 0 && config.footprint <= config.pages,
            "footprint must be within the device"
        );
        assert!(
            (0.0..=1.0).contains(&config.read_fraction),
            "read fraction must be a probability"
        );
        let bits = {
            let b = (64 - (config.pages - 1).leading_zeros()).max(2);
            if b.is_multiple_of(2) {
                b
            } else {
                b + 1
            }
        };
        Self {
            config: config.clone(),
            zipf: Zipf::new(config.footprint, config.zipf_alpha),
            scatter: FeistelPermutation::new(bits, config.seed ^ 0x5CA7_7E12, 4),
            rng: Xoshiro256StarStar::seed_from(config.seed),
        }
    }

    /// The configuration the workload runs with.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Fraction of write traffic hitting the hottest page.
    #[must_use]
    pub fn hottest_share(&self) -> f64 {
        self.zipf.hottest_share()
    }

    /// Scatters a popularity rank to a logical page, cycle-walking the
    /// Feistel permutation back into the page range.
    fn rank_to_page(&self, rank: u64) -> LogicalPageAddr {
        let mut v = rank;
        loop {
            v = self.scatter.permute(v);
            if v < self.config.pages {
                return LogicalPageAddr::new(v);
            }
        }
    }

    /// Produces the next command (read or write).
    pub fn next_cmd(&mut self) -> MemCmd {
        let rank = self.zipf.sample(&mut self.rng);
        let la = self.rank_to_page(rank);
        if self.rng.next_unit_f64() < self.config.read_fraction {
            MemCmd::read(la)
        } else {
            MemCmd::write(la)
        }
    }

    /// Produces the next *write* address, skipping reads (for lifetime
    /// simulation, where only writes matter).
    pub fn next_write_la(&mut self) -> LogicalPageAddr {
        let rank = self.zipf.sample(&mut self.rng);
        self.rank_to_page(rank)
    }
}

impl Iterator for SyntheticWorkload {
    type Item = MemCmd;

    fn next(&mut self) -> Option<MemCmd> {
        Some(self.next_cmd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn workload(alpha: f64, read_fraction: f64) -> SyntheticWorkload {
        SyntheticWorkload::new(&WorkloadConfig {
            pages: 512,
            footprint: 256,
            zipf_alpha: alpha,
            read_fraction,
            seed: 3,
        })
    }

    #[test]
    fn determinism() {
        let mut a = workload(1.0, 0.5);
        let mut b = workload(1.0, 0.5);
        for _ in 0..100 {
            assert_eq!(a.next_cmd(), b.next_cmd());
        }
    }

    #[test]
    fn footprint_is_respected() {
        let mut w = workload(0.5, 0.0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50_000 {
            distinct.insert(w.next_write_la());
        }
        assert!(distinct.len() <= 256);
        assert!(
            distinct.len() > 200,
            "almost all footprint pages should appear"
        );
    }

    #[test]
    fn read_fraction_is_respected() {
        let mut w = workload(0.5, 0.7);
        let reads = (0..20_000).filter(|_| !w.next_cmd().is_write()).count();
        let p = reads as f64 / 20_000.0;
        assert!((p - 0.7).abs() < 0.02, "read fraction = {p}");
    }

    #[test]
    fn hot_page_share_matches_zipf() {
        let mut w = workload(1.2, 0.0);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(w.next_write_la().index()).or_default() += 1;
        }
        let max = *counts.values().max().unwrap() as f64 / n as f64;
        let expected = w.hottest_share();
        assert!(
            (max - expected).abs() / expected < 0.1,
            "share {max} vs {expected}"
        );
    }

    #[test]
    fn hot_pages_are_scattered() {
        // The two hottest pages should not be adjacent addresses.
        let mut w = workload(1.5, 0.0);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(w.next_write_la().index()).or_default() += 1;
        }
        let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let gap = ranked[0].0.abs_diff(ranked[1].0);
        assert!(
            gap > 1,
            "hottest pages at {} and {}",
            ranked[0].0,
            ranked[1].0
        );
    }

    #[test]
    #[should_panic(expected = "footprint must be within the device")]
    fn oversized_footprint_panics() {
        let _ = SyntheticWorkload::new(&WorkloadConfig {
            pages: 16,
            footprint: 32,
            zipf_alpha: 1.0,
            read_fraction: 0.5,
            seed: 0,
        });
    }
}
