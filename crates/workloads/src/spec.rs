//! Workload factory: every write pattern in the workspace, as data.
//!
//! Two layers of identity live here, mirroring the scheme side
//! (`SchemeSpec` in `twl-lifetime`). [`WorkloadKind`] names a write
//! pattern — one of the four attack modes, one of the thirteen PARSEC
//! generators, or a captured block trace — and [`WorkloadSpec`] names a
//! *configuration* of one: a kind plus a typed set of parameter
//! overrides that default to the paper's values. A spec has a canonical
//! string label (`inconsistent[group=8,stride=64]`,
//! `TRACE[path=capture.trace,seed=3]`), a `FromStr`/`Display` round
//! trip, and a JSON codec, so every experiment — a sweep matrix cell, a
//! service job, a fleet cache key — can carry the exact write pattern
//! it ran as data.
//!
//! Default-parameter specs are indistinguishable from their bare kind:
//! they build the identical stream (same code path, same RNG draws as
//! `Attack::new` / `ParsecBenchmark::workload`), render as the bare
//! kind label, and encode as a bare label string in JSON — which is
//! also the backward-compatibility story for job specs and checkpoints
//! written before `WorkloadSpec` existed, whose `attacks` and
//! `benchmarks` lists were bare strings.
//!
//! [`WorkloadSpec::build`] produces a [`BuiltWorkload`], a uniform
//! [`AttackStream`] the lifetime simulator drives like any attack; the
//! trace kind streams through [`TraceWorkload`], which honors the
//! `next_run` batchability contract so the event-skipping fast path
//! engages on write runs in the capture.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::str::FromStr;
use twl_attacks::{
    AttackKind, AttackStream, InconsistentAttack, InconsistentConfig, RandomAttack, RepeatAttack,
    ScanAttack,
};
use twl_pcm::LogicalPageAddr;
use twl_telemetry::json::{int, num, str, Json};
use twl_wl_core::WriteOutcome;

use crate::parsec::ParsecBenchmark;
use crate::synthetic::{SyntheticWorkload, WorkloadConfig};
use crate::trace::read_trace;
use crate::zipf::zipf_alpha_for_hot_share;

/// Every write pattern the workspace can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadKind {
    /// One of the four adversarial modes of Fig. 6.
    Attack(AttackKind),
    /// One of the thirteen synthetic PARSEC generators of Table 2.
    Parsec(ParsecBenchmark),
    /// A captured binary trace (e.g. a `twl-blockd` `capture.trace`),
    /// replayed in a loop as the paper does with its gem5 traces.
    Trace,
}

impl WorkloadKind {
    /// The canonical label: the attack's or benchmark's historical wire
    /// name (lowercase), or `TRACE`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Attack(kind) => attack_label(*kind),
            Self::Parsec(bench) => bench.name(),
            Self::Trace => "TRACE",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for WorkloadKind {
    type Err = String;

    /// Parses a kind label, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let folded = s.trim().to_ascii_lowercase();
        if folded == "trace" {
            return Ok(Self::Trace);
        }
        if let Some(kind) = AttackKind::ALL
            .iter()
            .copied()
            .find(|k| attack_label(*k) == folded)
        {
            return Ok(Self::Attack(kind));
        }
        if let Some(bench) = ParsecBenchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == folded)
        {
            return Ok(Self::Parsec(bench));
        }
        Err(format!(
            "unknown workload `{s}` (expected an attack mode, a PARSEC benchmark, or TRACE)"
        ))
    }
}

/// The stable wire name of an attack mode (matches its `Display`).
fn attack_label(kind: AttackKind) -> &'static str {
    match kind {
        AttackKind::Repeat => "repeat",
        AttackKind::Random => "random",
        AttackKind::Scan => "scan",
        AttackKind::Inconsistent => "inconsistent",
        _ => unreachable!("AttackKind is non_exhaustive but these are all current variants"),
    }
}

/// Why a workload spec is ill-formed or could not be instantiated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The parameter overrides do not fit the kind.
    InvalidParams {
        /// The workload kind.
        kind: WorkloadKind,
        /// Human-readable explanation.
        reason: String,
    },
    /// The spec is well-formed but cannot be built against this device
    /// or trace file.
    Unbuildable {
        /// The spec's canonical label.
        label: String,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParams { kind, reason } => {
                write!(f, "invalid parameters for {kind}: {reason}")
            }
            Self::Unbuildable { label, reason } => {
                write!(f, "cannot build workload {label}: {reason}")
            }
        }
    }
}

impl Error for WorkloadError {}

/// Attack parameter overrides (`None` keeps the default). Which fields
/// apply depends on the attack mode; [`WorkloadSpec::validate`] rejects
/// overrides on the wrong mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AttackParams {
    /// Repeat: the fixed logical page to hammer (default 0).
    pub target: Option<u64>,
    /// Random: the RNG seed (default: the device seed).
    pub seed: Option<u64>,
    /// Inconsistent: firehose group size (default: `for_pages`).
    pub group_size: Option<u64>,
    /// Inconsistent: victim stride (default: `for_pages`).
    pub victim_stride: Option<u64>,
    /// Inconsistent: minimum writes per phase (default: `for_pages`).
    pub min_phase_writes: Option<u64>,
    /// Inconsistent: phase timeout in writes (default: `for_pages`).
    pub phase_timeout_writes: Option<u64>,
}

/// PARSEC generator parameter overrides (`None` keeps the Table 2
/// calibration).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ParsecParams {
    /// Zipf exponent (default: calibrated from the benchmark's Table 2
    /// locality ratio).
    pub zipf_alpha: Option<f64>,
    /// Written-page footprint (default: half the device).
    pub footprint: Option<u64>,
    /// Fraction of commands that are reads (default 0.55).
    pub read_fraction: Option<f64>,
    /// Base RNG seed (default: the device seed; the benchmark's
    /// bandwidth bits are XORed in either way, as `workload()` does).
    pub seed: Option<u64>,
}

/// Trace replay parameters. `path` is required; the rest default.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceParams {
    /// Path of the binary trace file (`twl-workloads` codec, as written
    /// by `twl-blockd` and `trace_tool`).
    pub path: String,
    /// Rotation seed: replay starts `seed % writes` into the capture's
    /// write sequence (default 0, the capture order).
    pub seed: Option<u64>,
    /// Calibration bandwidth in MB/s for lifetime-in-years reporting
    /// (default: the 8 GiB/s attack calibration).
    pub bandwidth_mbps: Option<f64>,
}

/// Typed per-kind parameter overrides.
///
/// `Default` means "the paper configuration"; the other variants carry
/// override fields for one workload family. A variant whose fields are
/// all `None` is semantically `Default` (except `Trace`, whose `path`
/// is mandatory); [`WorkloadSpec::canonical`] normalizes it away.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadParams {
    /// Paper-default configuration.
    #[default]
    Default,
    /// Overrides for an attack mode.
    Attack(AttackParams),
    /// Overrides for a PARSEC generator.
    Parsec(ParsecParams),
    /// Trace replay configuration.
    Trace(TraceParams),
}

/// A workload *configuration*: a kind plus typed parameter overrides.
///
/// The unit of workload identity everywhere write patterns travel as
/// data — sweep matrices, service jobs, checkpoints, fleet cache keys,
/// bench tables. Construct one with [`WorkloadSpec::new`] (paper
/// defaults), tweak it with [`WorkloadSpec::set_param`], or parse a
/// label:
///
/// ```
/// use twl_workloads::WorkloadSpec;
///
/// let spec: WorkloadSpec = "inconsistent[group=8,stride=64]".parse().unwrap();
/// assert_eq!(spec.label(), "inconsistent[group=8,stride=64]");
/// let plain: WorkloadSpec = "repeat".parse().unwrap();
/// assert!(plain.is_default());
/// let trace: WorkloadSpec = "TRACE[path=capture.trace,seed=3]".parse().unwrap();
/// assert_eq!(trace.label(), "TRACE[path=capture.trace,seed=3]");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The write pattern.
    pub kind: WorkloadKind,
    /// Parameter overrides (paper defaults when `Default`).
    pub params: WorkloadParams,
}

impl From<WorkloadKind> for WorkloadSpec {
    fn from(kind: WorkloadKind) -> Self {
        Self::new(kind)
    }
}

impl From<AttackKind> for WorkloadSpec {
    fn from(kind: AttackKind) -> Self {
        Self::new(WorkloadKind::Attack(kind))
    }
}

impl From<ParsecBenchmark> for WorkloadSpec {
    fn from(bench: ParsecBenchmark) -> Self {
        Self::new(WorkloadKind::Parsec(bench))
    }
}

impl From<&WorkloadSpec> for WorkloadSpec {
    fn from(spec: &WorkloadSpec) -> Self {
        spec.clone()
    }
}

impl WorkloadSpec {
    /// The paper-default spec for `kind`.
    #[must_use]
    pub fn new(kind: WorkloadKind) -> Self {
        Self {
            kind,
            params: WorkloadParams::Default,
        }
    }

    /// A trace-replay spec for the capture at `path`.
    #[must_use]
    pub fn trace(path: &str) -> Self {
        Self {
            kind: WorkloadKind::Trace,
            params: WorkloadParams::Trace(TraceParams {
                path: path.to_owned(),
                ..TraceParams::default()
            }),
        }
    }

    /// Whether this spec is the paper-default configuration (no
    /// effective overrides). Trace specs are never default: their path
    /// is load-bearing.
    #[must_use]
    pub fn is_default(&self) -> bool {
        !matches!(self.kind, WorkloadKind::Trace) && self.label_parts().is_empty()
    }

    /// Normalizes an all-`None` params variant back to
    /// [`WorkloadParams::Default`], so equal configurations compare
    /// equal.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.is_default() {
            self.params = WorkloadParams::Default;
        }
        self
    }

    /// The canonical label: the kind label, plus `[k=v,...]` for any
    /// overridden parameters in a fixed key order. Round-trips through
    /// [`FromStr`] and is what reports, telemetry scopes, cache keys,
    /// and service events use for this spec.
    #[must_use]
    pub fn label(&self) -> String {
        let parts = self.label_parts();
        if parts.is_empty() {
            self.kind.label().to_owned()
        } else {
            format!("{}[{}]", self.kind.label(), parts.join(","))
        }
    }

    fn label_parts(&self) -> Vec<String> {
        let mut parts = Vec::new();
        match &self.params {
            WorkloadParams::Default => {}
            WorkloadParams::Attack(p) => {
                if let Some(v) = p.target {
                    parts.push(format!("target={v}"));
                }
                if let Some(v) = p.seed {
                    parts.push(format!("seed={v}"));
                }
                if let Some(v) = p.group_size {
                    parts.push(format!("group={v}"));
                }
                if let Some(v) = p.victim_stride {
                    parts.push(format!("stride={v}"));
                }
                if let Some(v) = p.min_phase_writes {
                    parts.push(format!("minphase={v}"));
                }
                if let Some(v) = p.phase_timeout_writes {
                    parts.push(format!("timeout={v}"));
                }
            }
            WorkloadParams::Parsec(p) => {
                if let Some(v) = p.zipf_alpha {
                    parts.push(format!("alpha={}", fmt_f64(v)));
                }
                if let Some(v) = p.footprint {
                    parts.push(format!("fp={v}"));
                }
                if let Some(v) = p.read_fraction {
                    parts.push(format!("rf={}", fmt_f64(v)));
                }
                if let Some(v) = p.seed {
                    parts.push(format!("seed={v}"));
                }
            }
            WorkloadParams::Trace(p) => {
                parts.push(format!("path={}", p.path));
                if let Some(v) = p.seed {
                    parts.push(format!("seed={v}"));
                }
                if let Some(v) = p.bandwidth_mbps {
                    parts.push(format!("bw={}", fmt_f64(v)));
                }
            }
        }
        parts
    }

    /// Applies one `key=value` override, creating the right params
    /// variant for this spec's kind. Keys are the short label-grammar
    /// names (`target`, `seed`, `group`, `stride`, `minphase`,
    /// `timeout`, `alpha`, `fp`, `rf`, `path`, `bw`); the long JSON
    /// field names are accepted as aliases.
    ///
    /// # Errors
    ///
    /// Returns a message if the key is unknown for the kind or the
    /// value does not parse.
    pub fn set_param(&mut self, key: &str, value: &str) -> Result<(), String> {
        match self.kind {
            WorkloadKind::Attack(attack) => {
                let p = self.attack_params_mut();
                match (attack, key) {
                    (AttackKind::Repeat, "target") => p.target = Some(parse_u64(key, value)?),
                    (AttackKind::Random, "seed") => p.seed = Some(parse_u64(key, value)?),
                    (AttackKind::Inconsistent, "group" | "group_size") => {
                        p.group_size = Some(parse_u64(key, value)?);
                    }
                    (AttackKind::Inconsistent, "stride" | "victim_stride") => {
                        p.victim_stride = Some(parse_u64(key, value)?);
                    }
                    (AttackKind::Inconsistent, "minphase" | "min_phase_writes") => {
                        p.min_phase_writes = Some(parse_u64(key, value)?);
                    }
                    (AttackKind::Inconsistent, "timeout" | "phase_timeout_writes") => {
                        p.phase_timeout_writes = Some(parse_u64(key, value)?);
                    }
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            WorkloadKind::Parsec(_) => {
                let p = self.parsec_params_mut();
                match key {
                    "alpha" | "zipf_alpha" => p.zipf_alpha = Some(parse_f64(key, value)?),
                    "fp" | "footprint" => p.footprint = Some(parse_u64(key, value)?),
                    "rf" | "read_fraction" => p.read_fraction = Some(parse_f64(key, value)?),
                    "seed" => p.seed = Some(parse_u64(key, value)?),
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            WorkloadKind::Trace => {
                let p = self.trace_params_mut();
                match key {
                    "path" => p.path = value.to_owned(),
                    "seed" => p.seed = Some(parse_u64(key, value)?),
                    "bw" | "bandwidth_mbps" => p.bandwidth_mbps = Some(parse_f64(key, value)?),
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
        }
        Ok(())
    }

    fn attack_params_mut(&mut self) -> &mut AttackParams {
        if !matches!(self.params, WorkloadParams::Attack(_)) {
            self.params = WorkloadParams::Attack(AttackParams::default());
        }
        match &mut self.params {
            WorkloadParams::Attack(p) => p,
            _ => unreachable!(),
        }
    }

    fn parsec_params_mut(&mut self) -> &mut ParsecParams {
        if !matches!(self.params, WorkloadParams::Parsec(_)) {
            self.params = WorkloadParams::Parsec(ParsecParams::default());
        }
        match &mut self.params {
            WorkloadParams::Parsec(p) => p,
            _ => unreachable!(),
        }
    }

    fn trace_params_mut(&mut self) -> &mut TraceParams {
        if !matches!(self.params, WorkloadParams::Trace(_)) {
            self.params = WorkloadParams::Trace(TraceParams::default());
        }
        match &mut self.params {
            WorkloadParams::Trace(p) => p,
            _ => unreachable!(),
        }
    }

    /// Checks that the params variant matches the kind and every
    /// override is in range.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParams`] on a mismatched
    /// variant, an override for the wrong attack mode, or an
    /// out-of-range value.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let invalid = |reason: String| WorkloadError::InvalidParams {
            kind: self.kind,
            reason,
        };
        match (self.kind, &self.params) {
            (WorkloadKind::Trace, WorkloadParams::Default) => {
                Err(invalid("a TRACE workload needs a `path` parameter".into()))
            }
            (_, WorkloadParams::Default) => Ok(()),
            (WorkloadKind::Attack(attack), WorkloadParams::Attack(p)) => {
                if p.target.is_some() && attack != AttackKind::Repeat {
                    return Err(invalid("`target` only applies to the repeat attack".into()));
                }
                if p.seed.is_some() && attack != AttackKind::Random {
                    return Err(invalid("`seed` only applies to the random attack".into()));
                }
                let inconsistent_only = [
                    ("group", p.group_size.is_some()),
                    ("stride", p.victim_stride.is_some()),
                    ("minphase", p.min_phase_writes.is_some()),
                    ("timeout", p.phase_timeout_writes.is_some()),
                ];
                for (key, set) in inconsistent_only {
                    if set && attack != AttackKind::Inconsistent {
                        return Err(invalid(format!(
                            "`{key}` only applies to the inconsistent attack"
                        )));
                    }
                }
                if p.group_size == Some(0) {
                    return Err(invalid("group size must be positive".into()));
                }
                if let Some(g) = p.group_size {
                    if u32::try_from(g).is_err() {
                        return Err(invalid("group size must fit in 32 bits".into()));
                    }
                }
                if matches!(p.victim_stride, Some(v) if v <= 1) {
                    return Err(invalid("victim stride must exceed 1".into()));
                }
                Ok(())
            }
            (WorkloadKind::Parsec(_), WorkloadParams::Parsec(p)) => {
                if p.footprint == Some(0) {
                    return Err(invalid("footprint must be positive".into()));
                }
                if let Some(a) = p.zipf_alpha {
                    if !a.is_finite() || a < 0.0 {
                        return Err(invalid("zipf alpha must be finite and non-negative".into()));
                    }
                }
                if let Some(rf) = p.read_fraction {
                    if !rf.is_finite() || !(0.0..=1.0).contains(&rf) {
                        return Err(invalid("read fraction must be a probability".into()));
                    }
                }
                Ok(())
            }
            (WorkloadKind::Trace, WorkloadParams::Trace(p)) => {
                if p.path.is_empty() {
                    return Err(invalid("a TRACE workload needs a `path` parameter".into()));
                }
                if p.path.contains([',', '[', ']']) {
                    return Err(invalid(format!(
                        "trace path cannot contain `,`, `[`, or `]` (got `{}`)",
                        p.path
                    )));
                }
                if let Some(bw) = p.bandwidth_mbps {
                    if !bw.is_finite() || bw <= 0.0 {
                        return Err(invalid("bandwidth must be positive".into()));
                    }
                }
                Ok(())
            }
            (kind, params) => Err(invalid(format!(
                "{params:?} overrides do not apply to {kind}"
            ))),
        }
    }

    /// The write bandwidth this workload pins for lifetime-in-years
    /// calibration, if any: a PARSEC generator carries its Table 2
    /// bandwidth, a trace may override via `bw=`; attacks (and traces
    /// without `bw`) use the 8 GiB/s attack calibration.
    #[must_use]
    pub fn bandwidth_mbps(&self) -> Option<f64> {
        match (&self.kind, &self.params) {
            (WorkloadKind::Parsec(bench), _) => Some(bench.write_bandwidth_mbps()),
            (WorkloadKind::Trace, WorkloadParams::Trace(p)) => p.bandwidth_mbps,
            _ => None,
        }
    }

    /// Whether this workload generates addresses against the scheme's
    /// logical space (attacks and trace replays, which address exactly
    /// what the scheme exposes) rather than the raw device page count
    /// (the PARSEC generators, which historically address `pcm.pages`).
    #[must_use]
    pub fn addresses_scheme_space(&self) -> bool {
        !matches!(self.kind, WorkloadKind::Parsec(_))
    }

    /// Encodes the spec: a bare label string for default-params specs
    /// (byte-identical to the pre-`WorkloadSpec` wire format), a
    /// `{"kind", "params"}` object otherwise.
    #[must_use]
    pub fn to_json(&self) -> Json {
        if self.is_default() {
            return str(self.kind.label());
        }
        let mut params = BTreeMap::new();
        let mut put = |k: &str, v: Json| {
            params.insert(k.to_owned(), v);
        };
        match &self.params {
            WorkloadParams::Default => {}
            WorkloadParams::Attack(p) => {
                if let Some(v) = p.target {
                    put("target", int(v));
                }
                if let Some(v) = p.seed {
                    put("seed", int(v));
                }
                if let Some(v) = p.group_size {
                    put("group_size", int(v));
                }
                if let Some(v) = p.victim_stride {
                    put("victim_stride", int(v));
                }
                if let Some(v) = p.min_phase_writes {
                    put("min_phase_writes", int(v));
                }
                if let Some(v) = p.phase_timeout_writes {
                    put("phase_timeout_writes", int(v));
                }
            }
            WorkloadParams::Parsec(p) => {
                if let Some(v) = p.zipf_alpha {
                    put("zipf_alpha", num(v));
                }
                if let Some(v) = p.footprint {
                    put("footprint", int(v));
                }
                if let Some(v) = p.read_fraction {
                    put("read_fraction", num(v));
                }
                if let Some(v) = p.seed {
                    put("seed", int(v));
                }
            }
            WorkloadParams::Trace(p) => {
                put("path", str(&p.path));
                if let Some(v) = p.seed {
                    put("seed", int(v));
                }
                if let Some(v) = p.bandwidth_mbps {
                    put("bandwidth_mbps", num(v));
                }
            }
        }
        Json::obj([
            ("kind", str(self.kind.label())),
            ("params", Json::Obj(params)),
        ])
    }

    /// Decodes a spec: either a bare label string (possibly with the
    /// `[k=v,...]` suffix) or a `{"kind", "params"}` object.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown kind, an unknown parameter key,
    /// or an out-of-range value.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) => s.parse(),
            Json::Obj(_) => {
                let kind: WorkloadKind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("workload spec object is missing string `kind`")?
                    .parse()?;
                let mut spec = Self::new(kind);
                if let Some(params) = v.get("params") {
                    let Json::Obj(map) = params else {
                        return Err("workload spec `params` is not an object".to_owned());
                    };
                    for (key, value) in map {
                        let rendered = match value {
                            Json::Bool(b) => u8::from(*b).to_string(),
                            Json::Str(s) => s.clone(),
                            Json::Int(_) | Json::Float(_) => value.to_compact(),
                            other => {
                                return Err(format!(
                                    "parameter `{key}` has unsupported value {other:?}"
                                ))
                            }
                        };
                        spec.set_param(key, &rendered)?;
                    }
                }
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec.canonical())
            }
            other => Err(format!(
                "workload spec is neither string nor object: {other:?}"
            )),
        }
    }

    /// Instantiates the stream. `pages` is the logical address space
    /// the workload writes into ([`WorkloadSpec::addresses_scheme_space`]
    /// tells the caller whether that is the scheme's logical page count
    /// or the raw device page count); `seed` is the device seed, used
    /// wherever the pre-spec factories used it, so default specs build
    /// bit-identical streams to `Attack::new(kind, pages, seed)` and
    /// `bench.workload(pages, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on invalid params, an override that
    /// does not fit the device, or an unreadable/write-free trace.
    ///
    /// # Panics
    ///
    /// Panics (like the underlying factories) on a zero-page space.
    pub fn build(&self, pages: u64, seed: u64) -> Result<BuiltWorkload, WorkloadError> {
        self.validate()?;
        let label = self.label();
        let unbuildable = |reason: String| WorkloadError::Unbuildable {
            label: label.clone(),
            reason,
        };
        let stream = match self.kind {
            WorkloadKind::Attack(attack) => {
                let p = match &self.params {
                    WorkloadParams::Attack(p) => *p,
                    _ => AttackParams::default(),
                };
                match attack {
                    AttackKind::Repeat => {
                        let target = p.target.unwrap_or(0);
                        if target >= pages {
                            return Err(unbuildable(format!(
                                "repeat target {target} is outside the {pages}-page logical space"
                            )));
                        }
                        Stream::Repeat(RepeatAttack::new(LogicalPageAddr::new(target)))
                    }
                    AttackKind::Random => {
                        Stream::Random(RandomAttack::new(pages, p.seed.unwrap_or(seed)))
                    }
                    AttackKind::Scan => Stream::Scan(ScanAttack::new(pages)),
                    AttackKind::Inconsistent => {
                        let mut config = InconsistentConfig::for_pages(pages);
                        if let Some(group) = p.group_size {
                            config.group_size = group;
                            // `for_pages` sets the firehose width to the
                            // group size; an overridden group keeps that
                            // invariant.
                            config.firehose_ranks =
                                u32::try_from(group).expect("validated to fit in 32 bits");
                        }
                        if let Some(stride) = p.victim_stride {
                            config.victim_stride = stride;
                        }
                        if let Some(writes) = p.min_phase_writes {
                            config.min_phase_writes = writes;
                        }
                        if let Some(writes) = p.phase_timeout_writes {
                            config.phase_timeout_writes = writes;
                        }
                        if config.working_set() > pages {
                            return Err(unbuildable(format!(
                                "inconsistent working set {} exceeds the {pages}-page logical \
                                 space",
                                config.working_set()
                            )));
                        }
                        Stream::Inconsistent(InconsistentAttack::new(&config))
                    }
                    _ => {
                        unreachable!(
                            "AttackKind is non_exhaustive but these are all current variants"
                        )
                    }
                }
            }
            WorkloadKind::Parsec(bench) => {
                let p = match &self.params {
                    WorkloadParams::Parsec(p) => *p,
                    _ => ParsecParams::default(),
                };
                let footprint = p.footprint.unwrap_or((pages / 2).max(2));
                if footprint > pages {
                    return Err(unbuildable(format!(
                        "footprint {footprint} exceeds the {pages}-page device"
                    )));
                }
                #[allow(clippy::cast_precision_loss)]
                let alpha = p.zipf_alpha.unwrap_or_else(|| {
                    zipf_alpha_for_hot_share(bench.locality_ratio() / pages as f64, footprint)
                });
                Stream::Synthetic(SyntheticWorkload::new(&WorkloadConfig {
                    pages,
                    footprint,
                    zipf_alpha: alpha,
                    read_fraction: p.read_fraction.unwrap_or(0.55),
                    seed: p.seed.unwrap_or(seed) ^ bench.write_bandwidth_mbps().to_bits(),
                }))
            }
            WorkloadKind::Trace => {
                let p = match &self.params {
                    WorkloadParams::Trace(p) => p.clone(),
                    _ => unreachable!("validate() requires trace params"),
                };
                Stream::Trace(
                    TraceWorkload::open(&p.path, pages, p.seed.unwrap_or(0))
                        .map_err(unbuildable)?,
                )
            }
        };
        Ok(BuiltWorkload { label, stream })
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for WorkloadSpec {
    type Err = String;

    /// Parses a canonical label: `KIND` or `KIND[k=v,...]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (kind_str, params_str) = match s.find('[') {
            Some(i) => {
                let Some(inner) = s[i..].strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
                    return Err(format!(
                        "malformed workload spec `{s}` (expected `KIND[k=v,...]`)"
                    ));
                };
                (&s[..i], Some(inner))
            }
            None => (s, None),
        };
        let mut spec = Self::new(kind_str.parse::<WorkloadKind>()?);
        if let Some(params) = params_str {
            if params.trim().is_empty() {
                return Err(format!("empty parameter list in `{s}`"));
            }
            for kv in params.split(',') {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("parameter `{kv}` is not `key=value`"))?;
                spec.set_param(key.trim(), value.trim())?;
            }
        }
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec.canonical())
    }
}

/// Parses a comma-separated list of workload spec labels, where commas
/// inside `[...]` parameter blocks do not split
/// (`"inconsistent[group=8,stride=64],scan"` is two specs).
///
/// # Errors
///
/// Returns the first label's parse error.
pub fn parse_workload_list(s: &str) -> Result<Vec<WorkloadSpec>, String> {
    let mut specs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                if !s[start..i].trim().is_empty() {
                    specs.push(s[start..i].parse()?);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s[start..].trim().is_empty() {
        specs.push(s[start..].parse()?);
    }
    if specs.is_empty() {
        return Err("empty workload list".to_owned());
    }
    Ok(specs)
}

/// Canonical float rendering for labels: the shortest digits that
/// round-trip, as the JSON codec prints (so labels and JSON agree).
fn fmt_f64(v: f64) -> String {
    num(v).to_compact()
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("`{key}` wants an unsigned integer, got `{value}`"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("`{key}` wants a finite number, got `{value}`"))
}

fn unknown_key(kind: WorkloadKind, key: &str) -> String {
    format!("unknown parameter `{key}` for {kind}")
}

/// A replayable capture: the write commands of a binary trace file,
/// mapped into the logical space and looped, as the paper loops its
/// gem5 traces (§5.1) and as `twl-blk replay` consumes a `twl-blockd`
/// `capture.trace`.
///
/// Honors the [`AttackStream`] batchability contract: a declared run
/// covers consecutive equal addresses in the capture, the stream's only
/// state is its position, and feedback is ignored — so the
/// event-skipping batched driver is bit-identical to scalar replay.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    writes: Vec<u64>,
    pos: usize,
}

impl TraceWorkload {
    /// Loads the capture at `path`, keeping only its writes, each
    /// mapped `addr % pages` into the logical space. Replay starts
    /// `start_seed % writes` into the sequence.
    ///
    /// # Errors
    ///
    /// Returns a message if the file cannot be read, is not a valid
    /// trace, or contains no writes.
    pub fn open(path: &str, pages: u64, start_seed: u64) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("cannot open trace {path}: {e}"))?;
        let trace = read_trace(BufReader::new(file))
            .map_err(|e| format!("cannot read trace {path}: {e}"))?;
        let writes: Vec<u64> = trace
            .iter()
            .filter(|c| c.is_write())
            .map(|c| c.la.index() % pages)
            .collect();
        if writes.is_empty() {
            return Err(format!("trace {path} contains no writes"));
        }
        let pos = usize::try_from(start_seed % writes.len() as u64).expect("pos < len");
        Ok(Self { writes, pos })
    }

    /// Write commands in the capture (one full loop).
    #[must_use]
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    fn next_write(&mut self) -> LogicalPageAddr {
        let la = self.writes[self.pos];
        self.pos = (self.pos + 1) % self.writes.len();
        LogicalPageAddr::new(la)
    }

    fn next_run(&mut self, max: u64) -> (LogicalPageAddr, u64) {
        let n = self.writes.len();
        let la = self.writes[self.pos];
        let mut len: u64 = 1;
        while len < max {
            if len as usize >= n {
                // Every command in the capture writes this address, so
                // every future loop will too: commit the whole budget.
                len = max;
                break;
            }
            if self.writes[(self.pos + len as usize) % n] != la {
                break;
            }
            len += 1;
        }
        self.pos = (self.pos + usize::try_from(len % n.max(1) as u64).expect("len mod n < n"))
            .checked_rem(n)
            .unwrap_or(0);
        (LogicalPageAddr::new(la), len)
    }
}

/// A built workload: a canonical label plus the concrete stream, driven
/// by the lifetime simulator through the [`AttackStream`] interface.
///
/// Default-parameter specs wrap the exact streams the pre-spec
/// factories built (same constructors, same RNG draws), so driving a
/// `BuiltWorkload` is bit-identical to the legacy attack and workload
/// paths.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    label: String,
    stream: Stream,
}

#[derive(Debug, Clone)]
enum Stream {
    Repeat(RepeatAttack),
    Random(RandomAttack),
    Scan(ScanAttack),
    Inconsistent(InconsistentAttack),
    Synthetic(SyntheticWorkload),
    Trace(TraceWorkload),
}

impl BuiltWorkload {
    /// The generator underneath, for workloads built from a synthetic
    /// benchmark (trace generation wants `next_cmd`, which includes
    /// reads).
    #[must_use]
    pub fn as_synthetic_mut(&mut self) -> Option<&mut SyntheticWorkload> {
        match &mut self.stream {
            Stream::Synthetic(w) => Some(w),
            _ => None,
        }
    }
}

impl AttackStream for BuiltWorkload {
    fn name(&self) -> &str {
        &self.label
    }

    fn next_write(&mut self, feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        match &mut self.stream {
            Stream::Repeat(a) => a.next_write(feedback),
            Stream::Random(a) => a.next_write(feedback),
            Stream::Scan(a) => a.next_write(feedback),
            Stream::Inconsistent(a) => a.next_write(feedback),
            Stream::Synthetic(w) => w.next_write_la(),
            Stream::Trace(t) => t.next_write(),
        }
    }

    fn next_run(&mut self, feedback: Option<&WriteOutcome>, max: u64) -> (LogicalPageAddr, u64) {
        match &mut self.stream {
            Stream::Repeat(a) => a.next_run(feedback, max),
            Stream::Random(a) => a.next_run(feedback, max),
            Stream::Scan(a) => a.next_run(feedback, max),
            Stream::Inconsistent(a) => a.next_run(feedback, max),
            // The synthetic generators ignore feedback and vary their
            // address per write: runs of one, like the legacy
            // `WriteSource::Workload` arm.
            Stream::Synthetic(w) => (w.next_write_la(), 1),
            Stream::Trace(t) => t.next_run(max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{write_trace, MemCmd, MemOp};
    use twl_attacks::Attack;

    fn addrs(stream: &mut dyn AttackStream, n: usize) -> Vec<u64> {
        (0..n).map(|_| stream.next_write(None).index()).collect()
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in AttackKind::ALL {
            let k = WorkloadKind::Attack(kind);
            assert_eq!(k.label().parse::<WorkloadKind>().unwrap(), k);
        }
        for bench in ParsecBenchmark::ALL {
            let k = WorkloadKind::Parsec(bench);
            assert_eq!(k.label().parse::<WorkloadKind>().unwrap(), k);
        }
        assert_eq!(
            "trace".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Trace
        );
        assert_eq!("SCAN".parse::<WorkloadKind>().unwrap().label(), "scan");
        assert!("parsec".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn default_specs_render_and_encode_as_bare_kinds() {
        let spec = WorkloadSpec::from(AttackKind::Scan);
        assert!(spec.is_default());
        assert_eq!(spec.label(), "scan");
        assert_eq!(spec.to_json().to_compact(), "\"scan\"");
        let spec = WorkloadSpec::from(ParsecBenchmark::ALL[2]);
        assert_eq!(spec.to_json().to_compact(), "\"canneal\"");
    }

    #[test]
    fn spec_labels_round_trip() {
        for label in [
            "repeat[target=5]",
            "random[seed=99]",
            "inconsistent[group=8,stride=64,minphase=4096,timeout=8192]",
            "canneal[alpha=1.25,fp=128,rf=0.4,seed=7]",
            "TRACE[path=/tmp/x.trace,seed=3,bw=512.5]",
        ] {
            let spec: WorkloadSpec = label.parse().unwrap();
            assert_eq!(spec.label(), label);
            let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "scan[seed=1]",
            "repeat[seed=1]",
            "repeat[target=]",
            "inconsistent[group=0]",
            "inconsistent[stride=1]",
            "canneal[rf=1.5]",
            "canneal[fp=0]",
            "TRACE",
            "TRACE[seed=1]",
            "TRACE[path=]",
            "mystery",
            "scan[",
        ] {
            assert!(bad.parse::<WorkloadSpec>().is_err(), "{bad} parsed");
        }
    }

    #[test]
    fn list_splits_outside_brackets() {
        let specs = parse_workload_list("inconsistent[group=8,stride=64], scan").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].label(), "scan");
        assert!(parse_workload_list(" , ").is_err());
    }

    #[test]
    fn default_attack_builds_are_bit_identical_to_the_factory() {
        for kind in AttackKind::ALL {
            let spec = WorkloadSpec::from(kind);
            let mut built = spec.build(64, 7).unwrap();
            let mut legacy = Attack::new(kind, 64, 7);
            assert_eq!(built.name(), legacy.name());
            assert_eq!(addrs(&mut built, 200), addrs(&mut legacy, 200), "{kind}");
        }
    }

    #[test]
    fn default_parsec_builds_are_bit_identical_to_the_factory() {
        let bench = ParsecBenchmark::ALL[2];
        let mut built = WorkloadSpec::from(bench).build(128, 42).unwrap();
        let mut legacy = bench.workload(128, 42);
        for _ in 0..200 {
            assert_eq!(
                built.next_write(None).index(),
                legacy.next_write_la().index()
            );
        }
    }

    #[test]
    fn overridden_repeat_targets_move_the_hammer() {
        let spec: WorkloadSpec = "repeat[target=9]".parse().unwrap();
        let mut built = spec.build(64, 0).unwrap();
        assert_eq!(built.next_write(None).index(), 9);
        assert!(spec.build(8, 0).is_err(), "target outside the space");
    }

    #[test]
    fn trace_workload_replays_writes_in_a_loop() {
        let path = std::env::temp_dir().join("twl_spec_test_loop.trace");
        let cmds: Vec<MemCmd> = [3u64, 3, 7, 200]
            .iter()
            .map(|&la| MemCmd {
                op: MemOp::Write,
                la: LogicalPageAddr::new(la),
            })
            .chain(std::iter::once(MemCmd {
                op: MemOp::Read,
                la: LogicalPageAddr::new(1),
            }))
            .collect();
        let mut file = std::fs::File::create(&path).unwrap();
        write_trace(&mut file, &cmds).unwrap();
        let spec = WorkloadSpec::trace(path.to_str().unwrap());
        let mut built = spec.build(64, 0).unwrap();
        // 200 % 64 = 8; reads are dropped; the loop wraps.
        assert_eq!(addrs(&mut built, 6), vec![3, 3, 7, 8, 3, 3]);
        // Batched replay declares the duplicate-address run.
        let mut batched = spec.build(64, 0).unwrap();
        let (la, len) = AttackStream::next_run(&mut batched, None, 1000);
        assert_eq!((la.index(), len), (3, 2));
        let (la, len) = AttackStream::next_run(&mut batched, None, 1000);
        assert_eq!((la.index(), len), (7, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_seed_rotates_the_start_and_missing_traces_are_typed_errors() {
        let path = std::env::temp_dir().join("twl_spec_test_rotate.trace");
        let cmds: Vec<MemCmd> = [1u64, 2, 3]
            .iter()
            .map(|&la| MemCmd {
                op: MemOp::Write,
                la: LogicalPageAddr::new(la),
            })
            .collect();
        let mut file = std::fs::File::create(&path).unwrap();
        write_trace(&mut file, &cmds).unwrap();
        let spec: WorkloadSpec = format!("TRACE[path={},seed=5]", path.display())
            .parse()
            .unwrap();
        let mut built = spec.build(64, 0).unwrap();
        // 5 % 3 = 2: replay starts at the third write.
        assert_eq!(addrs(&mut built, 4), vec![3, 1, 2, 3]);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            spec.build(64, 0),
            Err(WorkloadError::Unbuildable { .. })
        ));
    }

    #[test]
    fn bandwidth_calibration_sources() {
        assert_eq!(WorkloadSpec::from(AttackKind::Scan).bandwidth_mbps(), None);
        assert_eq!(
            WorkloadSpec::from(ParsecBenchmark::Vips).bandwidth_mbps(),
            Some(3309.0)
        );
        let spec: WorkloadSpec = "TRACE[path=x.trace,bw=256]".parse().unwrap();
        assert_eq!(spec.bandwidth_mbps(), Some(256.0));
    }
}
