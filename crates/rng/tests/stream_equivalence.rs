//! Property tests pinning the bulk RNG paths to the scalar draw order.
//!
//! The simulator's bit-identity contracts are all phrased in terms of
//! *sequential* `next_u64` draws; the fast paths (`fill_u64`,
//! `jump_ahead`, the [`RngBuffer`] FIFO) are pure optimizations and
//! must be indistinguishable from that reference — for every seed,
//! every length, every offset, and every interleaving.

use proptest::prelude::*;
use twl_rng::{RngBuffer, SimRng, SplitMix64, Xoshiro256StarStar};

/// Sequential reference: `n` scalar draws.
fn scalar_draws(rng: &mut impl SimRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    /// `fill_u64` produces exactly the scalar stream, and leaves the
    /// generator in exactly the scalar-path state (checked by drawing
    /// past the filled span), for arbitrary split points.
    #[test]
    fn xoshiro_fill_matches_scalar_draws(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..200, 1..6),
    ) {
        let mut bulk = Xoshiro256StarStar::seed_from(seed);
        let mut scalar = Xoshiro256StarStar::seed_from(seed);
        for len in lens {
            let mut out = vec![0u64; len];
            bulk.fill_u64(&mut out);
            prop_assert_eq!(out, scalar_draws(&mut scalar, len));
        }
        prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
    }

    #[test]
    fn splitmix_fill_matches_scalar_draws(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..200, 1..6),
    ) {
        let mut bulk = SplitMix64::seed_from(seed);
        let mut scalar = SplitMix64::seed_from(seed);
        for len in lens {
            let mut out = vec![0u64; len];
            bulk.fill_u64(&mut out);
            prop_assert_eq!(out, scalar_draws(&mut scalar, len));
        }
        prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
    }

    /// Jumping `n` draws ahead lands on exactly the value the scalar
    /// path reaches after `n` discarded draws — for xoshiro the skip is
    /// a scramble-free state walk, so this pins the two update
    /// functions against each other.
    #[test]
    fn xoshiro_jump_ahead_matches_discarded_draws(
        seed in any::<u64>(),
        skip in 0u64..500,
    ) {
        let mut jumped = Xoshiro256StarStar::seed_from(seed);
        jumped.jump_ahead(skip);
        let mut scalar = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..skip {
            let _ = scalar.next_u64();
        }
        prop_assert_eq!(scalar_draws(&mut jumped, 4), scalar_draws(&mut scalar, 4));
    }

    /// SplitMix's O(1) jump is a closed-form multiply-add; large skips
    /// must agree with composition (jump(a) ∘ jump(b) = jump(a + b))
    /// and with the scalar walk for the low bits we can afford to step.
    #[test]
    fn splitmix_jump_ahead_matches_discarded_draws(
        seed in any::<u64>(),
        skip in 0u64..2_000,
        huge in any::<u64>(),
    ) {
        let mut jumped = SplitMix64::seed_from(seed);
        jumped.jump_ahead(skip);
        let mut scalar = SplitMix64::seed_from(seed);
        for _ in 0..skip {
            let _ = scalar.next_u64();
        }
        prop_assert_eq!(scalar_draws(&mut jumped, 4), scalar_draws(&mut scalar, 4));

        let mut composed = SplitMix64::seed_from(seed);
        composed.jump_ahead(huge);
        composed.jump_ahead(skip);
        let mut direct = SplitMix64::seed_from(seed);
        direct.jump_ahead(huge.wrapping_add(skip));
        prop_assert_eq!(composed.next_u64(), direct.next_u64());
    }

    /// Any interleaving of prefetches and draws through [`RngBuffer`]
    /// observes the inner generator's exact stream — a consumer cannot
    /// tell buffered values from live draws.
    #[test]
    fn rng_buffer_interleavings_are_invisible(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0usize..64, 1usize..48), 1..12),
    ) {
        let mut buffered = RngBuffer::new(Xoshiro256StarStar::seed_from(seed));
        let mut scalar = Xoshiro256StarStar::seed_from(seed);
        for (prefetch, draws) in ops {
            buffered.prefetch(prefetch);
            for _ in 0..draws {
                prop_assert_eq!(buffered.next_u64(), scalar.next_u64());
            }
        }
    }
}
