//! A FIFO prefetch buffer over a simulation generator.
//!
//! Event-dense batch loops want their randomness generated in one bulk
//! pass ([`SimRng::fill_u64`]) instead of one state update per event,
//! but the simulator's bit-identity contracts pin the *scalar* draw
//! order. [`RngBuffer`] reconciles the two: values are pre-generated in
//! stream order and handed out first-in-first-out, so any interleaving
//! of buffered and on-demand consumption observes exactly the inner
//! generator's sequence — a consumer cannot tell whether a value came
//! from the buffer or from a live draw.

use crate::SimRng;

/// A FIFO refill buffer over an inner generator.
///
/// [`SimRng::next_u64`] pops pre-generated values while any are
/// buffered and falls through to the inner generator otherwise, so the
/// observed stream is always the inner generator's, draw for draw.
/// Call [`RngBuffer::prefetch`] before an event-dense stretch to
/// amortize generation into one bulk pass; leftover values simply serve
/// later draws.
///
/// # Examples
///
/// ```
/// use twl_rng::{RngBuffer, SimRng, Xoshiro256StarStar};
///
/// let mut plain = Xoshiro256StarStar::seed_from(7);
/// let mut buffered = RngBuffer::new(Xoshiro256StarStar::seed_from(7));
/// buffered.prefetch(3); // covers only some of the draws below
/// for _ in 0..8 {
///     assert_eq!(buffered.next_u64(), plain.next_u64());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RngBuffer<R> {
    inner: R,
    buf: Vec<u64>,
    pos: usize,
}

impl<R: SimRng> RngBuffer<R> {
    /// Wraps `inner` with an (initially empty) buffer.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Ensures at least `n` values are buffered, generating the
    /// shortfall from the inner stream in one bulk pass.
    pub fn prefetch(&mut self, n: usize) {
        let have = self.buf.len() - self.pos;
        if have >= n {
            return;
        }
        // Compact the consumed prefix, then bulk-generate the rest.
        self.buf.drain(..self.pos);
        self.pos = 0;
        let start = self.buf.len();
        self.buf.resize(n, 0);
        self.inner.fill_u64(&mut self.buf[start..]);
    }

    /// Values currently buffered and not yet consumed.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read-only access to the inner generator's state.
    ///
    /// Note the inner generator sits `buffered()` draws *ahead* of the
    /// observed stream while values remain buffered.
    #[must_use]
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: SimRng> SimRng for RngBuffer<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos < self.buf.len() {
            let v = self.buf[self.pos];
            self.pos += 1;
            v
        } else {
            self.inner.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SplitMix64, Xoshiro256StarStar};

    #[test]
    fn buffered_stream_matches_plain_stream() {
        let mut plain = Xoshiro256StarStar::seed_from(42);
        let mut buffered = RngBuffer::new(Xoshiro256StarStar::seed_from(42));
        // Interleave prefetches of assorted sizes with draws; the
        // observed stream must stay draw-for-draw identical.
        for (i, &pre) in [0usize, 5, 1, 16, 0, 3, 64, 2].iter().enumerate() {
            buffered.prefetch(pre);
            for _ in 0..=(i * 3) {
                assert_eq!(buffered.next_u64(), plain.next_u64());
            }
        }
    }

    #[test]
    fn prefetch_is_idempotent_when_enough_is_buffered() {
        let mut buffered = RngBuffer::new(SplitMix64::seed_from(1));
        buffered.prefetch(8);
        let inner_before = *buffered.inner();
        buffered.prefetch(4);
        assert_eq!(*buffered.inner(), inner_before);
        assert_eq!(buffered.buffered(), 8);
    }

    #[test]
    fn bounded_draws_match_through_the_buffer() {
        let mut plain = Xoshiro256StarStar::seed_from(9);
        let mut buffered = RngBuffer::new(Xoshiro256StarStar::seed_from(9));
        buffered.prefetch(32);
        for bound in [3u64, 10, 7, 1 << 40, 2, 100] {
            assert_eq!(buffered.next_bounded(bound), plain.next_bounded(bound));
        }
    }
}
