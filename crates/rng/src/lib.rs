#![warn(missing_docs)]

//! Deterministic random-number generation for the `tossup-wl` simulator.
//!
//! Two families of generators live here, mirroring the two places the
//! DAC'17 *Toss-up Wear Leveling* paper needs randomness:
//!
//! * **Hardware-style RNGs** — [`FeistelRng`] models the 8-bit-wide
//!   Feistel-network generator the paper budgets at fewer than 128 logic
//!   gates (§5.4, borrowed from Start-Gap). [`FeistelPermutation`]
//!   generalizes the same network to an arbitrary-width *bijective*
//!   address scrambler, which is what Security Refresh and Start-Gap
//!   style schemes use to randomize address maps.
//! * **Simulation RNGs** — [`SplitMix64`] and [`Xoshiro256StarStar`] are
//!   fast, seedable generators used for everything on the simulation side
//!   (process-variation sampling, workload generation, attack address
//!   choices). They implement [`rand::RngCore`] so they compose with the
//!   `rand` ecosystem.
//!
//! Every generator is constructed from an explicit seed: two runs of the
//! simulator with the same seeds produce bit-identical results.
//!
//! # Examples
//!
//! ```
//! use twl_rng::{SimRng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from(42);
//! let a = rng.next_u64();
//! let mut rng2 = Xoshiro256StarStar::seed_from(42);
//! assert_eq!(a, rng2.next_u64());
//! ```

mod buffer;
mod feistel;
mod gauss;
mod splitmix;
mod xoshiro;

pub use buffer::RngBuffer;
pub use feistel::{FeistelPermutation, FeistelRng, FEISTEL_DEFAULT_ROUNDS};
pub use gauss::GaussianSampler;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// Convenience trait unifying the simulator-side generators.
///
/// All simulator RNGs are seeded from a single `u64` so experiment
/// configurations stay small and printable. The trait is object-safe so
/// heterogeneous scheme implementations can share a `&mut dyn SimRng`.
///
/// # Examples
///
/// ```
/// use twl_rng::{SimRng, SplitMix64};
///
/// fn roll(rng: &mut dyn SimRng) -> u64 {
///     rng.next_u64() % 6 + 1
/// }
/// let mut rng = SplitMix64::seed_from(7);
/// let v = roll(&mut rng);
/// assert!((1..=6).contains(&v));
/// ```
pub trait SimRng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `out` with the next `out.len()` values of the stream, in
    /// draw order — exactly equivalent to that many
    /// [`SimRng::next_u64`] calls.
    ///
    /// The provided implementation loops; generators override it with a
    /// register-resident bulk pass (see
    /// [`Xoshiro256StarStar::fill_u64`]).
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// This is the integer-compare formulation used by the hardware
    /// toss-up (`alpha < E_A / (E_A + E_B)` becomes a bounded-integer
    /// comparison), avoiding floating point in the modelled datapath.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    fn bernoulli_ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "denominator must be positive");
        assert!(num <= den, "probability numerator exceeds denominator");
        self.next_bounded(den) < num
    }
}

impl SimRng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        SplitMix64::fill_u64(self, out);
    }
}

impl SimRng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        Xoshiro256StarStar::fill_u64(self, out);
    }
}

impl SimRng for FeistelRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        FeistelRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_is_in_range() {
        let mut rng = SplitMix64::seed_from(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = Xoshiro256StarStar::seed_from(9);
        for _ in 0..1000 {
            let v = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::seed_from(3);
        for _ in 0..50 {
            assert!(rng.bernoulli_ratio(5, 5));
            assert!(!rng.bernoulli_ratio(0, 5));
        }
    }

    #[test]
    fn bernoulli_ratio_is_calibrated() {
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.bernoulli_ratio(3, 10)).count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        let mut rng = SplitMix64::seed_from(1);
        let _ = rng.next_bounded(0);
    }

    #[test]
    fn sim_rng_is_object_safe() {
        let mut rng = SplitMix64::seed_from(2);
        let dyn_rng: &mut dyn SimRng = &mut rng;
        let _ = dyn_rng.next_u64();
    }
}
