//! Feistel-network hardware RNG and bijective address permutation.
//!
//! §5.4 of the paper adopts "an 8-bit width Feistel Network … which costs
//! less than 128 gates" as the toss-up's random number generator — the
//! same construction Start-Gap (Qureshi+, MICRO'09) uses for address-space
//! randomization. A balanced Feistel network over a `2w`-bit value is a
//! *permutation* for any round function, which gives two useful objects:
//!
//! * [`FeistelRng`]: iterate the permutation over a counter → a stream of
//!   non-repeating pseudo-random values (a cheap hardware RNG).
//! * [`FeistelPermutation`]: a keyed bijection over `[0, 2^bits)`, used by
//!   randomized remapping schemes to scramble address spaces without any
//!   table storage.

use crate::SplitMix64;

/// Default number of Feistel rounds.
///
/// Three rounds are the minimum for a "secure-ish" mix; hardware RNGs in
/// the Start-Gap lineage use 3–4. The default favours the 4-round variant
/// for better diffusion at negligible simulated cost.
pub const FEISTEL_DEFAULT_ROUNDS: u32 = 4;

/// Round function: a small keyed integer hash truncated to `half_bits`.
///
/// In hardware this is a handful of XOR/AND gates; in the simulator we use
/// a multiplicative hash which keeps the permutation property (the round
/// function never needs to be invertible) while giving good diffusion.
fn round_fn(value: u64, key: u64, half_mask: u64) -> u64 {
    let mut x = value ^ key;
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x & half_mask
}

/// A keyed bijective permutation over `[0, 2^bits)` built from a balanced
/// Feistel network.
///
/// Randomized wear-leveling schemes (Start-Gap, Security Refresh) need a
/// storage-free, invertible scrambling of the physical address space.
/// A Feistel network delivers exactly that: `permute` and `invert` are
/// exact inverses for every key and round count.
///
/// `bits` must be even (balanced halves) and in `2..=62`.
///
/// # Examples
///
/// ```
/// use twl_rng::FeistelPermutation;
///
/// let perm = FeistelPermutation::new(10, 0xDEADBEEF, 4);
/// for v in 0..1024 {
///     assert_eq!(perm.invert(perm.permute(v)), v);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeistelPermutation {
    bits: u32,
    rounds: u32,
    keys: [u64; 8],
}

impl FeistelPermutation {
    /// Maximum supported rounds.
    pub const MAX_ROUNDS: u32 = 8;

    /// Creates a permutation over `[0, 2^bits)` with round keys derived
    /// from `key`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is odd, `bits` is outside `2..=62`, or `rounds`
    /// is outside `1..=8`.
    #[must_use]
    pub fn new(bits: u32, key: u64, rounds: u32) -> Self {
        assert!(
            bits.is_multiple_of(2),
            "feistel width must be even, got {bits}"
        );
        assert!(
            (2..=62).contains(&bits),
            "feistel width out of range: {bits}"
        );
        assert!(
            (1..=Self::MAX_ROUNDS).contains(&rounds),
            "rounds out of range: {rounds}"
        );
        let mut sm = SplitMix64::seed_from(key);
        let mut keys = [0u64; 8];
        for k in &mut keys {
            *k = sm.next_u64();
        }
        Self { bits, rounds, keys }
    }

    /// The domain size `2^bits`.
    #[must_use]
    pub fn domain(&self) -> u64 {
        1u64 << self.bits
    }

    /// Applies the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^bits`.
    #[must_use]
    pub fn permute(&self, value: u64) -> u64 {
        assert!(value < self.domain(), "value outside feistel domain");
        let half = self.bits / 2;
        let half_mask = (1u64 << half) - 1;
        let mut left = value >> half;
        let mut right = value & half_mask;
        for r in 0..self.rounds {
            let new_left = right;
            let new_right = left ^ round_fn(right, self.keys[r as usize], half_mask);
            left = new_left;
            right = new_right;
        }
        (left << half) | right
    }

    /// Applies the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^bits`.
    #[must_use]
    pub fn invert(&self, value: u64) -> u64 {
        assert!(value < self.domain(), "value outside feistel domain");
        let half = self.bits / 2;
        let half_mask = (1u64 << half) - 1;
        let mut left = value >> half;
        let mut right = value & half_mask;
        for r in (0..self.rounds).rev() {
            let prev_right = left;
            let prev_left = right ^ round_fn(prev_right, self.keys[r as usize], half_mask);
            left = prev_left;
            right = prev_right;
        }
        (left << half) | right
    }

    /// Estimated combinational gate cost of the hardware network.
    ///
    /// The paper's figure for the 8-bit, low-round variant is "less than
    /// 128 gates"; we model ~7 gates per round-function output bit per
    /// round (XOR tree + key mix acting on the `bits/2`-wide half), which
    /// reproduces that budget: `7 × 4 × 4 = 112 < 128`.
    #[must_use]
    pub fn gate_estimate(&self) -> u64 {
        u64::from(7 * (self.bits / 2) * self.rounds)
    }
}

/// The paper's 8-bit Feistel-network random number generator.
///
/// A counter walks through `[0, 256)` and is scrambled by a keyed
/// [`FeistelPermutation`]; each step yields 8 pseudo-random bits. The
/// hardware costs fewer than 128 gates (§5.4) and has a 4-cycle latency
/// (Table 1). To satisfy [`crate::SimRng`], eight consecutive 8-bit
/// outputs are concatenated per `next_u64` call — the permutation is
/// re-keyed every wrap so the long-run stream does not cycle at 256.
///
/// # Examples
///
/// ```
/// use twl_rng::FeistelRng;
///
/// let mut rng = FeistelRng::new(0x5EED);
/// let byte = rng.next_u8();
/// let again = rng.next_u8();
/// // Within one counter epoch the permutation never repeats a value.
/// assert_ne!(byte, again);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeistelRng {
    perm: FeistelPermutation,
    counter: u16,
    epoch_key: u64,
}

impl FeistelRng {
    /// Bit width of the hardware network.
    pub const WIDTH_BITS: u32 = 8;

    /// Creates the generator with the given key seed.
    #[must_use]
    pub fn new(key: u64) -> Self {
        Self {
            perm: FeistelPermutation::new(Self::WIDTH_BITS, key, FEISTEL_DEFAULT_ROUNDS),
            counter: 0,
            epoch_key: key,
        }
    }

    /// Returns the next 8 pseudo-random bits.
    pub fn next_u8(&mut self) -> u8 {
        let out = self.perm.permute(u64::from(self.counter)) as u8;
        self.counter += 1;
        if self.counter == 256 {
            // Hardware re-keys from an entropy register each epoch; we
            // model it by chaining the key through SplitMix64.
            self.counter = 0;
            self.epoch_key = SplitMix64::seed_from(self.epoch_key).next_u64();
            self.perm =
                FeistelPermutation::new(Self::WIDTH_BITS, self.epoch_key, FEISTEL_DEFAULT_ROUNDS);
        }
        out
    }

    /// Returns the next 64 bits by concatenating eight 8-bit outputs.
    pub fn next_u64(&mut self) -> u64 {
        let mut v = 0u64;
        for _ in 0..8 {
            v = (v << 8) | u64::from(self.next_u8());
        }
        v
    }

    /// Estimated gate cost of the hardware RNG (paper: "<128 gates").
    #[must_use]
    pub fn gate_estimate(&self) -> u64 {
        self.perm.gate_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective_small_domains() {
        for bits in [2u32, 4, 8, 10] {
            let perm = FeistelPermutation::new(bits, 0xABCD, 4);
            let n = perm.domain();
            let mut seen = vec![false; n as usize];
            for v in 0..n {
                let p = perm.permute(v);
                assert!(p < n);
                assert!(!seen[p as usize], "collision at {v} -> {p} (bits={bits})");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn invert_roundtrip_large_domain() {
        let perm = FeistelPermutation::new(32, 0x1234_5678, 4);
        let mut sm = SplitMix64::seed_from(7);
        for _ in 0..1000 {
            let v = sm.next_u64() & (perm.domain() - 1);
            assert_eq!(perm.invert(perm.permute(v)), v);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = FeistelPermutation::new(16, 1, 4);
        let b = FeistelPermutation::new(16, 2, 4);
        let same = (0..1u64 << 16)
            .filter(|&v| a.permute(v) == b.permute(v))
            .count();
        // Two random permutations of 65536 elements agree ~1 time.
        assert!(same < 32, "keys too correlated: {same} fixed pairs");
    }

    #[test]
    fn rng_epoch_is_a_permutation_of_bytes() {
        let mut rng = FeistelRng::new(42);
        let mut seen = [false; 256];
        for _ in 0..256 {
            let b = rng.next_u8() as usize;
            assert!(!seen[b]);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rng_rekeys_after_epoch() {
        let mut rng = FeistelRng::new(42);
        let first: Vec<u8> = (0..256).map(|_| rng.next_u8()).collect();
        let second: Vec<u8> = (0..256).map(|_| rng.next_u8()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn gate_budget_matches_paper() {
        let rng = FeistelRng::new(0);
        assert!(rng.gate_estimate() < 128, "paper budget is <128 gates");
    }

    #[test]
    #[should_panic(expected = "feistel width must be even")]
    fn odd_width_panics() {
        let _ = FeistelPermutation::new(9, 0, 4);
    }

    #[test]
    #[should_panic(expected = "value outside feistel domain")]
    fn out_of_domain_panics() {
        let perm = FeistelPermutation::new(8, 0, 4);
        let _ = perm.permute(256);
    }
}
