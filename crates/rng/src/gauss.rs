//! Gaussian sampling for the process-variation endurance model.

use crate::SimRng;

/// A Gaussian (normal) sampler using the Marsaglia polar method.
///
/// §5.1 of the paper assumes per-page endurance follows a Gaussian
/// distribution with mean 10⁸ and standard deviation 11 % of the mean.
/// This sampler generates that distribution deterministically from any
/// [`SimRng`].
///
/// # Examples
///
/// ```
/// use twl_rng::{GaussianSampler, SplitMix64};
///
/// let mut rng = SplitMix64::seed_from(1);
/// let gauss = GaussianSampler::new(100.0, 11.0);
/// let x = gauss.sample(&mut rng);
/// assert!(x > 0.0 && x < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSampler {
    mean: f64,
    std_dev: f64,
}

impl GaussianSampler {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite(),
            "parameters must be finite"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Self { mean, std_dev }
    }

    /// The configured mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut dyn SimRng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws one sample truncated below at `floor`.
    ///
    /// Endurance can never be negative; the endurance model clips the
    /// (rare, ~10⁻¹⁹ at σ=11 %) negative tail rather than resampling so
    /// the draw count stays deterministic per page index.
    pub fn sample_clipped(&self, rng: &mut dyn SimRng, floor: f64) -> f64 {
        self.sample(rng).max(floor)
    }
}

/// One standard-normal variate via the Marsaglia polar method.
fn standard_normal(rng: &mut dyn SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.next_unit_f64() - 1.0;
        let v = 2.0 * rng.next_unit_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256StarStar;

    #[test]
    fn moments_match() {
        let mut rng = Xoshiro256StarStar::seed_from(77);
        let gauss = GaussianSampler::new(1.0e8, 0.11e8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean / 1.0e8 - 1.0).abs() < 0.005, "mean = {mean}");
        assert!(
            (var.sqrt() / 0.11e8 - 1.0).abs() < 0.02,
            "sd = {}",
            var.sqrt()
        );
    }

    #[test]
    fn clipped_never_below_floor() {
        let mut rng = Xoshiro256StarStar::seed_from(3);
        let gauss = GaussianSampler::new(0.0, 10.0);
        for _ in 0..10_000 {
            assert!(gauss.sample_clipped(&mut rng, 1.0) >= 1.0);
        }
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = Xoshiro256StarStar::seed_from(4);
        let gauss = GaussianSampler::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(gauss.sample(&mut rng), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation must be non-negative")]
    fn negative_sd_panics() {
        let _ = GaussianSampler::new(0.0, -1.0);
    }
}
