//! xoshiro256**: the main simulation generator.

use crate::SplitMix64;

/// A xoshiro256** pseudo-random number generator.
///
/// This is the generator recommended by Blackman & Vigna for all-purpose
/// 64-bit work: 256 bits of state, period 2²⁵⁶−1, excellent statistical
/// quality. The simulator uses it wherever long streams are consumed
/// (workload generation, endurance sampling, attack address selection).
///
/// The 256-bit state is expanded from a single `u64` seed with
/// [`SplitMix64`], per the reference guidance.
///
/// # Examples
///
/// ```
/// use twl_rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from(7);
/// let first = rng.next_u64();
/// assert_ne!(first, rng.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded to the full 256-bit state via SplitMix64, so
    /// even adjacent seeds produce uncorrelated streams.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fills `out` with the next `out.len()` values of the stream, in
    /// draw order — exactly equivalent to that many
    /// [`Xoshiro256StarStar::next_u64`] calls. Keeping the 256-bit state
    /// in registers across the whole run lets an event-dense batch draw
    /// its randomness in one pass.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out {
            *slot = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Advances the generator by `n` draws, discarding the outputs.
    ///
    /// Equivalent to calling [`Xoshiro256StarStar::next_u64`] `n` times
    /// and ignoring the results, but skips the `**` output scramble and
    /// keeps the state in registers, so it runs at a few cycles per
    /// step. There is no closed form for arbitrary `n` (contrast
    /// [`SplitMix64::jump_ahead`](crate::SplitMix64::jump_ahead)); for
    /// partitioning a stream into parallel substreams use the O(1)
    /// fixed-distance [`Xoshiro256StarStar::jump`] instead.
    pub fn jump_ahead(&mut self, n: u64) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for _ in 0..n {
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Advances the generator 2¹²⁸ steps, for partitioning one stream
    /// into non-overlapping parallel substreams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if j & (1u64 << b) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Self::seed_from(0)
    }
}

impl rand::RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (Xoshiro256StarStar::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = Xoshiro256StarStar::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Xoshiro256StarStar::seed_from(99);
        let mut b = Xoshiro256StarStar::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256StarStar::seed_from(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(xs.iter().all(|x| !ys.contains(x)));
    }

    #[test]
    fn rough_uniformity() {
        // Chi-square over 16 buckets stays within a generous band.
        let mut rng = Xoshiro256StarStar::seed_from(2024);
        let mut buckets = [0u64; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 15 degrees of freedom: p=0.001 critical value is 37.7.
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }
}
