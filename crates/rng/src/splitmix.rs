//! SplitMix64: a tiny, high-quality 64-bit generator.
//!
//! Used both as a standalone simulation RNG and as the seed expander for
//! [`Xoshiro256StarStar`](crate::Xoshiro256StarStar), following the
//! reference recommendation by Blackman & Vigna.

/// A SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a full 2⁶⁴ period, and is the standard
/// way to expand a single `u64` seed into larger generator states. It is
/// the default workhorse RNG for small simulator components.
///
/// # Examples
///
/// ```
/// use twl_rng::SplitMix64;
///
/// let mut rng = SplitMix64::seed_from(0);
/// // Known first output of SplitMix64 seeded with 0.
/// assert_eq!(rng.next_u64(), 0xE220A8397B1DCDAF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment of the SplitMix64 state sequence.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[inline]
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fills `out` with the next `out.len()` values of the stream, in
    /// draw order — exactly equivalent to that many
    /// [`SplitMix64::next_u64`] calls.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut state = self.state;
        for slot in out {
            state = state.wrapping_add(GOLDEN);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        self.state = state;
    }

    /// Advances the generator by `n` draws in O(1).
    ///
    /// The SplitMix64 state walks an additive sequence
    /// (`state += GOLDEN` per draw), so skipping `n` draws is a single
    /// wrapping multiply-add. Afterwards the generator produces exactly
    /// the values `n` sequential [`SplitMix64::next_u64`] calls would
    /// have led to.
    #[inline]
    pub fn jump_ahead(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GOLDEN.wrapping_mul(n));
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::seed_from(0)
    }
}

impl rand::RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = SplitMix64::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Reference values from the canonical C implementation with seed
        // 1234567.
        let mut rng = SplitMix64::seed_from(1234567);
        let v: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::seed_from(1);
        let mut b = SplitMix64::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        use rand::RngCore;
        let mut rng = SplitMix64::seed_from(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
