//! The inconsistent-write attack (paper §3.2, Fig. 3).

use crate::{AttackStream, SwapDetector};
use serde::{Deserialize, Serialize};
use twl_pcm::LogicalPageAddr;
use twl_wl_core::WriteOutcome;

/// Configuration of [`InconsistentAttack`].
///
/// # Examples
///
/// ```
/// use twl_attacks::InconsistentConfig;
///
/// let config = InconsistentConfig::for_pages(8192);
/// assert_eq!(config.group_size, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InconsistentConfig {
    /// Addresses per tier group. The attack uses two groups of this
    /// size (`LA_0 .. LA_{2g-1}`): one plays the *victim* tier (written
    /// just often enough to be observed and classified cold), the other
    /// the *firehose* tier (a steep geometric intensity gradient). The
    /// roles swap at every reversal.
    pub group_size: u64,
    /// How many of the firehose group's addresses carry the geometric
    /// boost (the top address alone takes ≈half the firehose traffic,
    /// like Fig. 3's `90` of `190`).
    pub firehose_ranks: u32,
    /// One victim write is interleaved every `victim_stride` writes, so
    /// each victim accumulates a small, *nonzero* count per prediction
    /// window — enough to be seen, never enough to look warm. This is
    /// the "write number properly set" of §3.2.
    pub victim_stride: u64,
    /// Base write count of the hottest firehose address per sweep.
    pub firehose_base: u64,
    /// Blocking-cycles threshold for swap-phase detection.
    pub detect_threshold_cycles: u64,
    /// Ignore detections until the current phase has lasted this many
    /// writes. The scheme needs time to observe the victims as cold and
    /// park them before a reversal pays off; flipping on every detected
    /// background swap would outrun the prediction machinery.
    pub min_phase_writes: u64,
    /// Force a reversal after this many writes without a detected swap.
    /// An adaptive scheme that reaches a stable mapping stops producing
    /// observable swaps; a patient attacker flips anyway to re-poison
    /// the prediction.
    pub phase_timeout_writes: u64,
}

impl InconsistentConfig {
    /// Defaults for a device of `pages` pages: two 32-address groups,
    /// 16 boosted ranks, one victim write per `pages/2` writes,
    /// detection at 8 page-migrations' blocking (18 000 cycles at
    /// DAC'17 timing), timeout at 32 writes per page.
    #[must_use]
    pub fn for_pages(pages: u64) -> Self {
        let group_size = 16.min(pages / 2).max(1);
        Self {
            group_size,
            firehose_ranks: group_size as u32,
            victim_stride: (pages / 2).max(4),
            firehose_base: 256,
            detect_threshold_cycles: 8 * 2250,
            min_phase_writes: (pages * 32).max(2048),
            phase_timeout_writes: (pages * 64).max(4096),
        }
    }

    /// Total addresses the attack touches.
    #[must_use]
    pub fn working_set(&self) -> u64 {
        2 * self.group_size
    }
}

/// The paper's inconsistent-write attack.
///
/// Repeats two steps (§3.2):
///
/// * **Step-1**: present an inconsistent-looking but front-loaded write
///   distribution: the *victim* group receives a trickle (one write per
///   [`InconsistentConfig::victim_stride`] writes — observed, but
///   unambiguously cold), while the *firehose* group takes a steep
///   geometric gradient. A PV-aware prediction scheme maps the firehose
///   onto strong frames and parks the victims on the weakest frames.
///   Meanwhile, watch response times for the swap phase.
/// * **Step-2**: when a swap phase is detected (or the scheme goes
///   quiet past the timeout), *swap the two groups' roles*: the freshly
///   weak-parked victims now take the firehose — intensive writes land
///   exactly on the weakest frames, and the previous firehose (parked
///   on strong frames) becomes the next round's victims.
///
/// Against TWL the reversal changes nothing, because TWL never
/// predicted anything.
///
/// # Examples
///
/// ```
/// use twl_attacks::{AttackStream, InconsistentAttack, InconsistentConfig};
///
/// let mut attack = InconsistentAttack::new(&InconsistentConfig::for_pages(256));
/// let la = attack.next_write(None);
/// assert!(la.index() < 64);
/// assert!(!attack.reversed());
/// ```
#[derive(Debug, Clone)]
pub struct InconsistentAttack {
    config: InconsistentConfig,
    detector: SwapDetector,
    /// false: low group = victims, high group = firehose (step-1);
    /// true: roles swapped (step-2).
    reversed: bool,
    writes: u64,
    writes_since_flip: u64,
    /// Round-robin position within the victim group.
    victim_next: u64,
    /// Firehose sweep state: rank from the top (0 = hottest) and writes
    /// remaining at that rank.
    fire_rank: u32,
    fire_remaining: u64,
    reversals: u64,
    timeout_flips: u64,
}

impl InconsistentAttack {
    /// Creates the attack.
    ///
    /// # Panics
    ///
    /// Panics if the group size, stride, or firehose configuration is
    /// zero.
    #[must_use]
    pub fn new(config: &InconsistentConfig) -> Self {
        assert!(config.group_size > 0, "attack needs a non-empty group");
        assert!(config.victim_stride > 1, "victim stride must exceed 1");
        assert!(
            config.firehose_ranks > 0 && u64::from(config.firehose_ranks) <= config.group_size,
            "firehose ranks must fit in the group"
        );
        assert!(config.firehose_base > 0, "firehose base must be positive");
        Self {
            config: *config,
            detector: SwapDetector::new(config.detect_threshold_cycles),
            reversed: false,
            writes: 0,
            writes_since_flip: 0,
            victim_next: 0,
            fire_rank: 0,
            fire_remaining: config.firehose_base,
            reversals: 0,
            timeout_flips: 0,
        }
    }

    /// Whether the groups' roles are currently swapped.
    #[must_use]
    pub fn reversed(&self) -> bool {
        self.reversed
    }

    /// Number of detection-triggered reversals so far.
    #[must_use]
    pub fn reversals(&self) -> u64 {
        self.reversals
    }

    /// Number of reversals forced by the phase timeout.
    #[must_use]
    pub fn timeout_flips(&self) -> u64 {
        self.timeout_flips
    }

    /// The victim group's address for round-robin slot `i`: the low
    /// group in step-1, the high group in step-2.
    fn victim_address(&self, i: u64) -> LogicalPageAddr {
        if self.reversed {
            LogicalPageAddr::new(self.config.group_size + i)
        } else {
            LogicalPageAddr::new(i)
        }
    }

    /// The firehose address `from_top` places from its top. The
    /// firehose always ascends from its group's *lowest* index, because
    /// that is the member a deterministic cold-ranking parks deepest
    /// (among equally-cold victims, ties break by address) — step-2's
    /// hottest address is exactly step-1's most-reliably-parked victim.
    fn firehose_address(&self, from_top: u32) -> LogicalPageAddr {
        if self.reversed {
            LogicalPageAddr::new(u64::from(from_top))
        } else {
            LogicalPageAddr::new(self.config.group_size + u64::from(from_top))
        }
    }

    /// Firehose writes at `from_top` per sweep: geometric halving.
    fn firehose_weight(&self, from_top: u32) -> u64 {
        (self.config.firehose_base >> from_top).max(1)
    }

    fn flip(&mut self) {
        self.reversed = !self.reversed;
        self.writes_since_flip = 0;
        self.victim_next = 0;
        self.fire_rank = 0;
        self.fire_remaining = self.firehose_weight(0);
    }
}

impl AttackStream for InconsistentAttack {
    fn name(&self) -> &str {
        "inconsistent"
    }

    fn next_write(&mut self, feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        self.writes += 1;
        self.writes_since_flip += 1;
        let mut flip = false;
        if let Some(out) = feedback {
            let detected = self.detector.observe(out);
            if detected && self.writes_since_flip >= self.config.min_phase_writes {
                flip = true;
                self.reversals += 1;
            }
        }
        if !flip && self.writes_since_flip >= self.config.phase_timeout_writes {
            flip = true;
            self.timeout_flips += 1;
        }
        if flip {
            self.flip();
        }

        // Interleave the victim trickle.
        if self.writes.is_multiple_of(self.config.victim_stride) {
            let la = self.victim_address(self.victim_next);
            self.victim_next = (self.victim_next + 1) % self.config.group_size;
            return la;
        }

        // Firehose sweep, hottest-first.
        let la = self.firehose_address(self.fire_rank);
        self.fire_remaining -= 1;
        if self.fire_remaining == 0 {
            self.fire_rank += 1;
            if self.fire_rank == self.config.firehose_ranks {
                self.fire_rank = 0;
            }
            self.fire_remaining = self.firehose_weight(self.fire_rank);
        }
        la
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PhysicalPageAddr;

    fn no_block() -> WriteOutcome {
        WriteOutcome::plain(PhysicalPageAddr::new(0))
    }

    fn big_block() -> WriteOutcome {
        let mut out = WriteOutcome::plain(PhysicalPageAddr::new(0));
        out.blocking_cycles = 1_000_000;
        out
    }

    fn config() -> InconsistentConfig {
        InconsistentConfig {
            group_size: 32,
            firehose_ranks: 16,
            victim_stride: 64,
            firehose_base: 256,
            detect_threshold_cycles: 10_000,
            min_phase_writes: 0,
            phase_timeout_writes: u64::MAX,
        }
    }

    fn counts_over(attack: &mut InconsistentAttack, writes: u64) -> Vec<u64> {
        let mut counts = vec![0u64; attack.config.working_set() as usize];
        for _ in 0..writes {
            counts[attack.next_write(Some(&no_block())).as_usize()] += 1;
        }
        counts
    }

    #[test]
    fn step1_firehose_hits_high_group_victims_low() {
        let mut attack = InconsistentAttack::new(&config());
        let counts = counts_over(&mut attack, 20_000);
        let top: u64 = counts[32..].iter().sum();
        let low: u64 = counts[..32].iter().sum();
        assert!(top > 20 * low, "firehose {top} vs victims {low}");
        // Victims are written (observably cold), roughly evenly.
        assert!(counts[..32].iter().all(|&c| c > 0));
        // The firehose top is its group's lowest index (the address the
        // scheme will park deepest when roles flip).
        assert!(counts[32] as f64 / top as f64 > 0.4, "{counts:?}");
    }

    #[test]
    fn reversal_swaps_roles_and_aims_at_la0() {
        let mut attack = InconsistentAttack::new(&config());
        let _ = attack.next_write(Some(&big_block()));
        assert!(attack.reversed());
        assert_eq!(attack.reversals(), 1);
        let counts = counts_over(&mut attack, 20_000);
        let low: u64 = counts[..32].iter().sum();
        let high: u64 = counts[32..].iter().sum();
        assert!(low > 20 * high, "reversed firehose {low} vs victims {high}");
        // LA0 — the coldest of step-1 — takes the brunt of step-2.
        assert!(counts[0] as f64 / low as f64 > 0.4, "{counts:?}");
    }

    #[test]
    fn victims_trickle_at_the_stride() {
        let mut attack = InconsistentAttack::new(&config());
        let counts = counts_over(&mut attack, 64 * 32);
        // One victim write per stride: 64*32/64 = 32 victim writes,
        // round-robin → exactly one each.
        assert!(counts[..32].iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn timeout_forces_reversal_when_scheme_goes_quiet() {
        let mut cfg = config();
        cfg.phase_timeout_writes = 500;
        let mut attack = InconsistentAttack::new(&cfg);
        for _ in 0..1000 {
            let _ = attack.next_write(Some(&no_block()));
        }
        assert_eq!(attack.timeout_flips(), 2);
        assert_eq!(attack.reversals(), 0);
        assert!(!attack.reversed(), "two flips return to step-1");
    }

    #[test]
    fn no_detection_without_blocking() {
        let mut attack = InconsistentAttack::new(&config());
        for _ in 0..1000 {
            let _ = attack.next_write(Some(&no_block()));
        }
        assert_eq!(attack.reversals(), 0);
        assert!(!attack.reversed());
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let mut attack = InconsistentAttack::new(&InconsistentConfig::for_pages(256));
        for i in 0..10_000u64 {
            let fb = if i % 977 == 0 {
                big_block()
            } else {
                no_block()
            };
            let la = attack.next_write(Some(&fb));
            assert!(la.index() < 64, "la = {la}");
        }
    }

    #[test]
    fn tiny_device_clamps() {
        let config = InconsistentConfig::for_pages(16);
        assert_eq!(config.working_set(), 16);
        let mut attack = InconsistentAttack::new(&config);
        for _ in 0..100 {
            assert!(attack.next_write(Some(&no_block())).index() < 16);
        }
    }
}
