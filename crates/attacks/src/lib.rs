#![warn(missing_docs)]

//! Wear-out attack generators (paper §3 and §5.2).
//!
//! The attack model (Fig. 2): a malicious program issues arbitrary
//! `(op, LA, data)` commands to the PCM and can *time* each response
//! (`rdtsc`). Swap phases block the memory, so their latency spikes are
//! attacker-visible — this crate's [`SwapDetector`] is exactly that side
//! channel, fed from the [`WriteOutcome::blocking_cycles`] each request
//! reports.
//!
//! Four attack modes are evaluated in Fig. 6:
//!
//! * [`RepeatAttack`] — hammer one fixed address (Qureshi+, HPCA'11).
//! * [`RandomAttack`] — uniformly random addresses.
//! * [`ScanAttack`] — consecutive addresses, wrapping.
//! * [`InconsistentAttack`] — the paper's contribution (§3.2): show an
//!   ascending write-intensity distribution until a swap phase is
//!   detected, then *reverse* the distribution, so predicted-cold
//!   addresses (which prediction-based schemes park on weak frames) take
//!   the intensive writes.
//!
//! # Examples
//!
//! ```
//! use twl_attacks::{Attack, AttackKind, AttackStream};
//!
//! let mut attack = Attack::new(AttackKind::Scan, 128, 0);
//! let first = attack.next_write(None);
//! let second = attack.next_write(None);
//! assert_eq!(second.index(), first.index() + 1);
//! ```

mod detect;
mod inconsistent;
mod modes;

pub use detect::SwapDetector;
pub use inconsistent::{InconsistentAttack, InconsistentConfig};
pub use modes::{RandomAttack, RepeatAttack, ScanAttack};

use serde::{Deserialize, Serialize};
use std::fmt;
use twl_pcm::LogicalPageAddr;
use twl_wl_core::WriteOutcome;

/// A feedback-driven stream of attack writes.
///
/// `feedback` carries the outcome of the *previous* write (`None` before
/// the first), from which the attacker may extract timing. The trait is
/// object-safe so the lifetime simulator can drive any attack uniformly.
pub trait AttackStream {
    /// The attack's display name.
    fn name(&self) -> &str;

    /// Produces the next logical address to write.
    fn next_write(&mut self, feedback: Option<&WriteOutcome>) -> LogicalPageAddr;

    /// Produces the next *run* of writes: an address and how many
    /// consecutive writes (at most `max`) the stream commits to issuing
    /// there before it needs feedback again.
    ///
    /// This is the batchability contract of the event-skipping fast
    /// path: declaring a run of `len` promises the stream would have
    /// produced the same address for the next `len` calls to
    /// [`AttackStream::next_write`] *regardless of the feedback* those
    /// calls would have seen, and that one `next_run` call advances the
    /// stream's internal state exactly as `len` `next_write` calls
    /// would. Feedback-adaptive attacks (and any stream that varies its
    /// address per write) keep the default run length of 1, which
    /// degrades the batched driver to exact per-write behaviour —
    /// feedback is consulted before every run.
    fn next_run(&mut self, feedback: Option<&WriteOutcome>, max: u64) -> (LogicalPageAddr, u64) {
        let _ = max;
        (self.next_write(feedback), 1)
    }
}

/// The four attack modes of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackKind {
    /// Fix one address to write.
    Repeat,
    /// Write addresses are random.
    Random,
    /// Write addresses are consecutive.
    Scan,
    /// Reverse the write-intensity distribution around detected swaps.
    Inconsistent,
}

impl AttackKind {
    /// All four modes, in the paper's Fig. 6 order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Repeat,
        AttackKind::Random,
        AttackKind::Scan,
        AttackKind::Inconsistent,
    ];
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Repeat => "repeat",
            Self::Random => "random",
            Self::Scan => "scan",
            Self::Inconsistent => "inconsistent",
        };
        f.write_str(s)
    }
}

/// A uniform wrapper over the four attack modes.
///
/// # Examples
///
/// ```
/// use twl_attacks::{Attack, AttackKind, AttackStream};
///
/// let mut attack = Attack::new(AttackKind::Repeat, 64, 7);
/// let a = attack.next_write(None);
/// let b = attack.next_write(None);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub enum Attack {
    /// See [`RepeatAttack`].
    Repeat(RepeatAttack),
    /// See [`RandomAttack`].
    Random(RandomAttack),
    /// See [`ScanAttack`].
    Scan(ScanAttack),
    /// See [`InconsistentAttack`].
    Inconsistent(InconsistentAttack),
}

impl Attack {
    /// Builds an attack of the given kind against a device of `pages`
    /// pages, with deterministic randomness from `seed`.
    #[must_use]
    pub fn new(kind: AttackKind, pages: u64, seed: u64) -> Self {
        match kind {
            AttackKind::Repeat => Self::Repeat(RepeatAttack::new(LogicalPageAddr::new(0))),
            AttackKind::Random => Self::Random(RandomAttack::new(pages, seed)),
            AttackKind::Scan => Self::Scan(ScanAttack::new(pages)),
            AttackKind::Inconsistent => Self::Inconsistent(InconsistentAttack::new(
                &InconsistentConfig::for_pages(pages),
            )),
        }
    }

    /// The kind this attack was built as.
    #[must_use]
    pub fn kind(&self) -> AttackKind {
        match self {
            Self::Repeat(_) => AttackKind::Repeat,
            Self::Random(_) => AttackKind::Random,
            Self::Scan(_) => AttackKind::Scan,
            Self::Inconsistent(_) => AttackKind::Inconsistent,
        }
    }
}

impl AttackStream for Attack {
    fn name(&self) -> &str {
        match self {
            Self::Repeat(a) => a.name(),
            Self::Random(a) => a.name(),
            Self::Scan(a) => a.name(),
            Self::Inconsistent(a) => a.name(),
        }
    }

    fn next_write(&mut self, feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        match self {
            Self::Repeat(a) => a.next_write(feedback),
            Self::Random(a) => a.next_write(feedback),
            Self::Scan(a) => a.next_write(feedback),
            Self::Inconsistent(a) => a.next_write(feedback),
        }
    }

    fn next_run(&mut self, feedback: Option<&WriteOutcome>, max: u64) -> (LogicalPageAddr, u64) {
        match self {
            Self::Repeat(a) => a.next_run(feedback, max),
            Self::Random(a) => a.next_run(feedback, max),
            Self::Scan(a) => a.next_run(feedback, max),
            Self::Inconsistent(a) => a.next_run(feedback, max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in AttackKind::ALL {
            let mut attack = Attack::new(kind, 64, 1);
            assert_eq!(attack.kind(), kind);
            let la = attack.next_write(None);
            assert!(la.index() < 64);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackKind::Inconsistent.to_string(), "inconsistent");
        assert_eq!(AttackKind::Scan.to_string(), "scan");
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use twl_pcm::PhysicalPageAddr;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every attack mode stays inside the logical address space for
        /// any page count and any feedback pattern the simulator could
        /// produce.
        #[test]
        fn attacks_stay_in_range(
            kind_pick in 0u8..4,
            pages in 2u64..5000,
            seed in any::<u64>(),
            blockings in proptest::collection::vec(0u64..200_000, 1..300),
        ) {
            let kind = AttackKind::ALL[kind_pick as usize];
            let mut attack = Attack::new(kind, pages, seed);
            let mut feedback = None;
            for &blocking in &blockings {
                let la = attack.next_write(feedback.as_ref());
                prop_assert!(la.index() < pages, "{kind}: {la} out of {pages}");
                let mut out = WriteOutcome::plain(PhysicalPageAddr::new(la.index()));
                out.blocking_cycles = blocking;
                feedback = Some(out);
            }
        }

        /// The scan attack is a permutation generator: over one full
        /// sweep it touches every page exactly once.
        #[test]
        fn scan_sweep_is_a_permutation(pages in 1u64..2000) {
            let mut attack = Attack::new(AttackKind::Scan, pages, 0);
            let mut seen = vec![false; pages as usize];
            for _ in 0..pages {
                let la = attack.next_write(None);
                prop_assert!(!seen[la.as_usize()]);
                seen[la.as_usize()] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
