//! Latency-based swap-phase detection (§3.2, footnote 1).

use serde::{Deserialize, Serialize};
use twl_wl_core::WriteOutcome;

/// Detects swap phases from per-request response times.
///
/// "Memory swaps will block all memory requests to ensure memory
/// integrity, which leads to an increase in memory response time" — the
/// attacker thresholds that increase. Epoch-style schemes (WRL, BWL)
/// migrate many pages at once, producing a blocking spike orders of
/// magnitude above a single background swap; the detector's threshold is
/// set between the two regimes so TWL's per-pair swaps do *not* trigger
/// it (reversing against TWL is pointless anyway — that is the point of
/// the paper).
///
/// # Examples
///
/// ```
/// use twl_attacks::SwapDetector;
/// use twl_pcm::PhysicalPageAddr;
/// use twl_wl_core::WriteOutcome;
///
/// let mut detector = SwapDetector::new(10_000);
/// let mut out = WriteOutcome::plain(PhysicalPageAddr::new(0));
/// assert!(!detector.observe(&out));
/// out.blocking_cycles = 50_000;
/// assert!(detector.observe(&out));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapDetector {
    threshold_cycles: u64,
    detections: u64,
}

impl SwapDetector {
    /// Creates a detector firing when one request blocks for at least
    /// `threshold_cycles`.
    #[must_use]
    pub fn new(threshold_cycles: u64) -> Self {
        Self {
            threshold_cycles,
            detections: 0,
        }
    }

    /// A threshold suited to page-granularity devices: eight page
    /// migrations' worth of blocking (single pair swaps stay below it,
    /// bulk epoch swaps exceed it).
    #[must_use]
    pub fn for_page_migration_cycles(migrate_latency: u64) -> Self {
        Self::new(migrate_latency * 8)
    }

    /// Feeds one observed response; returns `true` when a swap phase is
    /// detected.
    pub fn observe(&mut self, outcome: &WriteOutcome) -> bool {
        if outcome.blocking_cycles >= self.threshold_cycles {
            self.detections += 1;
            twl_telemetry::counter!("twl.attacks.detections").inc();
            true
        } else {
            false
        }
    }

    /// Number of swap phases detected so far.
    #[must_use]
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold_cycles(&self) -> u64 {
        self.threshold_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PhysicalPageAddr;

    #[test]
    fn counts_detections() {
        let mut d = SwapDetector::new(100);
        let mut out = WriteOutcome::plain(PhysicalPageAddr::new(0));
        for i in 0..10u64 {
            out.blocking_cycles = i * 30;
            d.observe(&out);
        }
        // blocking 120, 150, ..., 270 exceed 100: that is 6 events
        // (i = 4..=9 gives 120..270).
        assert_eq!(d.detections(), 6);
    }

    #[test]
    fn page_migration_preset_ignores_single_swaps() {
        let d = SwapDetector::for_page_migration_cycles(2250);
        assert!(
            d.threshold_cycles() > 2 * 2250,
            "one pair swap must stay silent"
        );
    }
}
