//! The three classic attack modes (Qureshi et al., HPCA 2011).

use crate::AttackStream;
use twl_pcm::LogicalPageAddr;
use twl_rng::{SimRng, Xoshiro256StarStar};
use twl_wl_core::WriteOutcome;

/// Repeat-write mode: hammer one fixed address forever.
///
/// The classic birthday-paradox attack against table-less randomizers
/// and instant death for NOWL.
///
/// # Examples
///
/// ```
/// use twl_attacks::{AttackStream, RepeatAttack};
/// use twl_pcm::LogicalPageAddr;
///
/// let mut attack = RepeatAttack::new(LogicalPageAddr::new(9));
/// assert_eq!(attack.next_write(None).index(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatAttack {
    target: LogicalPageAddr,
}

impl RepeatAttack {
    /// Creates the attack against `target`.
    #[must_use]
    pub fn new(target: LogicalPageAddr) -> Self {
        Self { target }
    }
}

impl AttackStream for RepeatAttack {
    fn name(&self) -> &str {
        "repeat"
    }

    fn next_write(&mut self, _feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        self.target
    }

    fn next_run(&mut self, _feedback: Option<&WriteOutcome>, max: u64) -> (LogicalPageAddr, u64) {
        // The stream is constant and feedback-blind: any run length is
        // batchable.
        (self.target, max.max(1))
    }
}

/// Random-write mode: uniformly random addresses.
///
/// A stress test of raw leveling quality — no scheme can do better than
/// spread it, no scheme should do worse.
#[derive(Debug, Clone)]
pub struct RandomAttack {
    pages: u64,
    rng: Xoshiro256StarStar,
}

impl RandomAttack {
    /// Creates the attack over `pages` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    #[must_use]
    pub fn new(pages: u64, seed: u64) -> Self {
        assert!(pages > 0, "attack needs a non-empty address space");
        Self {
            pages,
            rng: Xoshiro256StarStar::seed_from(seed),
        }
    }
}

impl AttackStream for RandomAttack {
    fn name(&self) -> &str {
        "random"
    }

    fn next_write(&mut self, _feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        LogicalPageAddr::new(self.rng.next_bounded(self.pages))
    }
}

/// Scan-write mode: consecutive addresses, wrapping at the end.
///
/// For TWL this is the worst case (§5.2): consecutive addresses hit each
/// toss-up pair with `p ≈ 1/2`, which maximizes swap frequency (Case-4
/// of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanAttack {
    pages: u64,
    next: u64,
}

impl ScanAttack {
    /// Creates the attack over `pages` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    #[must_use]
    pub fn new(pages: u64) -> Self {
        assert!(pages > 0, "attack needs a non-empty address space");
        Self { pages, next: 0 }
    }
}

impl AttackStream for ScanAttack {
    fn name(&self) -> &str {
        "scan"
    }

    fn next_write(&mut self, _feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        let la = LogicalPageAddr::new(self.next);
        self.next = (self.next + 1) % self.pages;
        la
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_is_constant() {
        let mut a = RepeatAttack::new(LogicalPageAddr::new(3));
        for _ in 0..10 {
            assert_eq!(a.next_write(None).index(), 3);
        }
    }

    #[test]
    fn repeat_declares_full_runs_and_others_stay_per_write() {
        let mut repeat = RepeatAttack::new(LogicalPageAddr::new(3));
        assert_eq!(repeat.next_run(None, 1000), (LogicalPageAddr::new(3), 1000));
        assert_eq!(repeat.next_run(None, 0).1, 1, "runs are never empty");
        let mut scan = ScanAttack::new(4);
        assert_eq!(scan.next_run(None, 1000), (LogicalPageAddr::new(0), 1));
        assert_eq!(scan.next_run(None, 1000), (LogicalPageAddr::new(1), 1));
        let mut random = RandomAttack::new(16, 1);
        assert_eq!(random.next_run(None, 1000).1, 1);
    }

    #[test]
    fn random_covers_space() {
        let mut a = RandomAttack::new(16, 1);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[a.next_write(None).as_usize()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scan_wraps() {
        let mut a = ScanAttack::new(4);
        let seq: Vec<u64> = (0..6).map(|_| a.next_write(None).index()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
    }
}
