//! The lifetime simulation loops.

use crate::{Calibration, LifetimeReport};
use serde::{Deserialize, Serialize};
use twl_attacks::AttackStream;
use twl_pcm::{PcmDevice, PcmError};
use twl_telemetry::{SchemeSummary, TelemetryRecord, WearMapSampler};
use twl_wl_core::{AttackMonitor, WearLeveler, WriteOutcome};
use twl_workloads::SyntheticWorkload;

/// Safety limits for a lifetime run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimLimits {
    /// Maximum logical writes before giving up (a run that has not
    /// killed a page by then reports `completed = false`).
    pub max_logical_writes: u64,
}

impl Default for SimLimits {
    /// 2 billion logical writes — more than the total endurance of any
    /// recommended scaled device, so defaults never truncate.
    fn default() -> Self {
        Self {
            max_logical_writes: 2_000_000_000,
        }
    }
}

/// Drives `attack` against `scheme` on `device` until a page wears out.
///
/// The attack receives each write's [`WriteOutcome`] as feedback — that
/// is the timing side channel of §3.2. The returned report carries the
/// scale-invariant capacity fraction and calibrated years.
///
/// The attack must generate addresses within `scheme.page_count()`.
pub fn run_attack(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    attack: &mut dyn AttackStream,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    let workload_name = attack.name().to_owned();
    let mut telemetry = RunTelemetry::begin(scheme, device, &workload_name);
    let mut feedback: Option<WriteOutcome> = None;
    let mut logical_writes = 0u64;
    let mut failure = None;
    while logical_writes < limits.max_logical_writes {
        let la = attack.next_write(feedback.as_ref());
        match scheme.write(la, device) {
            Ok(out) => {
                logical_writes += 1;
                telemetry.observe(la, &out, device);
                feedback = Some(out);
            }
            Err(PcmError::PageWornOut { addr, .. }) => {
                failure = Some(addr);
                break;
            }
            Err(e) => unreachable!("lifetime sim hit a non-wear-out device error: {e}"),
        }
    }
    let alarm_rate = telemetry.end(device);
    finish(
        scheme,
        device,
        workload_name,
        logical_writes,
        failure,
        calibration,
        alarm_rate,
    )
}

/// Drives a synthetic workload's write stream against `scheme` until a
/// page wears out (reads are skipped — they neither wear the device nor
/// influence wear-leveling state).
///
/// The workload must generate addresses within `scheme.page_count()`.
pub fn run_workload(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut SyntheticWorkload,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    let mut telemetry = RunTelemetry::begin(scheme, device, workload_name);
    let mut logical_writes = 0u64;
    let mut failure = None;
    while logical_writes < limits.max_logical_writes {
        let la = workload.next_write_la();
        match scheme.write(la, device) {
            Ok(out) => {
                logical_writes += 1;
                telemetry.observe(la, &out, device);
            }
            Err(PcmError::PageWornOut { addr, .. }) => {
                failure = Some(addr);
                break;
            }
            Err(e) => unreachable!("lifetime sim hit a non-wear-out device error: {e}"),
        }
    }
    let alarm_rate = telemetry.end(device);
    finish(
        scheme,
        device,
        workload_name.to_owned(),
        logical_writes,
        failure,
        calibration,
        alarm_rate,
    )
}

/// Number of wear-map snapshots a full lifetime run aims for.
const WEAR_SNAPSHOTS_PER_RUN: u64 = 32;

/// Per-run observability: a wear-map sampler plus a passive HPCA'11
/// attack monitor over the logical write stream. Fully skipped (no
/// state, no per-write work beyond one branch) when no telemetry sink
/// is installed when the run starts.
struct RunTelemetry {
    scheme: String,
    workload: String,
    active: Option<(WearMapSampler, AttackMonitor)>,
}

impl RunTelemetry {
    fn begin(scheme: &dyn WearLeveler, device: &PcmDevice, workload: &str) -> Self {
        let active = twl_telemetry::enabled().then(|| {
            // Aim for WEAR_SNAPSHOTS_PER_RUN samples over the device's
            // total endurance — the longest any run can last.
            let cadence =
                u64::try_from(device.endurance_map().total() / u128::from(WEAR_SNAPSHOTS_PER_RUN))
                    .unwrap_or(u64::MAX)
                    .max(1);
            (
                WearMapSampler::new(cadence, WEAR_SNAPSHOTS_PER_RUN as usize),
                AttackMonitor::for_pages(),
            )
        });
        Self {
            scheme: scheme.name().to_owned(),
            workload: workload.to_owned(),
            active,
        }
    }

    fn observe(&mut self, la: twl_pcm::LogicalPageAddr, out: &WriteOutcome, device: &PcmDevice) {
        let Some((sampler, monitor)) = &mut self.active else {
            return;
        };
        if monitor.observe_write(la, Some(out)) {
            twl_telemetry::emit(&TelemetryRecord::Alarm {
                scheme: self.scheme.clone(),
                window: monitor.windows(),
                share: monitor.last_window_share(),
            });
        }
        if let Some(snapshot) =
            sampler.observe(u64::from(out.device_writes), device.wear_counters())
        {
            twl_telemetry::emit(&TelemetryRecord::Wear {
                scheme: self.scheme.clone(),
                workload: self.workload.clone(),
                snapshot: snapshot.clone(),
            });
        }
    }

    /// Emits the final wear snapshot and returns the observed alarm rate.
    fn end(mut self, device: &PcmDevice) -> f64 {
        let Some((sampler, monitor)) = &mut self.active else {
            return 0.0;
        };
        let snapshot = sampler.snapshot_now(device.wear_counters()).clone();
        twl_telemetry::emit(&TelemetryRecord::Wear {
            scheme: self.scheme.clone(),
            workload: self.workload.clone(),
            snapshot,
        });
        monitor.alarm_rate()
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    scheme: &dyn WearLeveler,
    device: &PcmDevice,
    workload: String,
    logical_writes: u64,
    failure: Option<twl_pcm::PhysicalPageAddr>,
    calibration: &Calibration,
    alarm_rate: f64,
) -> LifetimeReport {
    let stats = scheme.stats();
    let total_endurance = device.endurance_map().total() as f64;
    let capacity_fraction = device.total_writes() as f64 / total_endurance;
    let report = LifetimeReport {
        scheme: scheme.name().to_owned(),
        workload,
        logical_writes,
        device_writes: device.total_writes(),
        failed_page: failure,
        completed: failure.is_some(),
        capacity_fraction,
        years: calibration.years(capacity_fraction),
        swap_per_write: stats.swap_per_write(),
        extra_write_ratio: stats.extra_write_ratio(),
        wear_gini: device.wear_stats().wear_gini,
    };
    twl_telemetry::emit(&TelemetryRecord::Summary(SchemeSummary {
        scheme: report.scheme.clone(),
        workload: report.workload.clone(),
        logical_writes: report.logical_writes,
        device_writes: report.device_writes,
        swaps: stats.swaps,
        swap_per_write: report.swap_per_write,
        extra_write_ratio: report.extra_write_ratio,
        alarm_rate,
        capacity_fraction: report.capacity_fraction,
        years: report.years,
        wear_gini: report.wear_gini,
        completed: report.completed,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_scheme, SchemeKind};
    use twl_attacks::{Attack, AttackKind};
    use twl_pcm::PcmConfig;
    use twl_workloads::ParsecBenchmark;

    fn device(pages: u64, endurance: u64) -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .seed(13)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    #[test]
    fn nowl_under_repeat_dies_after_one_page() {
        let mut dev = device(256, 1_000);
        let mut scheme = build_scheme(SchemeKind::Nowl, &dev).unwrap();
        let mut attack = Attack::new(AttackKind::Repeat, 256, 0);
        let report = run_attack(
            scheme.as_mut(),
            &mut dev,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );
        assert!(report.completed);
        // One page's endurance out of 256 pages' worth: fraction ≈ 1/256.
        assert!(
            report.capacity_fraction < 0.01,
            "{}",
            report.capacity_fraction
        );
        assert_eq!(report.scheme, "NOWL");
        assert_eq!(report.workload, "repeat");
    }

    #[test]
    fn twl_outlives_nowl_under_every_attack() {
        for kind in AttackKind::ALL {
            let mut dev_a = device(128, 2_000);
            let mut nowl = build_scheme(SchemeKind::Nowl, &dev_a).unwrap();
            let mut attack = Attack::new(kind, 128, 1);
            let nowl_report = run_attack(
                nowl.as_mut(),
                &mut dev_a,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );

            let mut dev_b = device(128, 2_000);
            let mut twl = build_scheme(SchemeKind::TwlSwp, &dev_b).unwrap();
            let mut attack = Attack::new(kind, 128, 1);
            let twl_report = run_attack(
                twl.as_mut(),
                &mut dev_b,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );
            assert!(
                twl_report.capacity_fraction > nowl_report.capacity_fraction,
                "{kind}: TWL {} vs NOWL {}",
                twl_report.capacity_fraction,
                nowl_report.capacity_fraction
            );
        }
    }

    #[test]
    fn limits_truncate_and_flag_incomplete() {
        let mut dev = device(128, 1_000_000);
        let mut scheme = build_scheme(SchemeKind::TwlSwp, &dev).unwrap();
        let mut attack = Attack::new(AttackKind::Random, 128, 2);
        let limits = SimLimits {
            max_logical_writes: 5_000,
        };
        let report = run_attack(
            scheme.as_mut(),
            &mut dev,
            &mut attack,
            &limits,
            &Calibration::attack_8gbps(),
        );
        assert!(!report.completed);
        assert_eq!(report.logical_writes, 5_000);
    }

    #[test]
    fn workload_run_reports_benchmark_name() {
        let mut dev = device(256, 2_000);
        let mut scheme = build_scheme(SchemeKind::Nowl, &dev).unwrap();
        let bench = ParsecBenchmark::Canneal;
        let mut workload = bench.workload(256, 3);
        let report = run_workload(
            scheme.as_mut(),
            &mut dev,
            &mut workload,
            bench.name(),
            &SimLimits::default(),
            &Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps()),
        );
        assert!(report.completed);
        assert_eq!(report.workload, "canneal");
        assert!(report.years > 0.0);
    }
}
