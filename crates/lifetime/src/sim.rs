//! The lifetime simulation loops.
//!
//! Two methodologies share one driver skeleton:
//!
//! * **Fail-stop** ([`run_attack`], [`run_workload`]) — the DAC'17
//!   methodology: the run ends at the first
//!   [`PcmError::PageWornOut`], producing a single-failure-point
//!   [`LifetimeReport`].
//! * **Graceful degradation** ([`run_degradation_attack`],
//!   [`run_degradation_workload`]) — the device runs under
//!   `twl-faults`: wear-out manifests as cell faults absorbed by the
//!   correction budget, uncorrectable pages retire to spares, and the
//!   run ends at spare-pool exhaustion, producing a full
//!   [`DegradationReport`] curve.

use crate::{Calibration, DegradationEnd, DegradationPoint, DegradationReport, LifetimeReport};
use serde::{Deserialize, Serialize};
use twl_attacks::AttackStream;
use twl_faults::FaultDomain;
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError};
use twl_telemetry::{SchemeSummary, TelemetryRecord, WearMapSampler};
use twl_wl_core::{AttackMonitor, WearLeveler, WriteOutcome};
use twl_workloads::SyntheticWorkload;

/// Safety limits for a lifetime run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimLimits {
    /// Maximum logical writes before giving up (a run that has not
    /// killed a page by then reports `completed = false`).
    pub max_logical_writes: u64,
}

impl Default for SimLimits {
    /// 2 billion logical writes — more than the total endurance of any
    /// recommended scaled device, so defaults never truncate.
    fn default() -> Self {
        Self {
            max_logical_writes: 2_000_000_000,
        }
    }
}

/// The two write generators a lifetime run can consume, unified so the
/// simulation loop exists exactly once.
enum WriteSource<'a> {
    /// Attack streams see each write's outcome — the timing side
    /// channel of §3.2.
    Attack(&'a mut dyn AttackStream),
    /// Synthetic workloads ignore feedback (reads are skipped — they
    /// neither wear the device nor influence wear-leveling state).
    Workload(&'a mut SyntheticWorkload),
}

impl WriteSource<'_> {
    fn next_write(&mut self, feedback: Option<&WriteOutcome>) -> LogicalPageAddr {
        match self {
            Self::Attack(attack) => attack.next_write(feedback),
            Self::Workload(workload) => workload.next_write_la(),
        }
    }

    /// The batchability contract of [`AttackStream::next_run`], lifted
    /// over both source kinds. Workloads interleave reads and vary
    /// their addresses per write, so they always declare runs of 1.
    fn next_run(&mut self, feedback: Option<&WriteOutcome>, max: u64) -> (LogicalPageAddr, u64) {
        match self {
            Self::Attack(attack) => attack.next_run(feedback, max),
            Self::Workload(workload) => (workload.next_write_la(), 1),
        }
    }
}

/// Drives `attack` against `scheme` on `device` until a page wears out.
///
/// The attack receives each write's [`WriteOutcome`] as feedback — that
/// is the timing side channel of §3.2. The returned report carries the
/// scale-invariant capacity fraction and calibrated years.
///
/// Runs the event-skipping batched loop: streams that declare
/// deterministic runs (see [`AttackStream::next_run`]) are fast-forwarded
/// through [`WearLeveler::write_batch`], producing a report bit-identical
/// to [`run_attack_unbatched`] for the same seed.
///
/// The attack must generate addresses within `scheme.page_count()`.
pub fn run_attack(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    attack: &mut dyn AttackStream,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    let workload_name = attack.name().to_owned();
    drive(
        scheme,
        device,
        WriteSource::Attack(attack),
        &workload_name,
        limits,
        calibration,
    )
}

/// The per-write reference loop behind [`run_attack`] — same semantics,
/// no batching. Kept as the equivalence oracle for the fast path and as
/// the baseline of the `throughput` bench.
pub fn run_attack_unbatched(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    attack: &mut dyn AttackStream,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    let workload_name = attack.name().to_owned();
    drive_unbatched(
        scheme,
        device,
        WriteSource::Attack(attack),
        &workload_name,
        limits,
        calibration,
    )
}

/// Drives a synthetic workload's write stream against `scheme` until a
/// page wears out.
///
/// The workload must generate addresses within `scheme.page_count()`.
pub fn run_workload(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut SyntheticWorkload,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    drive(
        scheme,
        device,
        WriteSource::Workload(workload),
        workload_name,
        limits,
        calibration,
    )
}

/// The per-write reference loop behind [`run_workload`] — same
/// semantics, no batching.
pub fn run_workload_unbatched(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut SyntheticWorkload,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    drive_unbatched(
        scheme,
        device,
        WriteSource::Workload(workload),
        workload_name,
        limits,
        calibration,
    )
}

/// The batched fail-stop loop: ask the source for its next deterministic
/// run, service it through [`WearLeveler::write_batch`] (which collapses
/// event-free stretches into O(1) bulk device writes), and stop at the
/// first worn-out page or the write budget, whichever comes first.
///
/// Equivalence with [`drive_unbatched`]: a run of length `len` promises
/// the source would have produced the same address for `len` per-write
/// calls regardless of feedback, and `write_batch` promises state
/// identical to `len` scalar writes — so the only observable difference
/// is wear-snapshot granularity (see [`RunTelemetry::observe_batch`]).
fn drive(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    mut source: WriteSource<'_>,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    // Wall-clock only; spans never touch the RNG or simulated state, so
    // the batched loop stays bit-identical with tracing on. One span
    // covers the whole batched write path — never per-batch timing.
    let _span = twl_telemetry::span!("drive", scheme.name());
    let mut telemetry = RunTelemetry::begin(scheme, device, workload_name);
    let mut feedback: Option<WriteOutcome> = None;
    let mut logical_writes = 0u64;
    let mut failure = None;
    while logical_writes < limits.max_logical_writes {
        let budget = limits.max_logical_writes - logical_writes;
        let (la, len) = source.next_run(feedback.as_ref(), budget);
        let len = len.clamp(1, budget);
        let device_writes_before = device.total_writes();
        let batch = scheme.write_batch(la, len, device);
        if batch.serviced > 0 {
            logical_writes += batch.serviced;
            telemetry.observe_batch(
                la,
                batch.serviced,
                device.total_writes() - device_writes_before,
                device,
            );
            feedback = batch.last;
        }
        match batch.failure {
            Some(PcmError::PageWornOut { addr, .. }) => {
                failure = Some(addr);
                break;
            }
            Some(e) => unreachable!("lifetime sim hit a non-wear-out device error: {e}"),
            None => assert!(
                batch.serviced == len,
                "write_batch serviced {} of {len} writes without failing",
                batch.serviced
            ),
        }
    }
    let alarm_rate = telemetry.end(device);
    // Close the drive span before reporting so `report` is its sibling
    // (queue-wait → build → drive → report), not its child.
    drop(_span);
    finish(
        scheme,
        device,
        workload_name.to_owned(),
        logical_writes,
        failure,
        calibration,
        alarm_rate,
    )
}

/// The per-write fail-stop loop: the pre-batching reference semantics.
fn drive_unbatched(
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    mut source: WriteSource<'_>,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> LifetimeReport {
    let _span = twl_telemetry::span!("drive_unbatched", scheme.name());
    let mut telemetry = RunTelemetry::begin(scheme, device, workload_name);
    let mut feedback: Option<WriteOutcome> = None;
    let mut logical_writes = 0u64;
    let mut failure = None;
    while logical_writes < limits.max_logical_writes {
        let la = source.next_write(feedback.as_ref());
        match scheme.write(la, device) {
            Ok(out) => {
                logical_writes += 1;
                telemetry.observe(la, &out, device);
                feedback = Some(out);
            }
            Err(PcmError::PageWornOut { addr, .. }) => {
                failure = Some(addr);
                break;
            }
            Err(e) => unreachable!("lifetime sim hit a non-wear-out device error: {e}"),
        }
    }
    let alarm_rate = telemetry.end(device);
    drop(_span);
    finish(
        scheme,
        device,
        workload_name.to_owned(),
        logical_writes,
        failure,
        calibration,
        alarm_rate,
    )
}

/// Drives `attack` against `scheme` on a fault-tolerant [`FaultDomain`]
/// until the spare pool is exhausted (or the write budget runs out),
/// recording the degradation curve.
///
/// The attack must generate addresses within `domain.data_pages`.
pub fn run_degradation_attack(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    attack: &mut dyn AttackStream,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    let workload_name = attack.name().to_owned();
    drive_degraded(
        scheme,
        domain,
        WriteSource::Attack(attack),
        &workload_name,
        limits,
        calibration,
    )
}

/// The per-write reference loop behind [`run_degradation_attack`] —
/// same semantics, no batching: faults are absorbed after every single
/// logical write. Kept as the equivalence oracle for the batched
/// degradation path.
pub fn run_degradation_attack_unbatched(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    attack: &mut dyn AttackStream,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    let workload_name = attack.name().to_owned();
    drive_degraded_unbatched(
        scheme,
        domain,
        WriteSource::Attack(attack),
        &workload_name,
        limits,
        calibration,
    )
}

/// Drives a synthetic workload against `scheme` on a fault-tolerant
/// [`FaultDomain`] until the spare pool is exhausted (or the write
/// budget runs out), recording the degradation curve.
///
/// The workload must generate addresses within `domain.data_pages`.
pub fn run_degradation_workload(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    workload: &mut SyntheticWorkload,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    drive_degraded(
        scheme,
        domain,
        WriteSource::Workload(workload),
        workload_name,
        limits,
        calibration,
    )
}

/// The per-write reference loop behind [`run_degradation_workload`] —
/// same semantics, no batching.
pub fn run_degradation_workload_unbatched(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    workload: &mut SyntheticWorkload,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    drive_degraded_unbatched(
        scheme,
        domain,
        WriteSource::Workload(workload),
        workload_name,
        limits,
        calibration,
    )
}

/// Bookkeeping shared by the batched and per-write degradation loops:
/// the curve and the three milestone device-write counts, advanced by
/// [`DegradedProgress::absorb_and_record`] so both loops observe fault
/// events through literally the same code.
struct DegradedProgress {
    logical_writes: u64,
    curve: Vec<DegradationPoint>,
    first_fault: Option<u64>,
    first_retirement: Option<u64>,
    spare_exhausted: Option<u64>,
    end: DegradationEnd,
}

impl DegradedProgress {
    fn new() -> Self {
        Self {
            logical_writes: 0,
            curve: Vec::new(),
            first_fault: None,
            first_retirement: None,
            spare_exhausted: None,
            end: DegradationEnd::WriteBudget,
        }
    }

    /// Runs one fault absorption and folds its events into the
    /// milestones and the curve. Returns `false` when the spare pool is
    /// exhausted — the graceful-degradation end of life.
    fn absorb_and_record(
        &mut self,
        engine: &mut twl_faults::FaultEngine,
        device: &mut PcmDevice,
        scheme_name: &str,
        workload_name: &str,
        total_pages: u64,
        absorb_span: &mut twl_telemetry::AggregateSpan,
    ) -> bool {
        match absorb_span.time(|| engine.absorb(device)) {
            Ok(absorbed) => {
                if absorbed.corrected_now > 0 && self.first_fault.is_none() {
                    self.first_fault = Some(device.total_writes());
                }
                if !absorbed.retirements.is_empty() {
                    self.first_retirement.get_or_insert(device.total_writes());
                    let point = DegradationPoint {
                        logical_writes: self.logical_writes,
                        device_writes: device.total_writes(),
                        corrected_groups: engine.corrected_groups(),
                        retired_pages: device.retired_pages(),
                        spares_remaining: device.spares_remaining(),
                    };
                    self.curve.push(point);
                    emit_degradation_point(scheme_name, workload_name, &point, total_pages);
                }
                true
            }
            Err(PcmError::SparesExhausted { .. }) => {
                self.spare_exhausted = Some(device.total_writes());
                self.end = DegradationEnd::SpareExhausted;
                false
            }
            Err(e) => unreachable!("fault engine hit a non-spare device error: {e}"),
        }
    }

    /// Closes the curve and assembles the report from the final device
    /// and engine state.
    fn finish(
        mut self,
        scheme_name: &str,
        workload_name: &str,
        domain: &FaultDomain,
        calibration: &Calibration,
    ) -> DegradationReport {
        let device = &domain.device;
        let engine = &domain.engine;
        let total_pages = domain.data_pages + domain.spare_pages;
        let final_point = DegradationPoint {
            logical_writes: self.logical_writes,
            device_writes: device.total_writes(),
            corrected_groups: engine.corrected_groups(),
            retired_pages: device.retired_pages(),
            spares_remaining: device.spares_remaining(),
        };
        if self.curve.last() != Some(&final_point) {
            self.curve.push(final_point);
            emit_degradation_point(scheme_name, workload_name, &final_point, total_pages);
        }
        let capacity_fraction =
            device.total_writes() as f64 / device.endurance_map().total() as f64;
        DegradationReport {
            scheme: scheme_name.to_owned(),
            workload: workload_name.to_owned(),
            data_pages: domain.data_pages,
            spare_pages: domain.spare_pages,
            logical_writes: self.logical_writes,
            device_writes: device.total_writes(),
            corrected_groups: engine.corrected_groups(),
            retired_pages: device.retired_pages(),
            first_fault_device_writes: self.first_fault,
            first_retirement_device_writes: self.first_retirement,
            spare_exhausted_device_writes: self.spare_exhausted,
            end: self.end,
            capacity_fraction,
            years: calibration.years(capacity_fraction),
            wear_gini: device.wear_stats().wear_gini,
            curve: self.curve,
        }
    }
}

/// The batched graceful-degradation loop: the fault engine absorbs new
/// cell faults after every serviced batch; each retirement appends a
/// curve point (and a `degradation_point` trace record), and
/// [`PcmError::SparesExhausted`] ends the run.
///
/// Batching is exact here, not approximate: an
/// [`twl_faults::EventHorizon`] tracks every page's wear-distance to
/// its next *observable* fault event (the run's first corrected group,
/// then each retirement threshold), and each batch is capped through
/// [`WearLeveler::write_batch_cap`] so no page can cross an event
/// mid-batch. Quiet stretches batch by the thousands; as a page
/// approaches a threshold the cap shrinks to one, so the crossing write
/// is absorbed at exactly the device-write count the per-write loop
/// would observe. The result is bit-identical to
/// [`drive_degraded_unbatched`] for the same seed.
fn drive_degraded(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    mut source: WriteSource<'_>,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    let device = &mut domain.device;
    let engine = &mut domain.engine;
    let total_pages = domain.data_pages + domain.spare_pages;
    let _span = twl_telemetry::span!("drive_degraded", scheme.name());
    // Fault absorption runs once per batch — too often for one record
    // each, hot enough to want visibility. The aggregate folds every
    // call into a single span record with a `count`.
    let mut absorb_span = twl_telemetry::AggregateSpan::new("absorb", scheme.name());
    let mut telemetry = RunTelemetry::begin(scheme, device, workload_name);
    let mut feedback: Option<WriteOutcome> = None;
    let mut progress = DegradedProgress::new();
    let mut horizon = twl_faults::EventHorizon::new(engine, device);
    while progress.logical_writes < limits.max_logical_writes {
        // The scheme translates the wear margin into the largest batch
        // that cannot push any single page across it.
        let cap = scheme.write_batch_cap(horizon.wear_margin()).max(1);
        let budget = (limits.max_logical_writes - progress.logical_writes).min(cap);
        let (la, len) = source.next_run(feedback.as_ref(), budget);
        let len = len.clamp(1, budget);
        let device_writes_before = device.total_writes();
        let batch = scheme.write_batch(la, len, device);
        if batch.serviced > 0 {
            progress.logical_writes += batch.serviced;
            telemetry.observe_batch(
                la,
                batch.serviced,
                device.total_writes() - device_writes_before,
                device,
            );
            feedback = batch.last;
        }
        // Unlimited wear policy: the device never fail-stops, so any
        // error here is a simulation bug.
        if let Some(e) = batch.failure {
            unreachable!("degradation sim hit a device error: {e}");
        }
        assert!(
            batch.serviced == len,
            "write_batch serviced {} of {len} writes without failing",
            batch.serviced
        );
        if !progress.absorb_and_record(
            engine,
            device,
            scheme.name(),
            workload_name,
            total_pages,
            &mut absorb_span,
        ) {
            break;
        }
        horizon.observe(engine, device);
    }
    telemetry.end(device);
    progress.finish(scheme.name(), workload_name, domain, calibration)
}

/// The per-write graceful-degradation loop: the pre-batching reference
/// semantics, absorbing faults after every single logical write. The
/// equivalence oracle for [`drive_degraded`].
fn drive_degraded_unbatched(
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    mut source: WriteSource<'_>,
    workload_name: &str,
    limits: &SimLimits,
    calibration: &Calibration,
) -> DegradationReport {
    let device = &mut domain.device;
    let engine = &mut domain.engine;
    let total_pages = domain.data_pages + domain.spare_pages;
    let _span = twl_telemetry::span!("drive_degraded_unbatched", scheme.name());
    let mut absorb_span = twl_telemetry::AggregateSpan::new("absorb", scheme.name());
    let mut telemetry = RunTelemetry::begin(scheme, device, workload_name);
    let mut feedback: Option<WriteOutcome> = None;
    let mut progress = DegradedProgress::new();
    while progress.logical_writes < limits.max_logical_writes {
        let la = source.next_write(feedback.as_ref());
        match scheme.write(la, device) {
            Ok(out) => {
                progress.logical_writes += 1;
                telemetry.observe(la, &out, device);
                feedback = Some(out);
            }
            Err(e) => unreachable!("degradation sim hit a device error: {e}"),
        }
        if !progress.absorb_and_record(
            engine,
            device,
            scheme.name(),
            workload_name,
            total_pages,
            &mut absorb_span,
        ) {
            break;
        }
    }
    telemetry.end(device);
    progress.finish(scheme.name(), workload_name, domain, calibration)
}

fn emit_degradation_point(
    scheme: &str,
    workload: &str,
    point: &DegradationPoint,
    total_pages: u64,
) {
    twl_telemetry::emit(&TelemetryRecord::Degradation {
        scheme: scheme.to_owned(),
        workload: workload.to_owned(),
        at_logical_writes: point.logical_writes,
        at_device_writes: point.device_writes,
        corrected_groups: point.corrected_groups,
        retired_pages: point.retired_pages,
        spares_remaining: point.spares_remaining,
        capacity_fraction: 1.0 - point.retired_pages as f64 / total_pages as f64,
    });
}

/// Number of wear-map snapshots a full lifetime run aims for.
const WEAR_SNAPSHOTS_PER_RUN: u64 = 32;

/// Per-run observability: a wear-map sampler plus a passive HPCA'11
/// attack monitor over the logical write stream. Fully skipped (no
/// state, no per-write work beyond one branch) when no telemetry sink
/// is installed when the run starts.
struct RunTelemetry {
    scheme: String,
    workload: String,
    active: Option<(WearMapSampler, AttackMonitor)>,
}

impl RunTelemetry {
    fn begin(scheme: &dyn WearLeveler, device: &PcmDevice, workload: &str) -> Self {
        let active = twl_telemetry::enabled().then(|| {
            // Aim for WEAR_SNAPSHOTS_PER_RUN samples over the device's
            // total endurance — the longest any run can last.
            let cadence =
                u64::try_from(device.endurance_map().total() / u128::from(WEAR_SNAPSHOTS_PER_RUN))
                    .unwrap_or(u64::MAX)
                    .max(1);
            (
                WearMapSampler::new(cadence, WEAR_SNAPSHOTS_PER_RUN as usize),
                AttackMonitor::for_pages(),
            )
        });
        Self {
            scheme: scheme.name().to_owned(),
            workload: workload.to_owned(),
            active,
        }
    }

    /// Batch-granular observation: the monitor replays the batch
    /// exactly (one `Alarm` record per alarmed window close, identical
    /// to per-write observation), while the wear sampler sees the whole
    /// batch's device-write delta at once — snapshots land on batch
    /// boundaries instead of exact cadence multiples, the one telemetry
    /// divergence of the fast path.
    fn observe_batch(
        &mut self,
        la: twl_pcm::LogicalPageAddr,
        serviced: u64,
        device_write_delta: u64,
        device: &PcmDevice,
    ) {
        let Some((sampler, monitor)) = &mut self.active else {
            return;
        };
        for (window, share) in monitor.observe_writes(la, serviced) {
            twl_telemetry::emit(&TelemetryRecord::Alarm {
                scheme: self.scheme.clone(),
                window,
                share,
            });
        }
        if let Some(snapshot) = sampler.observe(device_write_delta, device.wear_counters()) {
            twl_telemetry::emit(&TelemetryRecord::Wear {
                scheme: self.scheme.clone(),
                workload: self.workload.clone(),
                snapshot: snapshot.clone(),
            });
        }
    }

    fn observe(&mut self, la: twl_pcm::LogicalPageAddr, out: &WriteOutcome, device: &PcmDevice) {
        let Some((sampler, monitor)) = &mut self.active else {
            return;
        };
        if monitor.observe_write(la, Some(out)) {
            twl_telemetry::emit(&TelemetryRecord::Alarm {
                scheme: self.scheme.clone(),
                window: monitor.windows(),
                share: monitor.last_window_share(),
            });
        }
        if let Some(snapshot) =
            sampler.observe(u64::from(out.device_writes), device.wear_counters())
        {
            twl_telemetry::emit(&TelemetryRecord::Wear {
                scheme: self.scheme.clone(),
                workload: self.workload.clone(),
                snapshot: snapshot.clone(),
            });
        }
    }

    /// Emits the final wear snapshot and returns the observed alarm rate.
    fn end(mut self, device: &PcmDevice) -> f64 {
        let Some((sampler, monitor)) = &mut self.active else {
            return 0.0;
        };
        let snapshot = sampler.snapshot_now(device.wear_counters()).clone();
        twl_telemetry::emit(&TelemetryRecord::Wear {
            scheme: self.scheme.clone(),
            workload: self.workload.clone(),
            snapshot,
        });
        monitor.alarm_rate()
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    scheme: &dyn WearLeveler,
    device: &PcmDevice,
    workload: String,
    logical_writes: u64,
    failure: Option<twl_pcm::PhysicalPageAddr>,
    calibration: &Calibration,
    alarm_rate: f64,
) -> LifetimeReport {
    let _span = twl_telemetry::span!("report", scheme.name());
    let stats = scheme.stats();
    let total_endurance = device.endurance_map().total() as f64;
    let capacity_fraction = device.total_writes() as f64 / total_endurance;
    let report = LifetimeReport {
        scheme: scheme.name().to_owned(),
        workload,
        logical_writes,
        device_writes: device.total_writes(),
        failed_page: failure,
        completed: failure.is_some(),
        capacity_fraction,
        years: calibration.years(capacity_fraction),
        swap_per_write: stats.swap_per_write(),
        extra_write_ratio: stats.extra_write_ratio(),
        wear_gini: device.wear_stats().wear_gini,
    };
    twl_telemetry::emit(&TelemetryRecord::Summary(SchemeSummary {
        scheme: report.scheme.clone(),
        workload: report.workload.clone(),
        logical_writes: report.logical_writes,
        device_writes: report.device_writes,
        swaps: stats.swaps,
        swap_per_write: report.swap_per_write,
        extra_write_ratio: report.extra_write_ratio,
        alarm_rate,
        capacity_fraction: report.capacity_fraction,
        years: report.years,
        wear_gini: report.wear_gini,
        completed: report.completed,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_scheme, build_scheme_for_region, SchemeKind};
    use twl_attacks::{Attack, AttackKind};
    use twl_faults::{provision, FaultConfig};
    use twl_pcm::PcmConfig;
    use twl_workloads::ParsecBenchmark;

    fn device(pages: u64, endurance: u64) -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .seed(13)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    #[test]
    fn nowl_under_repeat_dies_after_one_page() {
        let mut dev = device(256, 1_000);
        let mut scheme = build_scheme(SchemeKind::Nowl, &dev).unwrap();
        let mut attack = Attack::new(AttackKind::Repeat, 256, 0);
        let report = run_attack(
            scheme.as_mut(),
            &mut dev,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );
        assert!(report.completed);
        // One page's endurance out of 256 pages' worth: fraction ≈ 1/256.
        assert!(
            report.capacity_fraction < 0.01,
            "{}",
            report.capacity_fraction
        );
        assert_eq!(report.scheme, "NOWL");
        assert_eq!(report.workload, "repeat");
    }

    #[test]
    fn twl_outlives_nowl_under_every_attack() {
        for kind in AttackKind::ALL {
            let mut dev_a = device(128, 2_000);
            let mut nowl = build_scheme(SchemeKind::Nowl, &dev_a).unwrap();
            let mut attack = Attack::new(kind, 128, 1);
            let nowl_report = run_attack(
                nowl.as_mut(),
                &mut dev_a,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );

            let mut dev_b = device(128, 2_000);
            let mut twl = build_scheme(SchemeKind::TwlSwp, &dev_b).unwrap();
            let mut attack = Attack::new(kind, 128, 1);
            let twl_report = run_attack(
                twl.as_mut(),
                &mut dev_b,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );
            assert!(
                twl_report.capacity_fraction > nowl_report.capacity_fraction,
                "{kind}: TWL {} vs NOWL {}",
                twl_report.capacity_fraction,
                nowl_report.capacity_fraction
            );
        }
    }

    #[test]
    fn limits_truncate_and_flag_incomplete() {
        let mut dev = device(128, 1_000_000);
        let mut scheme = build_scheme(SchemeKind::TwlSwp, &dev).unwrap();
        let mut attack = Attack::new(AttackKind::Random, 128, 2);
        let limits = SimLimits {
            max_logical_writes: 5_000,
        };
        let report = run_attack(
            scheme.as_mut(),
            &mut dev,
            &mut attack,
            &limits,
            &Calibration::attack_8gbps(),
        );
        assert!(!report.completed);
        assert_eq!(report.logical_writes, 5_000);
    }

    #[test]
    fn workload_run_reports_benchmark_name() {
        let mut dev = device(256, 2_000);
        let mut scheme = build_scheme(SchemeKind::Nowl, &dev).unwrap();
        let bench = ParsecBenchmark::Canneal;
        let mut workload = bench.workload(256, 3);
        let report = run_workload(
            scheme.as_mut(),
            &mut dev,
            &mut workload,
            bench.name(),
            &SimLimits::default(),
            &Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps()),
        );
        assert!(report.completed);
        assert_eq!(report.workload, "canneal");
        assert!(report.years > 0.0);
    }

    fn degradation_domain(pages: u64, endurance: u64) -> twl_faults::FaultDomain {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .seed(13)
            .build()
            .unwrap();
        provision(
            &pcm,
            &FaultConfig {
                cell_groups_per_page: 8,
                group_sigma_fraction: 0.15,
                policy: twl_faults::CorrectionPolicy::Ecp { entries: 2 },
                spare_fraction: 0.05,
                seed: 99,
            },
        )
        .unwrap()
    }

    #[test]
    fn degradation_run_outlives_failstop_and_builds_a_curve() {
        // Fail-stop NOWL under repeat dies at the weakest page.
        let mut dev = device(128, 1_000);
        let mut scheme = build_scheme(SchemeKind::Nowl, &dev).unwrap();
        let mut attack = Attack::new(AttackKind::Repeat, 128, 0);
        let failstop = run_attack(
            scheme.as_mut(),
            &mut dev,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );

        // The same scheme with fault tolerance keeps going through the
        // correction budget and every spare.
        let mut domain = degradation_domain(128, 1_000);
        let mut scheme = build_scheme_for_region(SchemeKind::Nowl, &domain.device, 128).unwrap();
        let mut attack = Attack::new(AttackKind::Repeat, 128, 0);
        let report = run_degradation_attack(
            scheme.as_mut(),
            &mut domain,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );
        assert_eq!(report.end, DegradationEnd::SpareExhausted);
        assert!(report.device_writes > failstop.device_writes);
        assert!(report.spare_exhausted_device_writes.is_some());
        let first_fault = report.first_fault_device_writes.unwrap();
        let first_retirement = report.first_retirement_device_writes.unwrap();
        assert!(first_fault <= first_retirement);
        assert!(first_retirement <= report.spare_exhausted_device_writes.unwrap());
        // Every retirement consumes one spare, and the run ends on the
        // first retirement the empty pool cannot serve.
        assert_eq!(report.retired_pages, report.spare_pages);
        assert!(!report.curve.is_empty());
        // The curve is monotone in every dimension.
        for w in report.curve.windows(2) {
            assert!(w[0].device_writes <= w[1].device_writes);
            assert!(w[0].corrected_groups <= w[1].corrected_groups);
            assert!(w[0].retired_pages <= w[1].retired_pages);
            assert!(w[0].spares_remaining >= w[1].spares_remaining);
        }
        assert!(report.surviving_capacity() < 1.0);
        assert!(report.device_writes_to_capacity_loss(0.001).is_some());
    }

    #[test]
    fn degradation_write_budget_flags_lower_bound() {
        let mut domain = degradation_domain(128, 100_000);
        let mut scheme = build_scheme_for_region(SchemeKind::TwlSwp, &domain.device, 128).unwrap();
        let mut attack = Attack::new(AttackKind::Random, 128, 2);
        let limits = SimLimits {
            max_logical_writes: 2_000,
        };
        let report = run_degradation_attack(
            scheme.as_mut(),
            &mut domain,
            &mut attack,
            &limits,
            &Calibration::attack_8gbps(),
        );
        assert_eq!(report.end, DegradationEnd::WriteBudget);
        assert_eq!(report.logical_writes, 2_000);
        assert!(report.spare_exhausted_device_writes.is_none());
        assert_eq!(report.retired_pages, 0);
        // The closing curve point is still present.
        assert_eq!(report.curve.len(), 1);
        assert_eq!(report.curve[0].spares_remaining, report.spare_pages);
    }
}
