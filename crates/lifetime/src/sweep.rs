//! Experiment matrices: run scheme × attack / scheme × workload grids
//! in one call.
//!
//! The figure-regenerating binaries in `twl-bench` are thin wrappers
//! over these helpers; library users get the same sweeps as data.
//!
//! Each matrix is a grid of *cells*, and every cell is independent: it
//! builds its own fresh device (and scheme, and attack) from the shared
//! [`PcmConfig`], so a cell's report is a pure function of the config
//! and the cell coordinates. The single-cell entry points
//! ([`run_attack_cell`], [`run_workload_cell`], [`run_degradation_cell`])
//! expose exactly the computation one matrix slot performs — that is
//! what makes matrix jobs resumable in `twl-service`: a checkpoint
//! stores completed cells, and a resumed run re-executes only the
//! missing ones, with results bit-identical to an uninterrupted sweep.

use crate::pool::run_cells;
use crate::{
    build_scheme_spec, build_scheme_spec_for_region, run_attack, run_degradation_attack,
    Calibration, DegradationReport, LifetimeReport, SchemeSpec, SimLimits,
};
use twl_faults::{provision, FaultConfig};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_workloads::WorkloadSpec;

/// The calibration a workload spec pins: a PARSEC generator (or a trace
/// with a `bw=` override) carries its own write bandwidth; attacks use
/// the paper's 8 GiB/s attack rate.
pub(crate) fn calibration_for(workload: &WorkloadSpec) -> Calibration {
    match workload.bandwidth_mbps() {
        Some(bw) => Calibration::for_bandwidth_mbps(bw),
        None => Calibration::attack_8gbps(),
    }
}

/// Runs one cell of a [`lifetime_matrix`]: the scheme `spec` describes
/// under `workload`'s write stream on a fresh device drawn from `pcm`,
/// with the workload's calibration ([`WorkloadSpec::bandwidth_mbps`]).
///
/// Deterministic: the report depends only on the arguments (for a
/// `TRACE` workload, on the trace file's contents). Accepts bare kinds
/// ([`crate::SchemeKind`], [`twl_attacks::AttackKind`],
/// [`twl_workloads::ParsecBenchmark`]) or full specs on either axis;
/// default-parameter specs reproduce the legacy attack/workload cells
/// bit-identically.
///
/// # Panics
///
/// Panics if the scheme cannot be built for the device geometry or the
/// workload cannot be built for the logical space (e.g. an unreadable
/// trace file).
#[must_use]
pub fn run_lifetime_cell(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    workload: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> LifetimeReport {
    let spec = spec.into();
    let workload = workload.into();
    let calibration = calibration_for(&workload);
    let build_span = twl_telemetry::span!("cell.build", spec.to_string());
    let mut device = PcmDevice::new(pcm);
    let mut scheme = build_scheme_spec(&spec, &device)
        .unwrap_or_else(|e| panic!("cannot build {spec} for this device: {e}"));
    let pages = if workload.addresses_scheme_space() {
        scheme.page_count()
    } else {
        pcm.pages
    };
    let mut stream = workload
        .build(pages, pcm.seed)
        .unwrap_or_else(|e| panic!("cannot build workload for this device: {e}"));
    drop(build_span);
    run_attack(
        scheme.as_mut(),
        &mut device,
        &mut stream,
        limits,
        &calibration,
    )
}

/// Runs one cell of an [`attack_matrix`]: [`run_lifetime_cell`] with
/// the attack axis spelled as an [`twl_attacks::AttackKind`] (or any attack-family
/// workload spec).
///
/// # Panics
///
/// Panics if the scheme or workload cannot be built for the device.
#[must_use]
pub fn run_attack_cell(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    attack: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> LifetimeReport {
    run_lifetime_cell(pcm, spec, attack, limits)
}

/// Runs one cell of a [`workload_matrix`]: [`run_lifetime_cell`] with
/// the workload axis spelled as a [`twl_workloads::ParsecBenchmark`] (or any workload
/// spec).
///
/// # Panics
///
/// Panics if the scheme or workload cannot be built for the device.
#[must_use]
pub fn run_workload_cell(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    bench: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> LifetimeReport {
    run_lifetime_cell(pcm, spec, bench, limits)
}

/// Runs one cell of a [`degradation_matrix`]: `scheme` under
/// `workload` on a fresh fault-tolerant domain provisioned from `pcm`
/// and `fault_cfg`, followed to spare-pool exhaustion.
///
/// Deterministic: the report depends only on the arguments.
///
/// # Panics
///
/// Panics if the fault config is invalid, the scheme cannot be built
/// for the data-region geometry, or the workload cannot be built for
/// the logical space.
#[must_use]
pub fn run_degradation_cell(
    pcm: &PcmConfig,
    fault_cfg: &FaultConfig,
    spec: impl Into<SchemeSpec>,
    workload: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> DegradationReport {
    let spec = spec.into();
    let workload = workload.into();
    let calibration = calibration_for(&workload);
    let build_span = twl_telemetry::span!("cell.build", spec.to_string());
    let mut domain =
        provision(pcm, fault_cfg).unwrap_or_else(|e| panic!("cannot provision domain: {e}"));
    let mut scheme = build_scheme_spec_for_region(&spec, &domain.device, domain.data_pages)
        .unwrap_or_else(|e| panic!("cannot build {spec} for this device: {e}"));
    let pages = if workload.addresses_scheme_space() {
        scheme.page_count()
    } else {
        domain.data_pages
    };
    let mut stream = workload
        .build(pages, pcm.seed)
        .unwrap_or_else(|e| panic!("cannot build workload for this device: {e}"));
    drop(build_span);
    run_degradation_attack(
        scheme.as_mut(),
        &mut domain,
        &mut stream,
        limits,
        &calibration,
    )
}

/// Runs every scheme in `schemes` against every attack in `attacks` on
/// a fresh device drawn from `pcm`, returning reports in
/// `schemes`-major order (Fig. 6's grid).
///
/// `schemes` may be bare [`crate::SchemeKind`]s (paper defaults) or
/// full [`SchemeSpec`]s — parameter studies are just another matrix.
///
/// # Panics
///
/// Panics if a scheme cannot be built for the device geometry (e.g.
/// Security Refresh on a non-power-of-two page count).
///
/// # Examples
///
/// ```
/// use twl_lifetime::{attack_matrix, SchemeKind, SimLimits};
/// use twl_attacks::AttackKind;
/// use twl_pcm::PcmConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pcm = PcmConfig::builder().pages(128).mean_endurance(2_000).seed(1).build()?;
/// let reports = attack_matrix(
///     &pcm,
///     &[SchemeKind::Nowl, SchemeKind::TwlSwp],
///     &[AttackKind::Repeat],
///     &SimLimits::default(),
/// );
/// assert_eq!(reports.len(), 2);
/// assert!(reports[1].years > reports[0].years);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn attack_matrix<S, W>(
    pcm: &PcmConfig,
    schemes: &[S],
    attacks: &[W],
    limits: &SimLimits,
) -> Vec<LifetimeReport>
where
    S: Clone + Into<SchemeSpec>,
    W: Clone + Into<WorkloadSpec>,
{
    lifetime_matrix(pcm, schemes, attacks, limits)
}

/// Runs every scheme in `schemes` against every workload in
/// `workloads` on a fresh device drawn from `pcm`, returning reports
/// in `schemes`-major order. The unified grid underneath
/// [`attack_matrix`] and [`workload_matrix`]: both axes are specs, so
/// attacks, PARSEC generators, and captured traces mix freely as cell
/// coordinates.
///
/// # Panics
///
/// Panics if a scheme or workload cannot be built for the device.
#[must_use]
pub fn lifetime_matrix<S, W>(
    pcm: &PcmConfig,
    schemes: &[S],
    workloads: &[W],
    limits: &SimLimits,
) -> Vec<LifetimeReport>
where
    S: Clone + Into<SchemeSpec>,
    W: Clone + Into<WorkloadSpec>,
{
    let cells: Vec<(SchemeSpec, WorkloadSpec)> = schemes
        .iter()
        .flat_map(|s| {
            let spec: SchemeSpec = s.clone().into();
            workloads.iter().map(move |w| (spec, w.clone().into()))
        })
        .collect();
    run_cells(&cells, |cell| {
        run_lifetime_cell(pcm, cell.0, &cell.1, limits)
    })
}

/// Runs every scheme against every attack on a fresh fault-tolerant
/// domain (`pcm` data region + spares per `fault_cfg`), following each
/// run through correction and retirement to spare-pool exhaustion.
/// Reports come back in `schemes`-major order.
///
/// # Panics
///
/// Panics if the fault config is invalid or a scheme cannot be built
/// for the data-region geometry.
#[must_use]
pub fn degradation_matrix<S, W>(
    pcm: &PcmConfig,
    fault_cfg: &FaultConfig,
    schemes: &[S],
    attacks: &[W],
    limits: &SimLimits,
) -> Vec<DegradationReport>
where
    S: Clone + Into<SchemeSpec>,
    W: Clone + Into<WorkloadSpec>,
{
    let cells: Vec<(SchemeSpec, WorkloadSpec)> = schemes
        .iter()
        .flat_map(|s| {
            let spec: SchemeSpec = s.clone().into();
            attacks.iter().map(move |w| (spec, w.clone().into()))
        })
        .collect();
    run_cells(&cells, |cell| {
        run_degradation_cell(pcm, fault_cfg, cell.0, &cell.1, limits)
    })
}

/// Runs every scheme against every PARSEC benchmark workload, each with
/// its own bandwidth calibration (Fig. 8's grid), in `schemes`-major
/// order.
///
/// # Panics
///
/// Panics if a scheme cannot be built for the device geometry.
#[must_use]
pub fn workload_matrix<S, W>(
    pcm: &PcmConfig,
    schemes: &[S],
    benchmarks: &[W],
    limits: &SimLimits,
) -> Vec<LifetimeReport>
where
    S: Clone + Into<SchemeSpec>,
    W: Clone + Into<WorkloadSpec>,
{
    lifetime_matrix(pcm, schemes, benchmarks, limits)
}

/// Geometric mean of the reports' lifetimes in years (the paper's
/// `Gmean` column), treating non-positive entries as a tiny epsilon.
#[must_use]
pub fn gmean_years(reports: &[LifetimeReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = reports.iter().map(|r| r.years.max(1e-9).ln()).sum();
    (log_sum / reports.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeKind;
    use twl_attacks::AttackKind;
    use twl_workloads::ParsecBenchmark;

    fn pcm() -> PcmConfig {
        PcmConfig::builder()
            .pages(128)
            .mean_endurance(2_000)
            .seed(8)
            .build()
            .expect("valid config")
    }

    #[test]
    fn attack_matrix_shape_and_order() {
        let reports = attack_matrix(
            &pcm(),
            &[SchemeKind::Nowl, SchemeKind::TwlSwp],
            &[AttackKind::Repeat, AttackKind::Scan],
            &SimLimits::default(),
        );
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].scheme, "NOWL");
        assert_eq!(reports[0].workload, "repeat");
        assert_eq!(reports[1].workload, "scan");
        assert_eq!(reports[2].scheme, "TWL_swp");
    }

    #[test]
    fn single_cells_equal_their_matrix_slots() {
        let pcm = pcm();
        let limits = SimLimits::default();
        let matrix = attack_matrix(
            &pcm,
            &[SchemeKind::Nowl, SchemeKind::TwlSwp],
            &[AttackKind::Repeat, AttackKind::Scan],
            &limits,
        );
        // Re-running any one cell in isolation is bit-identical to the
        // matrix slot — the contract checkpoint/resume relies on.
        assert_eq!(
            run_attack_cell(&pcm, SchemeKind::TwlSwp, AttackKind::Scan, &limits),
            matrix[3]
        );
        assert_eq!(
            run_attack_cell(&pcm, SchemeKind::Nowl, AttackKind::Repeat, &limits),
            matrix[0]
        );
    }

    #[test]
    fn workload_matrix_uses_per_benchmark_calibration() {
        let reports = workload_matrix(
            &pcm(),
            &[SchemeKind::Nowl],
            &[ParsecBenchmark::Vips, ParsecBenchmark::Streamcluster],
            &SimLimits::default(),
        );
        assert_eq!(reports.len(), 2);
        // Same device, same scheme: capacity fractions are comparable,
        // but streamcluster's years dwarf vips' because its bandwidth
        // is ~275x lower.
        assert!(reports[1].years > 20.0 * reports[0].years);
    }

    #[test]
    fn degradation_matrix_runs_to_spare_exhaustion() {
        let fault_cfg = FaultConfig {
            cell_groups_per_page: 8,
            group_sigma_fraction: 0.15,
            policy: twl_faults::CorrectionPolicy::Ecp { entries: 2 },
            spare_fraction: 0.05,
            seed: 4,
        };
        let reports = degradation_matrix(
            &pcm(),
            &fault_cfg,
            &[SchemeKind::Nowl, SchemeKind::TwlSwp],
            &[AttackKind::Repeat],
            &SimLimits::default(),
        );
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.end, crate::DegradationEnd::SpareExhausted, "{}", r.scheme);
            assert_eq!(r.data_pages, 128);
            assert_eq!(r.retired_pages, r.spare_pages);
            assert!(r.curve.len() >= 2);
        }
        // TWL spreads the attack, so it reaches spare exhaustion later.
        assert!(reports[1].device_writes > reports[0].device_writes);
        // And its cell entry point reproduces the matrix slot exactly.
        assert_eq!(
            run_degradation_cell(
                &pcm(),
                &fault_cfg,
                SchemeKind::TwlSwp,
                AttackKind::Repeat,
                &SimLimits::default(),
            ),
            reports[1]
        );
    }

    #[test]
    fn gmean_handles_zeroes() {
        let reports = attack_matrix(
            &pcm(),
            &[SchemeKind::Nowl],
            &[AttackKind::Repeat],
            &SimLimits::default(),
        );
        let g = gmean_years(&reports);
        assert!(g >= 0.0 && g.is_finite());
        assert_eq!(gmean_years(&[]), 0.0);
    }
}
