//! Lifetime simulation results.

use serde::{Deserialize, Serialize};
use twl_pcm::PhysicalPageAddr;

/// Result of one lifetime run.
///
/// # Examples
///
/// ```
/// use twl_lifetime::LifetimeReport;
///
/// fn print(report: &LifetimeReport) {
///     println!("{:.2} years ({:.1}% of ideal)", report.years,
///              100.0 * report.capacity_fraction);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// Scheme under test.
    pub scheme: String,
    /// Workload or attack that drove the run.
    pub workload: String,
    /// Logical writes serviced before the first page failure.
    pub logical_writes: u64,
    /// Device page writes absorbed (includes migration overhead).
    pub device_writes: u64,
    /// The page whose wear-out ended the run, if the run completed.
    pub failed_page: Option<PhysicalPageAddr>,
    /// Whether a page actually wore out (`false` = the write budget ran
    /// out first and the numbers are a lower bound).
    pub completed: bool,
    /// `device_writes / total device endurance` — the scale-invariant
    /// lifetime measure (1.0 = ideal).
    pub capacity_fraction: f64,
    /// Calibrated lifetime in years on the nominal device.
    pub years: f64,
    /// Swap operations per logical write (Fig. 7a's metric).
    pub swap_per_write: f64,
    /// Overhead device writes per logical write.
    pub extra_write_ratio: f64,
    /// Gini coefficient of final wear (0 = perfectly level).
    pub wear_gini: f64,
}

impl LifetimeReport {
    /// Lifetime normalized to ideal (Fig. 8's y-axis).
    #[must_use]
    pub fn normalized_lifetime(&self) -> f64 {
        self.capacity_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_lifetime_is_capacity_fraction() {
        let report = LifetimeReport {
            scheme: "TWL_swp".into(),
            workload: "scan".into(),
            logical_writes: 100,
            device_writes: 110,
            failed_page: Some(PhysicalPageAddr::new(3)),
            completed: true,
            capacity_fraction: 0.62,
            years: 4.1,
            swap_per_write: 0.015,
            extra_write_ratio: 0.022,
            wear_gini: 0.1,
        };
        assert_eq!(report.normalized_lifetime(), 0.62);
    }
}
