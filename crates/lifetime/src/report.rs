//! Lifetime simulation results.

use serde::{Deserialize, Serialize};
use twl_pcm::PhysicalPageAddr;

/// Result of one lifetime run.
///
/// # Examples
///
/// ```
/// use twl_lifetime::LifetimeReport;
///
/// fn print(report: &LifetimeReport) {
///     println!("{:.2} years ({:.1}% of ideal)", report.years,
///              100.0 * report.capacity_fraction);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// Scheme under test.
    pub scheme: String,
    /// Workload or attack that drove the run.
    pub workload: String,
    /// Logical writes serviced before the first page failure.
    pub logical_writes: u64,
    /// Device page writes absorbed (includes migration overhead).
    pub device_writes: u64,
    /// The page whose wear-out ended the run, if the run completed.
    pub failed_page: Option<PhysicalPageAddr>,
    /// Whether a page actually wore out (`false` = the write budget ran
    /// out first and the numbers are a lower bound).
    pub completed: bool,
    /// `device_writes / total device endurance` — the scale-invariant
    /// lifetime measure (1.0 = ideal).
    pub capacity_fraction: f64,
    /// Calibrated lifetime in years on the nominal device.
    pub years: f64,
    /// Swap operations per logical write (Fig. 7a's metric).
    pub swap_per_write: f64,
    /// Overhead device writes per logical write.
    pub extra_write_ratio: f64,
    /// Gini coefficient of final wear (0 = perfectly level).
    pub wear_gini: f64,
}

impl LifetimeReport {
    /// Lifetime normalized to ideal (Fig. 8's y-axis).
    #[must_use]
    pub fn normalized_lifetime(&self) -> f64 {
        self.capacity_fraction
    }
}

/// Why a degradation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationEnd {
    /// A retirement found the spare pool empty — true end of life.
    SpareExhausted,
    /// The logical-write budget ran out first; every metric is a lower
    /// bound.
    WriteBudget,
}

/// One point on the degradation curve, captured at each page retirement
/// and at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Logical writes serviced so far.
    pub logical_writes: u64,
    /// Device writes absorbed so far.
    pub device_writes: u64,
    /// Cell-group faults corrected so far.
    pub corrected_groups: u64,
    /// Physical pages retired so far.
    pub retired_pages: u64,
    /// Spare pages still available.
    pub spares_remaining: u64,
}

/// Result of one graceful-degradation run: a curve instead of a single
/// failure point.
///
/// Where [`LifetimeReport`] ends at the first worn-out page, this report
/// follows the device through cell faults, ECP-style correction, and
/// page retirements all the way to spare-pool exhaustion. Capacity here
/// is *physical*: the fraction of frames not yet retired (slots stay
/// fully serviceable until spares run out, so logical capacity is a step
/// function that drops to zero exactly at [`DegradationEnd::SpareExhausted`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Scheme under test.
    pub scheme: String,
    /// Workload or attack that drove the run.
    pub workload: String,
    /// Pages in the scheme-addressable data region.
    pub data_pages: u64,
    /// Pages provisioned as retirement spares.
    pub spare_pages: u64,
    /// Logical writes serviced over the whole run.
    pub logical_writes: u64,
    /// Device writes absorbed over the whole run.
    pub device_writes: u64,
    /// Cell-group faults corrected over the whole run.
    pub corrected_groups: u64,
    /// Physical pages retired over the whole run.
    pub retired_pages: u64,
    /// Device writes when the first cell fault was corrected.
    pub first_fault_device_writes: Option<u64>,
    /// Device writes when the first page was retired.
    pub first_retirement_device_writes: Option<u64>,
    /// Device writes when the spare pool ran dry.
    pub spare_exhausted_device_writes: Option<u64>,
    /// Why the run stopped.
    pub end: DegradationEnd,
    /// `device_writes / total device endurance` — comparable with
    /// [`LifetimeReport::capacity_fraction`], but measured to spare
    /// exhaustion rather than first wear-out.
    pub capacity_fraction: f64,
    /// Calibrated lifetime in years to the end of the run.
    pub years: f64,
    /// Gini coefficient of final wear across all physical pages.
    pub wear_gini: f64,
    /// The degradation curve: one point per retirement, plus a final
    /// point at the end of the run.
    pub curve: Vec<DegradationPoint>,
}

impl DegradationReport {
    /// Fraction of physical frames still alive at the end of the run.
    #[must_use]
    pub fn surviving_capacity(&self) -> f64 {
        let total = self.data_pages + self.spare_pages;
        1.0 - self.retired_pages as f64 / total as f64
    }

    /// Device writes at which physical capacity loss first reached
    /// `fraction` (e.g. `0.01` = 1 % of frames retired), or `None` if
    /// the run never degraded that far.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    #[must_use]
    pub fn device_writes_to_capacity_loss(&self, fraction: f64) -> Option<u64> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "capacity-loss fraction must be in (0, 1]"
        );
        let total = self.data_pages + self.spare_pages;
        let needed = (fraction * total as f64).ceil() as u64;
        self.curve
            .iter()
            .find(|p| p.retired_pages >= needed)
            .map(|p| p.device_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_degradation() -> DegradationReport {
        DegradationReport {
            scheme: "TWL_swp".into(),
            workload: "repeat".into(),
            data_pages: 96,
            spare_pages: 4,
            logical_writes: 10_000,
            device_writes: 10_400,
            corrected_groups: 25,
            retired_pages: 4,
            first_fault_device_writes: Some(7_000),
            first_retirement_device_writes: Some(8_000),
            spare_exhausted_device_writes: Some(10_400),
            end: DegradationEnd::SpareExhausted,
            capacity_fraction: 0.9,
            years: 5.0,
            wear_gini: 0.05,
            curve: vec![
                DegradationPoint {
                    logical_writes: 7_900,
                    device_writes: 8_000,
                    corrected_groups: 10,
                    retired_pages: 1,
                    spares_remaining: 3,
                },
                DegradationPoint {
                    logical_writes: 10_000,
                    device_writes: 10_400,
                    corrected_groups: 25,
                    retired_pages: 4,
                    spares_remaining: 0,
                },
            ],
        }
    }

    #[test]
    fn degradation_capacity_queries() {
        let report = sample_degradation();
        assert!((report.surviving_capacity() - 0.96).abs() < 1e-12);
        // 1% of 100 pages = 1 retired page: first curve point.
        assert_eq!(report.device_writes_to_capacity_loss(0.01), Some(8_000));
        // 4% needs all four retirements.
        assert_eq!(report.device_writes_to_capacity_loss(0.04), Some(10_400));
        // Never lost half the device.
        assert_eq!(report.device_writes_to_capacity_loss(0.5), None);
    }

    #[test]
    fn normalized_lifetime_is_capacity_fraction() {
        let report = LifetimeReport {
            scheme: "TWL_swp".into(),
            workload: "scan".into(),
            logical_writes: 100,
            device_writes: 110,
            failed_page: Some(PhysicalPageAddr::new(3)),
            completed: true,
            capacity_fraction: 0.62,
            years: 4.1,
            swap_per_write: 0.015,
            extra_write_ratio: 0.022,
            wear_gini: 0.1,
        };
        assert_eq!(report.normalized_lifetime(), 0.62);
    }
}
