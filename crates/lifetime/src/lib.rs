#![warn(missing_docs)]

//! Lifetime simulation for the `tossup-wl` workspace.
//!
//! Drives attacks ([`twl_attacks`]) or PARSEC-like workloads
//! ([`twl_workloads`]) against a [`twl_pcm::PcmDevice`] protected by any
//! [`twl_wl_core::WearLeveler`] until the first page wears out — the
//! paper's lifetime methodology (§5.1) — and converts the result into
//! calibrated years comparable with the paper's figures.
//!
//! * [`SchemeKind`] / [`build_scheme`] — a factory over every scheme in
//!   the workspace, so sweeps can be written as data
//!   ([`build_scheme_for_region`] scopes a scheme to the data region of
//!   a spare-augmented device).
//! * [`run_attack`] / [`run_workload`] — the fail-stop simulation loops.
//! * [`run_degradation_attack`] / [`run_degradation_workload`] — the
//!   graceful-degradation loops over a `twl_faults::FaultDomain`: cell
//!   faults are corrected within the ECP/SAFER budget, uncorrectable
//!   pages retire to spares, and the run ends at spare-pool exhaustion
//!   with a full [`DegradationReport`] curve instead of a single
//!   failure point.
//! * [`run_attack_banked`] / [`run_workload_banked`] — one run split
//!   into [`twl_pcm::PcmConfig::banks`] independent wear-leveling
//!   domains fanned out on the worker pool and merged in bank order;
//!   bit-identical for any worker count, so a single large cell scales
//!   across cores without giving up determinism.
//! * [`attack_matrix`] / [`workload_matrix`] / [`degradation_matrix`] —
//!   scheme × attack / workload grids on the bounded worker pool of
//!   [`pool`]; [`run_attack_cell`] and friends run one grid slot in
//!   isolation, bit-identical to its matrix position (the unit of
//!   checkpoint/resume in `twl-service`).
//! * [`LifetimeReport`] — writes survived, fraction of ideal capacity,
//!   calibrated years.
//! * [`Calibration`] — the years conversion (see `DESIGN.md` §3): the
//!   scaled device's *capacity fraction* is scale-invariant, and years
//!   are `fraction × ideal_years(bandwidth)` on the paper's nominal
//!   32 GB / 10⁸-endurance device, with the paper's own ≈1.92× traffic
//!   constant folded in so Table 2's ideal column reproduces exactly.
//!
//! # Examples
//!
//! ```
//! use twl_lifetime::{build_scheme, run_attack, Calibration, SchemeKind, SimLimits};
//! use twl_attacks::{Attack, AttackKind};
//! use twl_pcm::{PcmConfig, PcmDevice};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
//! let pcm = PcmConfig::builder().pages(256).mean_endurance(2_000).seed(1).build()?;
//! let mut device = PcmDevice::new(&pcm);
//! let mut scheme = build_scheme(SchemeKind::TwlSwp, &device)?;
//! let mut attack = Attack::new(AttackKind::Repeat, 256, 0);
//! let report = run_attack(
//!     scheme.as_mut(), &mut device, &mut attack,
//!     &SimLimits::default(), &Calibration::attack_8gbps(),
//! );
//! assert!(report.capacity_fraction > 0.0);
//! # Ok(())
//! # }
//! ```

mod banked;
mod calibrate;
pub mod pool;
mod report;
mod scheme;
mod sim;
mod sweep;

pub use banked::{
    run_attack_banked, run_attack_banked_on, run_lifetime_banked, run_lifetime_banked_on,
    run_workload_banked, run_workload_banked_on, BankedLifetimeReport,
};
pub use calibrate::{Calibration, IDEAL_CALIBRATION, SECONDS_PER_YEAR};
pub use report::{DegradationEnd, DegradationPoint, DegradationReport, LifetimeReport};
pub use scheme::{
    build_scheme, build_scheme_for_region, build_scheme_spec, build_scheme_spec_for_region,
    parse_spec_list, BwlParams, SchemeError, SchemeKind, SchemeParams, SchemeSpec, SrParams,
    StartGapParams, TwlParams,
};
pub use sim::{
    run_attack, run_attack_unbatched, run_degradation_attack, run_degradation_attack_unbatched,
    run_degradation_workload, run_degradation_workload_unbatched, run_workload,
    run_workload_unbatched, SimLimits,
};
pub use sweep::{
    attack_matrix, degradation_matrix, gmean_years, lifetime_matrix, run_attack_cell,
    run_degradation_cell, run_lifetime_cell, run_workload_cell, workload_matrix,
};
