//! Scheme factory: every wear leveler in the workspace, as data.
//!
//! Two layers of identity live here. [`SchemeKind`] names an algorithm
//! (`TWL_swp`, `SR`, …); [`SchemeSpec`] names a *configuration* of one —
//! a kind plus a typed set of parameter overrides that default to the
//! paper's values. A spec is a small `Copy` value with a canonical
//! string label (`TWL_swp[ti=8,pair=rnd:7]`), a `FromStr`/`Display`
//! round trip, and a JSON codec, so every experiment in the workspace
//! — a sweep matrix cell, a service job, a checkpoint — can carry the
//! exact scheme configuration it ran as data.
//!
//! Default-parameter specs are indistinguishable from their bare kind:
//! they build the identical engine (same code path, same RNG streams),
//! render as the bare kind label, and encode as a bare label string in
//! JSON — which is also the backward-compatibility story for job specs
//! and checkpoints written before `SchemeSpec` existed.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use twl_baselines::{
    BloomFilterWl, BwlConfig, SecurityRefresh, SrConfig, StartGap, StartGapConfig,
    WearRateLeveling, WrlConfig,
};
use twl_core::{PairingStrategy, TossUpWearLeveling, TwlConfig};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_telemetry::json::{int, str, Json};
use twl_wl_core::{BatchOutcome, Nowl, ReadOutcome, WearLeveler, WlStats, WriteOutcome};

/// Every scheme the workspace can instantiate, in the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchemeKind {
    /// No wear leveling.
    Nowl,
    /// Security Refresh (two-level).
    Sr,
    /// Bloom-filter wear leveling.
    Bwl,
    /// Wear-rate leveling.
    Wrl,
    /// Start-Gap.
    StartGap,
    /// Toss-up WL with strong-weak pairing (the paper's `TWL_swp`).
    TwlSwp,
    /// Toss-up WL with adjacent pairing (the paper's `TWL_ap`).
    TwlAp,
}

impl SchemeKind {
    /// Every kind, in declaration order.
    pub const ALL: [SchemeKind; 7] = [
        Self::Nowl,
        Self::Sr,
        Self::Bwl,
        Self::Wrl,
        Self::StartGap,
        Self::TwlSwp,
        Self::TwlAp,
    ];

    /// The schemes of Fig. 6, in its legend order.
    pub const FIG6: [SchemeKind; 5] = [Self::Bwl, Self::Sr, Self::TwlAp, Self::TwlSwp, Self::Nowl];

    /// The schemes of Figs. 8–9 (TWL means `TWL_swp`).
    pub const FIG8: [SchemeKind; 4] = [Self::Bwl, Self::Sr, Self::TwlSwp, Self::Nowl];

    /// Display label as used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Nowl => "NOWL",
            Self::Sr => "SR",
            Self::Bwl => "BWL",
            Self::Wrl => "WRL",
            Self::StartGap => "StartGap",
            Self::TwlSwp => "TWL_swp",
            Self::TwlAp => "TWL_ap",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SchemeKind {
    type Err = String;

    /// Parses a figure label, case-insensitively. `TWL` is accepted as
    /// an alias for `TWL_swp` (the paper's headline variant).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let folded = s.trim().to_ascii_lowercase();
        if folded == "twl" {
            return Ok(Self::TwlSwp);
        }
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.label().to_ascii_lowercase() == folded)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(SchemeKind::label).collect();
                format!(
                    "unknown scheme `{s}` (expected one of {})",
                    known.join(", ")
                )
            })
    }
}

/// Why a scheme could not be built or a spec is ill-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemeError {
    /// The requested region does not fit the device.
    InvalidRegion {
        /// Requested region size in pages.
        pages: u64,
        /// The device's total page count.
        device_pages: u64,
    },
    /// A parameter override is invalid for the scheme.
    InvalidParams {
        /// The scheme the override targets.
        kind: SchemeKind,
        /// What is wrong with it.
        reason: String,
    },
    /// The scheme rejects the region geometry (e.g. Security Refresh
    /// on a non-power-of-two page count).
    Geometry {
        /// The scheme that rejected the geometry.
        kind: SchemeKind,
        /// The scheme's own error message.
        reason: String,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRegion {
                pages,
                device_pages,
            } => write!(
                f,
                "scheme region of {pages} pages outside a {device_pages}-page device"
            ),
            Self::InvalidParams { kind, reason } => {
                write!(f, "invalid parameters for {kind}: {reason}")
            }
            Self::Geometry { kind, reason } => {
                write!(f, "{kind} rejects the region geometry: {reason}")
            }
        }
    }
}

impl Error for SchemeError {}

/// TWL parameter overrides (`None` keeps the paper default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TwlParams {
    /// Writes per page between toss-up decisions (paper: 32).
    pub toss_up_interval: Option<u64>,
    /// Writes per pair between inter-pair swaps (paper: 128);
    /// `u64::MAX` disables them (label `ip=off`).
    pub inter_pair_swap_interval: Option<u64>,
    /// Pairing strategy override (the kind's own default otherwise).
    pub pairing: Option<PairingStrategy>,
    /// `true` for the optimized 2-write swap, `false` for the naive
    /// 3-write swap (label `swap=2` / `swap=3`).
    pub optimized_swap: Option<bool>,
    /// Track measured wear instead of nominal endurance.
    pub dynamic_endurance: Option<bool>,
}

/// BWL parameter overrides (`None` keeps the scaled preset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BwlParams {
    /// Writes per epoch.
    pub epoch_writes: Option<u64>,
    /// Initial hot-page threshold.
    pub initial_hot_threshold: Option<u64>,
    /// Enable band repair (the BWL paper's refinement).
    pub band_repair: Option<bool>,
}

/// Security Refresh parameter overrides (`None` keeps the
/// endurance-scaled preset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SrParams {
    /// Inner-level swap interval in writes.
    pub inner_interval: Option<u64>,
    /// Outer-level swap interval in writes.
    pub outer_interval: Option<u64>,
}

/// Start-Gap parameter overrides (`None` keeps the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StartGapParams {
    /// Writes between gap moves (paper: 100).
    pub gap_interval: Option<u64>,
}

/// Typed per-scheme parameter overrides.
///
/// `Default` (the common case) means "the paper configuration"; the
/// other variants carry `Option` override fields for one scheme family.
/// A variant whose fields are all `None` is semantically `Default`;
/// [`SchemeSpec::canonical`] normalizes it away.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchemeParams {
    /// Paper-default configuration.
    #[default]
    Default,
    /// Overrides for the TWL kinds.
    Twl(TwlParams),
    /// Overrides for BWL.
    Bwl(BwlParams),
    /// Overrides for Security Refresh.
    Sr(SrParams),
    /// Overrides for Start-Gap.
    StartGap(StartGapParams),
}

/// A scheme *configuration*: a kind plus typed parameter overrides.
///
/// The unit of scheme identity everywhere schemes travel as data —
/// sweep matrices, service jobs, checkpoints, bench tables. Construct
/// one with [`SchemeSpec::new`] (paper defaults), tweak it with
/// [`SchemeSpec::set_param`], or parse a label:
///
/// ```
/// use twl_lifetime::SchemeSpec;
///
/// let spec: SchemeSpec = "TWL_swp[ti=8,pair=rnd:7]".parse().unwrap();
/// assert_eq!(spec.label(), "TWL_swp[ti=8,pair=rnd:7]");
/// let plain: SchemeSpec = "BWL".parse().unwrap();
/// assert!(plain.is_default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchemeSpec {
    /// The algorithm.
    pub kind: SchemeKind,
    /// Parameter overrides (paper defaults when `Default`).
    pub params: SchemeParams,
}

impl From<SchemeKind> for SchemeSpec {
    fn from(kind: SchemeKind) -> Self {
        Self::new(kind)
    }
}

impl From<&SchemeSpec> for SchemeSpec {
    fn from(spec: &SchemeSpec) -> Self {
        *spec
    }
}

impl SchemeSpec {
    /// The paper-default spec for `kind`.
    #[must_use]
    pub fn new(kind: SchemeKind) -> Self {
        Self {
            kind,
            params: SchemeParams::Default,
        }
    }

    /// Whether this spec is the paper-default configuration (no
    /// effective overrides).
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.label_parts().is_empty()
    }

    /// Normalizes an all-`None` params variant back to
    /// [`SchemeParams::Default`], so equal configurations compare equal.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.is_default() {
            self.params = SchemeParams::Default;
        }
        self
    }

    /// The canonical label: the kind label, plus `[k=v,...]` for any
    /// overridden parameters in a fixed key order. Round-trips through
    /// [`FromStr`] and is what reports, telemetry scopes, and service
    /// events use for this spec.
    #[must_use]
    pub fn label(&self) -> String {
        let parts = self.label_parts();
        if parts.is_empty() {
            self.kind.label().to_owned()
        } else {
            format!("{}[{}]", self.kind.label(), parts.join(","))
        }
    }

    fn label_parts(&self) -> Vec<String> {
        let mut parts = Vec::new();
        match &self.params {
            SchemeParams::Default => {}
            SchemeParams::Twl(p) => {
                if let Some(v) = p.toss_up_interval {
                    parts.push(format!("ti={v}"));
                }
                if let Some(v) = p.inter_pair_swap_interval {
                    if v == u64::MAX {
                        parts.push("ip=off".to_owned());
                    } else {
                        parts.push(format!("ip={v}"));
                    }
                }
                if let Some(v) = p.pairing {
                    parts.push(format!("pair={}", pairing_label(v)));
                }
                if let Some(v) = p.optimized_swap {
                    parts.push(format!("swap={}", if v { 2 } else { 3 }));
                }
                if let Some(v) = p.dynamic_endurance {
                    parts.push(format!("dyn={}", u8::from(v)));
                }
            }
            SchemeParams::Bwl(p) => {
                if let Some(v) = p.epoch_writes {
                    parts.push(format!("epoch={v}"));
                }
                if let Some(v) = p.initial_hot_threshold {
                    parts.push(format!("thr={v}"));
                }
                if let Some(v) = p.band_repair {
                    parts.push(format!("repair={}", u8::from(v)));
                }
            }
            SchemeParams::Sr(p) => {
                if let Some(v) = p.inner_interval {
                    parts.push(format!("inner={v}"));
                }
                if let Some(v) = p.outer_interval {
                    parts.push(format!("outer={v}"));
                }
            }
            SchemeParams::StartGap(p) => {
                if let Some(v) = p.gap_interval {
                    parts.push(format!("gap={v}"));
                }
            }
        }
        parts
    }

    /// Applies one `key=value` override, creating the right params
    /// variant for this spec's kind. Keys are the short label-grammar
    /// names (`ti`, `ip`, `pair`, `swap`, `dyn`, `epoch`, `thr`,
    /// `repair`, `inner`, `outer`, `gap`); the long JSON field names
    /// are accepted as aliases.
    ///
    /// # Errors
    ///
    /// Returns a message if the key is unknown for the kind or the
    /// value does not parse.
    pub fn set_param(&mut self, key: &str, value: &str) -> Result<(), String> {
        match self.kind {
            SchemeKind::TwlSwp | SchemeKind::TwlAp => {
                let p = self.twl_params_mut();
                match key {
                    "ti" | "toss_up_interval" => p.toss_up_interval = Some(parse_u64(key, value)?),
                    "ip" | "inter_pair_swap_interval" => {
                        p.inter_pair_swap_interval = Some(if value == "off" {
                            u64::MAX
                        } else {
                            parse_u64(key, value)?
                        });
                    }
                    "pair" | "pairing" => p.pairing = Some(parse_pairing(value)?),
                    "swap" => {
                        p.optimized_swap = Some(match value {
                            "2" => true,
                            "3" => false,
                            _ => return Err(format!("`swap` must be 2 or 3, got `{value}`")),
                        });
                    }
                    "optimized_swap" => p.optimized_swap = Some(parse_bool01(key, value)?),
                    "dyn" | "dynamic_endurance" => {
                        p.dynamic_endurance = Some(parse_bool01(key, value)?);
                    }
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            SchemeKind::Bwl => {
                let p = self.bwl_params_mut();
                match key {
                    "epoch" | "epoch_writes" => p.epoch_writes = Some(parse_u64(key, value)?),
                    "thr" | "initial_hot_threshold" => {
                        p.initial_hot_threshold = Some(parse_u64(key, value)?);
                    }
                    "repair" | "band_repair" => p.band_repair = Some(parse_bool01(key, value)?),
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            SchemeKind::Sr => {
                let p = self.sr_params_mut();
                match key {
                    "inner" | "inner_interval" => p.inner_interval = Some(parse_u64(key, value)?),
                    "outer" | "outer_interval" => p.outer_interval = Some(parse_u64(key, value)?),
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            SchemeKind::StartGap => {
                let p = self.start_gap_params_mut();
                match key {
                    "gap" | "gap_interval" => p.gap_interval = Some(parse_u64(key, value)?),
                    _ => return Err(unknown_key(self.kind, key)),
                }
            }
            SchemeKind::Nowl | SchemeKind::Wrl => {
                return Err(format!("{} takes no parameters (got `{key}`)", self.kind));
            }
        }
        Ok(())
    }

    fn twl_params_mut(&mut self) -> &mut TwlParams {
        if !matches!(self.params, SchemeParams::Twl(_)) {
            self.params = SchemeParams::Twl(TwlParams::default());
        }
        match &mut self.params {
            SchemeParams::Twl(p) => p,
            _ => unreachable!(),
        }
    }

    fn bwl_params_mut(&mut self) -> &mut BwlParams {
        if !matches!(self.params, SchemeParams::Bwl(_)) {
            self.params = SchemeParams::Bwl(BwlParams::default());
        }
        match &mut self.params {
            SchemeParams::Bwl(p) => p,
            _ => unreachable!(),
        }
    }

    fn sr_params_mut(&mut self) -> &mut SrParams {
        if !matches!(self.params, SchemeParams::Sr(_)) {
            self.params = SchemeParams::Sr(SrParams::default());
        }
        match &mut self.params {
            SchemeParams::Sr(p) => p,
            _ => unreachable!(),
        }
    }

    fn start_gap_params_mut(&mut self) -> &mut StartGapParams {
        if !matches!(self.params, SchemeParams::StartGap(_)) {
            self.params = SchemeParams::StartGap(StartGapParams::default());
        }
        match &mut self.params {
            SchemeParams::StartGap(p) => p,
            _ => unreachable!(),
        }
    }

    /// Checks that the params variant matches the kind and every
    /// override is in range.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::InvalidParams`] on a mismatched variant
    /// or an out-of-range value (zero intervals, mostly).
    pub fn validate(&self) -> Result<(), SchemeError> {
        let invalid = |reason: String| SchemeError::InvalidParams {
            kind: self.kind,
            reason,
        };
        match (self.kind, &self.params) {
            (_, SchemeParams::Default) => Ok(()),
            (SchemeKind::TwlSwp | SchemeKind::TwlAp, SchemeParams::Twl(p)) => {
                if p.toss_up_interval == Some(0) {
                    return Err(invalid("toss-up interval must be positive".into()));
                }
                if p.inter_pair_swap_interval == Some(0) {
                    return Err(invalid("inter-pair swap interval must be positive".into()));
                }
                Ok(())
            }
            (SchemeKind::Bwl, SchemeParams::Bwl(p)) => {
                if p.epoch_writes == Some(0) {
                    return Err(invalid("epoch writes must be positive".into()));
                }
                Ok(())
            }
            (SchemeKind::Sr, SchemeParams::Sr(p)) => {
                if p.inner_interval == Some(0) || p.outer_interval == Some(0) {
                    return Err(invalid("refresh intervals must be positive".into()));
                }
                Ok(())
            }
            (SchemeKind::StartGap, SchemeParams::StartGap(p)) => {
                if p.gap_interval == Some(0) {
                    return Err(invalid("gap interval must be positive".into()));
                }
                Ok(())
            }
            (kind, params) => Err(invalid(format!(
                "{params:?} overrides do not apply to {kind}"
            ))),
        }
    }

    /// Encodes the spec: a bare label string for default-params specs
    /// (byte-identical to the pre-`SchemeSpec` wire format), a
    /// `{"kind", "params"}` object otherwise.
    #[must_use]
    pub fn to_json(&self) -> Json {
        if self.is_default() {
            return str(self.kind.label());
        }
        let mut params = BTreeMap::new();
        let mut put = |k: &str, v: Json| {
            params.insert(k.to_owned(), v);
        };
        match &self.params {
            SchemeParams::Default => {}
            SchemeParams::Twl(p) => {
                if let Some(v) = p.toss_up_interval {
                    put("toss_up_interval", int(v));
                }
                if let Some(v) = p.inter_pair_swap_interval {
                    put("inter_pair_swap_interval", int(v));
                }
                if let Some(v) = p.pairing {
                    put("pairing", str(&pairing_label(v)));
                }
                if let Some(v) = p.optimized_swap {
                    put("optimized_swap", Json::Bool(v));
                }
                if let Some(v) = p.dynamic_endurance {
                    put("dynamic_endurance", Json::Bool(v));
                }
            }
            SchemeParams::Bwl(p) => {
                if let Some(v) = p.epoch_writes {
                    put("epoch_writes", int(v));
                }
                if let Some(v) = p.initial_hot_threshold {
                    put("initial_hot_threshold", int(v));
                }
                if let Some(v) = p.band_repair {
                    put("band_repair", Json::Bool(v));
                }
            }
            SchemeParams::Sr(p) => {
                if let Some(v) = p.inner_interval {
                    put("inner_interval", int(v));
                }
                if let Some(v) = p.outer_interval {
                    put("outer_interval", int(v));
                }
            }
            SchemeParams::StartGap(p) => {
                if let Some(v) = p.gap_interval {
                    put("gap_interval", int(v));
                }
            }
        }
        Json::obj([
            ("kind", str(self.kind.label())),
            ("params", Json::Obj(params)),
        ])
    }

    /// Decodes a spec: either a bare label string (possibly with the
    /// `[k=v,...]` suffix) or a `{"kind", "params"}` object.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown kind, an unknown parameter key,
    /// or an out-of-range value.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) => s.parse(),
            Json::Obj(_) => {
                let kind: SchemeKind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("scheme spec object is missing string `kind`")?
                    .parse()?;
                let mut spec = Self::new(kind);
                if let Some(params) = v.get("params") {
                    let Json::Obj(map) = params else {
                        return Err("scheme spec `params` is not an object".to_owned());
                    };
                    for (key, value) in map {
                        let rendered = match value {
                            Json::Bool(b) => u8::from(*b).to_string(),
                            Json::Int(_) => value
                                .as_u64()
                                .ok_or_else(|| format!("parameter `{key}` is out of range"))?
                                .to_string(),
                            Json::Str(s) => s.clone(),
                            other => {
                                return Err(format!(
                                    "parameter `{key}` has unsupported value {other:?}"
                                ))
                            }
                        };
                        spec.set_param(key, &rendered)?;
                    }
                }
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec.canonical())
            }
            other => Err(format!(
                "scheme spec is neither string nor object: {other:?}"
            )),
        }
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for SchemeSpec {
    type Err = String;

    /// Parses a canonical label: `KIND` or `KIND[k=v,...]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (kind_str, params_str) = match s.find('[') {
            Some(i) => {
                let Some(inner) = s[i..].strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
                    return Err(format!(
                        "malformed scheme spec `{s}` (expected `KIND[k=v,...]`)"
                    ));
                };
                (&s[..i], Some(inner))
            }
            None => (s, None),
        };
        let mut spec = Self::new(kind_str.parse::<SchemeKind>()?);
        if let Some(params) = params_str {
            if params.trim().is_empty() {
                return Err(format!("empty parameter list in `{s}`"));
            }
            for kv in params.split(',') {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("parameter `{kv}` is not `key=value`"))?;
                spec.set_param(key.trim(), value.trim())?;
            }
        }
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec.canonical())
    }
}

/// Parses a comma-separated list of scheme spec labels, where commas
/// inside `[...]` parameter blocks do not split
/// (`"TWL_swp[ti=8,ip=32],BWL"` is two specs).
///
/// # Errors
///
/// Returns the first label's parse error.
pub fn parse_spec_list(s: &str) -> Result<Vec<SchemeSpec>, String> {
    let mut specs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                if !s[start..i].trim().is_empty() {
                    specs.push(s[start..i].parse()?);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s[start..].trim().is_empty() {
        specs.push(s[start..].parse()?);
    }
    if specs.is_empty() {
        return Err("empty scheme list".to_owned());
    }
    Ok(specs)
}

fn pairing_label(p: PairingStrategy) -> String {
    match p {
        PairingStrategy::StrongWeak => "swp".to_owned(),
        PairingStrategy::Adjacent => "ap".to_owned(),
        PairingStrategy::Random { seed } => format!("rnd:{seed}"),
        // `PairingStrategy` is non-exhaustive; future strategies must
        // add a label here before specs can carry them.
        _ => unreachable!("unlabeled pairing strategy"),
    }
}

fn parse_pairing(value: &str) -> Result<PairingStrategy, String> {
    match value {
        "swp" => Ok(PairingStrategy::StrongWeak),
        "ap" => Ok(PairingStrategy::Adjacent),
        _ => match value.strip_prefix("rnd:") {
            Some(seed) => Ok(PairingStrategy::Random {
                seed: parse_u64("pair seed", seed)?,
            }),
            None => Err(format!(
                "unknown pairing `{value}` (expected swp, ap, or rnd:SEED)"
            )),
        },
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("`{key}` wants an unsigned integer, got `{value}`"))
}

fn parse_bool01(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "0" | "false" => Ok(false),
        "1" | "true" => Ok(true),
        _ => Err(format!("`{key}` wants 0/1, got `{value}`")),
    }
}

fn unknown_key(kind: SchemeKind, key: &str) -> String {
    format!("unknown parameter `{key}` for {kind}")
}

/// Renames a scheme without touching its behavior: every method
/// delegates (including `write_batch` and `read`, so fast paths and
/// latency accounting survive) while `name()` reports the spec label.
/// Built only for non-default specs — default specs keep the engine's
/// own name and its exact pre-`SchemeSpec` code path.
struct Relabeled {
    name: String,
    inner: Box<dyn WearLeveler>,
}

impl WearLeveler for Relabeled {
    fn name(&self) -> &str {
        &self.name
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.inner.translate(la)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        self.inner.write(la, device)
    }

    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        self.inner.write_batch(la, n, device)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        self.inner.write_batch_cap(wear_margin)
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        self.inner.read(la, device)
    }

    fn stats(&self) -> &WlStats {
        self.inner.stats()
    }
}

/// Builds a scheme with its paper-default configuration for `device`.
///
/// # Errors
///
/// Returns a [`SchemeError`] if the device geometry is incompatible
/// (e.g. a non-power-of-two page count for Security Refresh).
pub fn build_scheme(
    kind: SchemeKind,
    device: &PcmDevice,
) -> Result<Box<dyn WearLeveler>, SchemeError> {
    build_scheme_spec(&SchemeSpec::new(kind), device)
}

/// Builds a scheme with its paper-default configuration over only the
/// first `pages` slots of `device`. See
/// [`build_scheme_spec_for_region`].
///
/// # Errors
///
/// Returns a [`SchemeError`] if the region is empty or oversized, or
/// the geometry is incompatible with the scheme.
pub fn build_scheme_for_region(
    kind: SchemeKind,
    device: &PcmDevice,
    pages: u64,
) -> Result<Box<dyn WearLeveler>, SchemeError> {
    build_scheme_spec_for_region(&SchemeSpec::new(kind), device, pages)
}

/// Builds the scheme a spec describes for the whole of `device`.
///
/// # Errors
///
/// Returns a [`SchemeError`] if the spec is ill-formed or the device
/// geometry is incompatible.
pub fn build_scheme_spec(
    spec: &SchemeSpec,
    device: &PcmDevice,
) -> Result<Box<dyn WearLeveler>, SchemeError> {
    build_scheme_spec_for_region(spec, device, device.page_count())
}

/// Builds the scheme a spec describes over only the first `pages` slots
/// of `device`.
///
/// This is how schemes run on a spare-augmented device
/// (`twl_faults::provision`): the scheme addresses the data region and
/// never sees the spare tail. Endurance-aware schemes (the TWL
/// variants) get the truncated endurance map, which is identical to
/// what a `pages`-page device with the same seed would draw.
///
/// Non-default specs come back wrapped so `name()` reports the spec's
/// label — reports and telemetry scopes then carry the full
/// configuration, not just the algorithm name.
///
/// # Errors
///
/// Returns [`SchemeError::InvalidRegion`] if `pages` is zero or exceeds
/// the device's page count, [`SchemeError::InvalidParams`] on a bad
/// override, and [`SchemeError::Geometry`] if the scheme rejects the
/// region (e.g. a non-power-of-two page count for Security Refresh).
pub fn build_scheme_spec_for_region(
    spec: &SchemeSpec,
    device: &PcmDevice,
    pages: u64,
) -> Result<Box<dyn WearLeveler>, SchemeError> {
    spec.validate()?;
    if pages == 0 || pages > device.page_count() {
        return Err(SchemeError::InvalidRegion {
            pages,
            device_pages: device.page_count(),
        });
    }
    let geometry = |e: &dyn fmt::Display| SchemeError::Geometry {
        kind: spec.kind,
        reason: e.to_string(),
    };
    let built: Box<dyn WearLeveler> = match spec.kind {
        SchemeKind::Nowl => Box::new(Nowl::new(pages)),
        SchemeKind::Sr => {
            let mut cfg = SrConfig::for_scaled_device(pages, device.config().mean_endurance)
                .map_err(|e| geometry(&e))?;
            if let SchemeParams::Sr(p) = &spec.params {
                if let Some(v) = p.inner_interval {
                    cfg.inner_interval = v;
                }
                if let Some(v) = p.outer_interval {
                    cfg.outer_interval = v;
                }
            }
            Box::new(SecurityRefresh::new(&cfg, pages).map_err(|e| geometry(&e))?)
        }
        SchemeKind::Bwl => {
            let mut cfg = BwlConfig::for_pages(pages);
            if let SchemeParams::Bwl(p) = &spec.params {
                if let Some(v) = p.epoch_writes {
                    cfg.epoch_writes = v;
                }
                if let Some(v) = p.initial_hot_threshold {
                    cfg.initial_hot_threshold = v;
                }
                if let Some(v) = p.band_repair {
                    cfg.band_repair = v;
                }
            }
            Box::new(BloomFilterWl::new(&cfg, pages))
        }
        SchemeKind::Wrl => Box::new(WearRateLeveling::new(&WrlConfig::for_pages(pages), pages)),
        SchemeKind::StartGap => {
            let mut cfg = StartGapConfig::default();
            if let SchemeParams::StartGap(p) = &spec.params {
                if let Some(v) = p.gap_interval {
                    cfg.gap_interval = v;
                }
            }
            Box::new(StartGap::new(&cfg, pages))
        }
        SchemeKind::TwlSwp | SchemeKind::TwlAp => {
            let mut builder = TwlConfig::builder();
            if spec.kind == SchemeKind::TwlAp {
                builder.pairing(PairingStrategy::Adjacent);
            }
            if let SchemeParams::Twl(p) = &spec.params {
                if let Some(v) = p.toss_up_interval {
                    builder.toss_up_interval(v);
                }
                if let Some(v) = p.inter_pair_swap_interval {
                    builder.inter_pair_swap_interval(v);
                }
                if let Some(v) = p.pairing {
                    builder.pairing(v);
                }
                if let Some(v) = p.optimized_swap {
                    builder.optimized_swap(v);
                }
                if let Some(v) = p.dynamic_endurance {
                    builder.dynamic_endurance(v);
                }
            }
            let cfg = builder.build().map_err(|e| SchemeError::InvalidParams {
                kind: spec.kind,
                reason: e.to_string(),
            })?;
            Box::new(TossUpWearLeveling::new(
                &cfg,
                &device.endurance_map().truncated(pages as usize),
            ))
        }
    };
    let label = spec.label();
    Ok(if built.name() == label {
        built
    } else {
        Box::new(Relabeled {
            name: label,
            inner: built,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    fn device(pages: u64) -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(10_000)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    #[test]
    fn every_kind_builds_on_default_device() {
        let device = device(256);
        for kind in SchemeKind::ALL {
            let scheme = build_scheme(kind, &device).unwrap();
            assert_eq!(scheme.name(), kind.label(), "kind {kind}");
        }
    }

    #[test]
    fn sr_rejects_non_power_of_two() {
        let pcm = PcmConfig::builder()
            .pages(192)
            .mean_endurance(10_000)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        assert!(matches!(
            build_scheme(SchemeKind::Sr, &device),
            Err(SchemeError::Geometry { .. })
        ));
    }

    #[test]
    fn bad_regions_are_typed_errors_not_panics() {
        let device = device(256);
        assert_eq!(
            build_scheme_for_region(SchemeKind::Nowl, &device, 0).err(),
            Some(SchemeError::InvalidRegion {
                pages: 0,
                device_pages: 256
            }),
        );
        assert!(matches!(
            build_scheme_for_region(SchemeKind::Nowl, &device, 257),
            Err(SchemeError::InvalidRegion { .. })
        ));
    }

    #[test]
    fn region_schemes_ignore_the_spare_tail() {
        // A 256+spare device: schemes built for the 256-page region
        // must report exactly 256 pages and (for TWL) use the same
        // endurance data a plain 256-page device would.
        let pcm = PcmConfig::builder()
            .pages(272)
            .mean_endurance(10_000)
            .seed(3)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        for kind in [SchemeKind::Sr, SchemeKind::TwlSwp, SchemeKind::Nowl] {
            let scheme = build_scheme_for_region(kind, &device, 256).unwrap();
            assert_eq!(scheme.page_count(), 256, "kind {kind}");
        }
        // SR rejects the non-power-of-two full device but accepts the
        // power-of-two region.
        assert!(build_scheme(SchemeKind::Sr, &device).is_err());
    }

    #[test]
    fn figure_sets_are_consistent() {
        assert_eq!(SchemeKind::FIG6.len(), 5);
        assert_eq!(SchemeKind::FIG8.len(), 4);
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.label().parse::<SchemeKind>(), Ok(kind));
            assert_eq!(kind.label().to_lowercase().parse::<SchemeKind>(), Ok(kind));
        }
        assert_eq!("TWL".parse::<SchemeKind>(), Ok(SchemeKind::TwlSwp));
        assert!("bogus".parse::<SchemeKind>().is_err());
    }

    #[test]
    fn spec_labels_round_trip() {
        for label in [
            "TWL_swp[ti=8]",
            "TWL_swp[ti=8,ip=off,pair=rnd:7,swap=3,dyn=1]",
            "TWL_ap[ip=512]",
            "BWL[epoch=1024,thr=4,repair=0]",
            "SR[inner=16,outer=64]",
            "StartGap[gap=50]",
            "NOWL",
        ] {
            let spec: SchemeSpec = label.parse().unwrap();
            assert_eq!(spec.label(), label);
            assert_eq!(spec.label().parse::<SchemeSpec>(), Ok(spec));
            let decoded = SchemeSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(decoded, spec, "json round trip for {label}");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("TWL_swp[ti=0]".parse::<SchemeSpec>().is_err());
        assert!("TWL_swp[]".parse::<SchemeSpec>().is_err());
        assert!("TWL_swp[ti]".parse::<SchemeSpec>().is_err());
        assert!("NOWL[ti=8]".parse::<SchemeSpec>().is_err());
        assert!("SR[gap=5]".parse::<SchemeSpec>().is_err());
        assert!("TWL_swp[pair=xyz]".parse::<SchemeSpec>().is_err());
        assert!("TWL_swp[ti=8".parse::<SchemeSpec>().is_err());
        let mismatched = SchemeSpec {
            kind: SchemeKind::Nowl,
            params: SchemeParams::Twl(TwlParams {
                toss_up_interval: Some(8),
                ..TwlParams::default()
            }),
        };
        assert!(mismatched.validate().is_err());
    }

    #[test]
    fn spec_lists_split_outside_brackets() {
        let specs = parse_spec_list("TWL_swp[ti=8,ip=32], BWL ,NOWL").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].label(), "TWL_swp[ti=8,ip=32]");
        assert_eq!(specs[1].kind, SchemeKind::Bwl);
        assert!(parse_spec_list("  ").is_err());
    }

    #[test]
    fn default_specs_build_unwrapped_engines() {
        let device = device(256);
        for kind in SchemeKind::ALL {
            let spec = SchemeSpec::new(kind);
            let scheme = build_scheme_spec(&spec, &device).unwrap();
            assert_eq!(scheme.name(), kind.label());
        }
    }

    #[test]
    fn non_default_specs_carry_their_label() {
        let device = device(256);
        let spec: SchemeSpec = "TWL_swp[ti=8,pair=rnd:7]".parse().unwrap();
        let scheme = build_scheme_spec(&spec, &device).unwrap();
        assert_eq!(scheme.name(), "TWL_swp[ti=8,pair=rnd:7]");
        let sg: SchemeSpec = "StartGap[gap=50]".parse().unwrap();
        assert_eq!(
            build_scheme_spec(&sg, &device).unwrap().name(),
            "StartGap[gap=50]"
        );
    }

    #[test]
    fn explicit_defaults_behave_like_defaults() {
        // An override equal to the paper default changes the label but
        // not the engine's behavior.
        let device = device(64);
        let spec: SchemeSpec = "TWL_swp[ti=32]".parse().unwrap();
        let mut a = build_scheme_spec(&spec, &device).unwrap();
        let mut b = build_scheme(SchemeKind::TwlSwp, &device).unwrap();
        let mut da = PcmDevice::new(device.config());
        let mut db = PcmDevice::new(device.config());
        for i in 0..5_000u64 {
            let la = LogicalPageAddr::new(i % 64);
            let ra = a.write(la, &mut da);
            let rb = b.write(la, &mut db);
            assert_eq!(ra.is_ok(), rb.is_ok());
        }
        assert_eq!(a.stats().device_writes, b.stats().device_writes);
        assert_eq!(
            a.translate(LogicalPageAddr::new(7)),
            b.translate(LogicalPageAddr::new(7))
        );
    }
}
