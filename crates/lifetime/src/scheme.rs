//! Scheme factory: every wear leveler in the workspace, as data.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use twl_baselines::{
    BloomFilterWl, BwlConfig, SecurityRefresh, SrConfig, StartGap, StartGapConfig,
    WearRateLeveling, WrlConfig,
};
use twl_core::{TossUpWearLeveling, TwlConfig};
use twl_pcm::PcmDevice;
use twl_wl_core::{Nowl, WearLeveler};

/// Every scheme the workspace can instantiate, in the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchemeKind {
    /// No wear leveling.
    Nowl,
    /// Security Refresh (two-level).
    Sr,
    /// Bloom-filter wear leveling.
    Bwl,
    /// Wear-rate leveling.
    Wrl,
    /// Start-Gap.
    StartGap,
    /// Toss-up WL with strong-weak pairing (the paper's `TWL_swp`).
    TwlSwp,
    /// Toss-up WL with adjacent pairing (the paper's `TWL_ap`).
    TwlAp,
}

impl SchemeKind {
    /// The schemes of Fig. 6, in its legend order.
    pub const FIG6: [SchemeKind; 5] = [Self::Bwl, Self::Sr, Self::TwlAp, Self::TwlSwp, Self::Nowl];

    /// The schemes of Figs. 8–9 (TWL means `TWL_swp`).
    pub const FIG8: [SchemeKind; 4] = [Self::Bwl, Self::Sr, Self::TwlSwp, Self::Nowl];

    /// Display label as used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Nowl => "NOWL",
            Self::Sr => "SR",
            Self::Bwl => "BWL",
            Self::Wrl => "WRL",
            Self::StartGap => "StartGap",
            Self::TwlSwp => "TWL_swp",
            Self::TwlAp => "TWL_ap",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds a scheme with its paper-default configuration for `device`.
///
/// # Errors
///
/// Returns an error if the device geometry is incompatible (e.g. a
/// non-power-of-two page count for Security Refresh).
pub fn build_scheme(
    kind: SchemeKind,
    device: &PcmDevice,
) -> Result<Box<dyn WearLeveler>, Box<dyn Error + Send + Sync>> {
    build_scheme_for_region(kind, device, device.page_count())
}

/// Builds a scheme over only the first `pages` slots of `device`.
///
/// This is how schemes run on a spare-augmented device
/// (`twl_faults::provision`): the scheme addresses the data region and
/// never sees the spare tail. Endurance-aware schemes (the TWL
/// variants) get the truncated endurance map, which is identical to
/// what a `pages`-page device with the same seed would draw.
///
/// # Errors
///
/// Returns an error if the region geometry is incompatible with the
/// scheme (e.g. a non-power-of-two page count for Security Refresh).
///
/// # Panics
///
/// Panics if `pages` is zero or exceeds the device's page count.
pub fn build_scheme_for_region(
    kind: SchemeKind,
    device: &PcmDevice,
    pages: u64,
) -> Result<Box<dyn WearLeveler>, Box<dyn Error + Send + Sync>> {
    assert!(
        pages > 0 && pages <= device.page_count(),
        "scheme region of {pages} pages outside a {}-page device",
        device.page_count()
    );
    Ok(match kind {
        SchemeKind::Nowl => Box::new(Nowl::new(pages)),
        SchemeKind::Sr => Box::new(SecurityRefresh::new(
            &SrConfig::for_scaled_device(pages, device.config().mean_endurance)?,
            pages,
        )?),
        SchemeKind::Bwl => Box::new(BloomFilterWl::new(&BwlConfig::for_pages(pages), pages)),
        SchemeKind::Wrl => Box::new(WearRateLeveling::new(&WrlConfig::for_pages(pages), pages)),
        SchemeKind::StartGap => Box::new(StartGap::new(&StartGapConfig::default(), pages)),
        SchemeKind::TwlSwp => Box::new(TossUpWearLeveling::new(
            &TwlConfig::dac17(),
            &device.endurance_map().truncated(pages as usize),
        )),
        SchemeKind::TwlAp => Box::new(TossUpWearLeveling::new(
            &TwlConfig::dac17_adjacent(),
            &device.endurance_map().truncated(pages as usize),
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    #[test]
    fn every_kind_builds_on_default_device() {
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(10_000)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        for kind in [
            SchemeKind::Nowl,
            SchemeKind::Sr,
            SchemeKind::Bwl,
            SchemeKind::Wrl,
            SchemeKind::StartGap,
            SchemeKind::TwlSwp,
            SchemeKind::TwlAp,
        ] {
            let scheme = build_scheme(kind, &device).unwrap();
            assert_eq!(scheme.name(), kind.label(), "kind {kind}");
        }
    }

    #[test]
    fn sr_rejects_non_power_of_two() {
        let pcm = PcmConfig::builder()
            .pages(192)
            .mean_endurance(10_000)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        assert!(build_scheme(SchemeKind::Sr, &device).is_err());
    }

    #[test]
    fn region_schemes_ignore_the_spare_tail() {
        // A 256+spare device: schemes built for the 256-page region
        // must report exactly 256 pages and (for TWL) use the same
        // endurance data a plain 256-page device would.
        let pcm = PcmConfig::builder()
            .pages(272)
            .mean_endurance(10_000)
            .seed(3)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        for kind in [SchemeKind::Sr, SchemeKind::TwlSwp, SchemeKind::Nowl] {
            let scheme = build_scheme_for_region(kind, &device, 256).unwrap();
            assert_eq!(scheme.page_count(), 256, "kind {kind}");
        }
        // SR rejects the non-power-of-two full device but accepts the
        // power-of-two region.
        assert!(build_scheme(SchemeKind::Sr, &device).is_err());
    }

    #[test]
    fn figure_sets_are_consistent() {
        assert_eq!(SchemeKind::FIG6.len(), 5);
        assert_eq!(SchemeKind::FIG8.len(), 4);
    }
}
