//! The shared bounded worker pool.
//!
//! Sweeps ([`crate::attack_matrix`] and friends) and the `twl-service`
//! daemon both need "run N independent units of work on a bounded set
//! of threads". This module is the single place that decides how many
//! workers that is — so the `TWL_THREADS` override is honored in
//! exactly one spot — and provides the order-preserving fan-out used by
//! the sweep grids.

/// Parses a `TWL_THREADS` value.
///
/// # Errors
///
/// Returns a message naming the variable and the offending value when
/// it is not a positive integer — a typo'd override must fail loudly,
/// not silently fall back to full parallelism.
///
/// # Examples
///
/// ```
/// use twl_lifetime::pool::parse_twl_threads;
/// assert_eq!(parse_twl_threads("4"), Ok(4));
/// assert!(parse_twl_threads("0").is_err());
/// assert!(parse_twl_threads("four").is_err());
/// ```
pub fn parse_twl_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "TWL_THREADS must be a positive integer, got {raw:?} (use 1 for a serial run)"
        )),
        Ok(n) => Ok(n),
        Err(e) => Err(format!(
            "TWL_THREADS must be a positive integer, got {raw:?}: {e}"
        )),
    }
}

/// Worker threads the process should use for embarrassingly parallel
/// work: `TWL_THREADS` when set, the machine's available parallelism
/// otherwise.
///
/// # Panics
///
/// Panics with the [`parse_twl_threads`] message when `TWL_THREADS` is
/// set but is not a positive integer.
///
/// # Examples
///
/// ```
/// let workers = twl_lifetime::pool::configured_parallelism();
/// assert!(workers >= 1);
/// ```
#[must_use]
pub fn configured_parallelism() -> usize {
    match std::env::var("TWL_THREADS") {
        Ok(raw) => parse_twl_threads(&raw).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Number of worker threads a `cells`-unit workload uses:
/// [`configured_parallelism`], but never more than there are cells and
/// never zero.
#[must_use]
pub fn worker_count(cells: usize) -> usize {
    configured_parallelism().min(cells).max(1)
}

/// Runs the cells on a bounded worker pool, preserving input order in
/// the results. Each cell owns its state, so the parallelism is
/// trivially safe; workers pull cells from a shared atomic cursor, so
/// grids larger than the pool never oversubscribe the machine (override
/// the pool size with `TWL_THREADS`).
pub fn run_cells<C: Sync, R: Send>(cells: &[C], run: impl Fn(&C) -> R + Sync) -> Vec<R> {
    run_cells_on(cells, worker_count(cells.len()), run)
}

/// [`run_cells`] with an explicit worker count — the seam the banked
/// runners' determinism tests pin: results must be identical for any
/// `workers`, because cell order (not scheduling order) decides where
/// each result lands.
///
/// # Panics
///
/// Panics if `workers == 0` while there are cells to run.
pub fn run_cells_on<C: Sync, R: Send>(
    cells: &[C],
    workers: usize,
    run: impl Fn(&C) -> R + Sync,
) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if cells.is_empty() {
        return Vec::new();
    }
    assert!(workers > 0, "need at least one worker");
    let next = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<R>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(cells.len()))
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    *results[i].lock().expect("pool result lock poisoned") = Some(run(cell));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool cell panicked");
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool result lock poisoned")
                .expect("every cell ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_bounded_pool_preserves_order() {
        let cells: Vec<u64> = (0..100).collect();
        let out = run_cells(&cells, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(run_cells(&empty, |&c: &u64| c).is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_cells() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(3) <= 3);
        assert!(worker_count(10_000) >= 1);
        assert_eq!(worker_count(10_000).max(1), worker_count(10_000));
    }

    #[test]
    fn configured_parallelism_is_positive() {
        assert!(configured_parallelism() >= 1);
    }

    #[test]
    fn twl_threads_accepts_positive_integers() {
        assert_eq!(parse_twl_threads("1"), Ok(1));
        assert_eq!(parse_twl_threads("32"), Ok(32));
        assert_eq!(parse_twl_threads(" 8 "), Ok(8), "whitespace is tolerated");
    }

    #[test]
    fn twl_threads_rejects_zero_and_garbage_with_a_clear_error() {
        for bad in ["0", "-1", "four", "", "2.5", "1e3"] {
            let err = parse_twl_threads(bad).expect_err(bad);
            assert!(
                err.contains("TWL_THREADS") && err.contains("positive integer"),
                "error for {bad:?} must name the variable and the rule: {err}"
            );
            assert!(
                err.contains(&format!("{bad:?}")),
                "error must echo the offending value: {err}"
            );
        }
    }

    #[test]
    fn run_cells_on_is_worker_count_invariant() {
        let cells: Vec<u64> = (0..37).collect();
        let serial = run_cells_on(&cells, 1, |&c| c * c + 1);
        for workers in [2, 4, 16] {
            assert_eq!(serial, run_cells_on(&cells, workers, |&c| c * c + 1));
        }
    }
}
