//! The shared bounded worker pool.
//!
//! Sweeps ([`crate::attack_matrix`] and friends) and the `twl-service`
//! daemon both need "run N independent units of work on a bounded set
//! of threads". This module is the single place that decides how many
//! workers that is — so the `TWL_THREADS` override is honored in
//! exactly one spot — and provides the order-preserving fan-out used by
//! the sweep grids.

/// Worker threads the process should use for embarrassingly parallel
/// work: `TWL_THREADS` when set to a positive integer, the machine's
/// available parallelism otherwise.
///
/// # Examples
///
/// ```
/// let workers = twl_lifetime::pool::configured_parallelism();
/// assert!(workers >= 1);
/// ```
#[must_use]
pub fn configured_parallelism() -> usize {
    let configured = std::env::var("TWL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads a `cells`-unit workload uses:
/// [`configured_parallelism`], but never more than there are cells and
/// never zero.
#[must_use]
pub fn worker_count(cells: usize) -> usize {
    configured_parallelism().min(cells).max(1)
}

/// Runs the cells on a bounded worker pool, preserving input order in
/// the results. Each cell owns its state, so the parallelism is
/// trivially safe; workers pull cells from a shared atomic cursor, so
/// grids larger than the pool never oversubscribe the machine (override
/// the pool size with `TWL_THREADS`).
pub fn run_cells<C: Sync, R: Send>(cells: &[C], run: impl Fn(&C) -> R + Sync) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if cells.is_empty() {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<R>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count(cells.len()))
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    *results[i].lock().expect("pool result lock poisoned") = Some(run(cell));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool cell panicked");
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool result lock poisoned")
                .expect("every cell ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_bounded_pool_preserves_order() {
        let cells: Vec<u64> = (0..100).collect();
        let out = run_cells(&cells, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(run_cells(&empty, |&c: &u64| c).is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_cells() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(3) <= 3);
        assert!(worker_count(10_000) >= 1);
        assert_eq!(worker_count(10_000).max(1), worker_count(10_000));
    }

    #[test]
    fn configured_parallelism_is_positive() {
        assert!(configured_parallelism() >= 1);
    }
}
