//! Years calibration (DESIGN.md §3).

use serde::{Deserialize, Serialize};
use twl_pcm::PcmConfig;

/// Seconds per (non-leap) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 86_400.0;

/// The paper's effective write-traffic amplification constant.
///
/// Every row of Table 2 and the 6.6-year ideal of §5.2 satisfy
/// `ideal_years ≈ capacity × endurance / (bandwidth × 1.924)`; we adopt
/// the same constant so absolute years match the paper (the relative
/// results do not depend on it).
pub const IDEAL_CALIBRATION: f64 = 1.924;

/// Converts simulated write counts into paper-comparable years.
///
/// The scaled simulation reports a *capacity fraction* — device writes
/// absorbed before first failure, over the device's total endurance —
/// which is invariant under the joint page-count/endurance scaling.
/// Years are then `fraction × ideal_years`, where `ideal_years` is
/// computed for the nominal 32 GB device at this calibration's write
/// bandwidth.
///
/// # Examples
///
/// ```
/// use twl_lifetime::Calibration;
///
/// let cal = Calibration::attack_8gbps();
/// // §5.2: "an ideal lifetime of 6.6 years" at ~8 GB/s.
/// assert!((cal.ideal_years() - 6.6).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Write bandwidth the lifetime is measured against, in bytes/s.
    pub write_bandwidth_bytes_per_sec: f64,
}

impl Calibration {
    /// Calibration for a write bandwidth in MB/s (Table 2's unit).
    ///
    /// Table 2's "MBps" are binary megabytes — with MiB/s (and the
    /// [`IDEAL_CALIBRATION`] constant) every ideal-lifetime row
    /// reproduces to within 2 %, while decimal MB/s misses by ~5 %.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    #[must_use]
    pub fn for_bandwidth_mbps(mbps: f64) -> Self {
        assert!(mbps > 0.0, "bandwidth must be positive");
        Self {
            write_bandwidth_bytes_per_sec: mbps * 1024.0 * 1024.0,
        }
    }

    /// The §5.2 attack setting: a nonstop 8 GiB/s write stream, which
    /// yields the paper's "ideal lifetime of 6.6 years".
    #[must_use]
    pub fn attack_8gbps() -> Self {
        Self {
            write_bandwidth_bytes_per_sec: 8.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// Ideal lifetime in years at this bandwidth on the nominal device:
    /// the time to consume every page's endurance.
    #[must_use]
    pub fn ideal_years(&self) -> f64 {
        let nominal = PcmConfig::nominal_dac17();
        let total_bytes_endurance = nominal.capacity_bytes() as f64 * nominal.mean_endurance as f64;
        total_bytes_endurance
            / (self.write_bandwidth_bytes_per_sec * IDEAL_CALIBRATION * SECONDS_PER_YEAR)
    }

    /// Years corresponding to a capacity fraction (writes survived over
    /// total endurance).
    #[must_use]
    pub fn years(&self, capacity_fraction: f64) -> f64 {
        capacity_fraction * self.ideal_years()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ideal_years_reproduce() {
        // Spot-check Table 2 rows against the calibrated conversion.
        for (mbps, years) in [
            (121.0, 446.0),
            (271.0, 199.0),
            (1529.0, 35.0),
            (3309.0, 16.0),
            (538.0, 100.0),
        ] {
            let cal = Calibration::for_bandwidth_mbps(mbps);
            let rel = (cal.ideal_years() - years).abs() / years;
            // 2.5 % covers the paper's rounding (16.32 printed as 16).
            assert!(
                rel < 0.025,
                "{mbps} MB/s: {} vs paper {years}",
                cal.ideal_years()
            );
        }
    }

    #[test]
    fn attack_ideal_is_6_6_years() {
        let cal = Calibration::attack_8gbps();
        assert!(
            (cal.ideal_years() - 6.6).abs() < 0.2,
            "{}",
            cal.ideal_years()
        );
    }

    #[test]
    fn years_scale_linearly_with_fraction() {
        let cal = Calibration::attack_8gbps();
        assert!((cal.years(0.5) - cal.ideal_years() / 2.0).abs() < 1e-9);
        assert_eq!(cal.years(0.0), 0.0);
    }
}
