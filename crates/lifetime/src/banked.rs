//! Intra-cell parallelism: one lifetime run split across independent
//! wear-leveling bank regions.
//!
//! A real PCM module wear-levels in bounded hardware domains — remap
//! tables cover a bank, not the whole device (Table 1's 32-bank
//! layout). The matrix sweeps already exploit *inter*-cell parallelism
//! (many independent runs at once); this module adds the *intra*-cell
//! kind: one (scheme, attack) run over a large device is partitioned
//! into [`twl_pcm::PcmConfig::banks`] independent domains, each with
//! its own device region, scheme instance, write stream, and RNG seed,
//! fanned out on the shared [`crate::pool`] and folded back in bank
//! order.
//!
//! Determinism is the contract everything downstream leans on: the
//! partition is fixed by the config (never by the worker count), each
//! bank's seed is a pure function of `(pcm.seed, bank index)`, and the
//! merge is an ordered reduction over bank index — so a run under
//! `TWL_THREADS=32` is bit-identical to the same run under
//! `TWL_THREADS=1`. The merged result is an ordinary
//! [`LifetimeReport`], so the sweep, service, and fleet layers consume
//! banked runs without change.

use crate::sweep::calibration_for;
use crate::{
    build_scheme_spec, pool, run_attack, Calibration, LifetimeReport, SchemeSpec, SimLimits,
};
use serde::{Deserialize, Serialize};
use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
use twl_rng::SplitMix64;
use twl_wl_core::WlStats;
use twl_workloads::WorkloadSpec;

/// One banked run: the deterministic merge plus the per-bank detail it
/// was folded from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankedLifetimeReport {
    /// The ordered reduction over all banks — an ordinary report, so
    /// every existing consumer works unchanged.
    pub merged: LifetimeReport,
    /// Per-bank reports, in bank order.
    pub banks: Vec<LifetimeReport>,
}

/// Derives bank `bank`'s RNG seed from the device seed: draw `bank + 1`
/// of a [`SplitMix64`] stream, reached in O(1) by jump-ahead. Each
/// region gets an independent, well-mixed stream that depends only on
/// `(seed, bank)` — never on scheduling.
#[must_use]
fn bank_seed(seed: u64, bank: u64) -> u64 {
    let mut sm = SplitMix64::seed_from(seed);
    sm.jump_ahead(bank);
    sm.next_u64()
}

/// The per-bank geometry: `pcm` shrunk to one bank's pages with that
/// bank's derived seed.
///
/// # Panics
///
/// Panics if the page count does not split evenly into `pcm.banks`
/// regions of at least two (even) pages — pairing schemes bond pages
/// two by two, so a lopsided split would change scheme semantics
/// between the banked and whole-device geometries.
fn bank_config(pcm: &PcmConfig, bank: u64) -> PcmConfig {
    let banks = u64::from(pcm.banks.max(1));
    assert!(
        pcm.pages.is_multiple_of(banks),
        "banked run needs pages ({}) divisible by banks ({banks})",
        pcm.pages
    );
    let bank_pages = pcm.pages / banks;
    assert!(
        bank_pages >= 2 && bank_pages.is_multiple_of(2),
        "banked run needs at least two (even) pages per bank, got {bank_pages}"
    );
    PcmConfig {
        pages: bank_pages,
        seed: bank_seed(pcm.seed, bank),
        ..pcm.clone()
    }
}

/// What one bank contributes to the merge: its report plus the exact
/// counters and wear map the merged metrics are recomputed from.
struct BankOutcome {
    report: LifetimeReport,
    stats: WlStats,
    endurance_total: u128,
    wear: Vec<u64>,
}

/// Folds bank outcomes (in bank order) into one device-level report.
///
/// Aggregate semantics: every bank runs to its own first failure (or
/// the shared write budget), so sums of logical and device writes are
/// exact, the merged capacity fraction is the endurance-weighted mean
/// of the banks', ratios are recomputed from summed [`WlStats`]
/// counters (not averaged ratios), and the Gini coefficient is
/// computed over the concatenated wear maps. `failed_page` reports the
/// weakest bank's failure at its device-global frame address;
/// `completed` means every bank actually reached wear-out.
fn merge(outcomes: &[BankOutcome], bank_pages: u64, calibration: &Calibration) -> LifetimeReport {
    let mut stats = WlStats::new();
    let mut logical_writes = 0u64;
    let mut device_writes = 0u64;
    let mut endurance_total = 0u128;
    let mut wear = Vec::with_capacity(outcomes.len() * bank_pages as usize);
    let mut weakest: Option<(f64, u64, PhysicalPageAddr)> = None;
    for (bank, outcome) in outcomes.iter().enumerate() {
        stats.absorb(&outcome.stats);
        logical_writes += outcome.report.logical_writes;
        device_writes += outcome.report.device_writes;
        endurance_total += outcome.endurance_total;
        wear.extend_from_slice(&outcome.wear);
        if let Some(page) = outcome.report.failed_page {
            let frac = outcome.report.capacity_fraction;
            if weakest.is_none_or(|(f, _, _)| frac < f) {
                weakest = Some((frac, bank as u64, page));
            }
        }
    }
    let capacity_fraction = device_writes as f64 / endurance_total as f64;
    LifetimeReport {
        scheme: outcomes[0].report.scheme.clone(),
        workload: outcomes[0].report.workload.clone(),
        logical_writes,
        device_writes,
        failed_page: weakest
            .map(|(_, bank, page)| PhysicalPageAddr::new(bank * bank_pages + page.index())),
        completed: outcomes.iter().all(|o| o.report.completed),
        capacity_fraction,
        years: calibration.years(capacity_fraction),
        swap_per_write: stats.swap_per_write(),
        extra_write_ratio: stats.extra_write_ratio(),
        wear_gini: twl_pcm::wear_gini(&wear),
    }
}

fn run_banked_on(
    workers: usize,
    pcm: &PcmConfig,
    spec: &SchemeSpec,
    calibration: &Calibration,
    run_bank: impl Fn(&PcmConfig) -> BankOutcome + Sync,
) -> BankedLifetimeReport {
    let banks = u64::from(pcm.banks.max(1));
    let configs: Vec<PcmConfig> = (0..banks).map(|b| bank_config(pcm, b)).collect();
    let bank_pages = configs[0].pages;
    let _span = twl_telemetry::span!("banked_run", spec.to_string());
    let outcomes = pool::run_cells_on(&configs, workers, &run_bank);
    let merged = merge(&outcomes, bank_pages, calibration);
    BankedLifetimeReport {
        merged,
        banks: outcomes.into_iter().map(|o| o.report).collect(),
    }
}

/// Runs `spec` under any workload spec as [`PcmConfig::banks`]
/// independent bank regions on the shared worker pool and merges the
/// results in bank order. Bit-identical for any worker count. Each bank
/// builds the workload against its own geometry and derived seed, so
/// banks stay decorrelated (a trace replay starts each bank at its own
/// seed-rotated offset).
///
/// # Panics
///
/// Panics if the scheme or workload cannot be built for the bank
/// geometry or the page count does not split evenly into even-sized
/// banks.
#[must_use]
pub fn run_lifetime_banked(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    workload: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    run_lifetime_banked_on(
        pool::worker_count(pcm.banks.max(1) as usize),
        pcm,
        spec,
        workload,
        limits,
    )
}

/// [`run_lifetime_banked`] with an explicit worker count — the seam the
/// determinism tests pin (`workers = 1` versus `workers = n` must be
/// bit-identical).
///
/// # Panics
///
/// As [`run_lifetime_banked`], plus `workers == 0`.
#[must_use]
pub fn run_lifetime_banked_on(
    workers: usize,
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    workload: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    let spec = spec.into();
    let workload = workload.into();
    let calibration = calibration_for(&workload);
    run_banked_on(workers, pcm, &spec, &calibration, |cfg| {
        let mut device = PcmDevice::new(cfg);
        let mut scheme = build_scheme_spec(&spec, &device)
            .unwrap_or_else(|e| panic!("cannot build {spec} for a bank: {e}"));
        let pages = if workload.addresses_scheme_space() {
            scheme.page_count()
        } else {
            cfg.pages
        };
        let mut stream = workload
            .build(pages, cfg.seed)
            .unwrap_or_else(|e| panic!("cannot build workload for a bank: {e}"));
        let report = run_attack(
            scheme.as_mut(),
            &mut device,
            &mut stream,
            limits,
            &calibration,
        );
        BankOutcome {
            report,
            stats: *scheme.stats(),
            endurance_total: device.endurance_map().total(),
            wear: device.wear_counters().to_vec(),
        }
    })
}

/// [`run_lifetime_banked`] with the workload axis spelled as an attack
/// (kept for callers that predate [`WorkloadSpec`]).
///
/// # Panics
///
/// As [`run_lifetime_banked`].
#[must_use]
pub fn run_attack_banked(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    attack: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    run_lifetime_banked(pcm, spec, attack, limits)
}

/// [`run_attack_banked`] with an explicit worker count.
///
/// # Panics
///
/// As [`run_lifetime_banked`], plus `workers == 0`.
#[must_use]
pub fn run_attack_banked_on(
    workers: usize,
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    attack: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    run_lifetime_banked_on(workers, pcm, spec, attack, limits)
}

/// [`run_lifetime_banked`] with the workload axis spelled as a
/// benchmark. Each *bank* must be large enough for the benchmark's
/// locality ratio (≳1024 pages per bank, see
/// [`twl_workloads::ParsecBenchmark::workload`]).
///
/// # Panics
///
/// As [`run_lifetime_banked`].
#[must_use]
pub fn run_workload_banked(
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    bench: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    run_lifetime_banked(pcm, spec, bench, limits)
}

/// [`run_workload_banked`] with an explicit worker count.
///
/// # Panics
///
/// As [`run_lifetime_banked`], plus `workers == 0`.
#[must_use]
pub fn run_workload_banked_on(
    workers: usize,
    pcm: &PcmConfig,
    spec: impl Into<SchemeSpec>,
    bench: impl Into<WorkloadSpec>,
    limits: &SimLimits,
) -> BankedLifetimeReport {
    run_lifetime_banked_on(workers, pcm, spec, bench, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeKind;
    use twl_attacks::AttackKind;

    fn config(pages: u64, banks: u32) -> PcmConfig {
        let mut pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(2_000)
            .seed(42)
            .build()
            .expect("valid config");
        pcm.banks = banks;
        pcm
    }

    #[test]
    fn bank_seeds_are_distinct_and_pure() {
        let seeds: Vec<u64> = (0..8).map(|b| bank_seed(42, b)).collect();
        let again: Vec<u64> = (0..8).map(|b| bank_seed(42, b)).collect();
        assert_eq!(seeds, again);
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "bank seeds must differ");
            }
        }
    }

    #[test]
    fn merged_totals_are_bank_sums() {
        let pcm = config(64, 4);
        let limits = SimLimits::default();
        let banked = run_attack_banked_on(1, &pcm, SchemeKind::TwlSwp, AttackKind::Repeat, &limits);
        assert_eq!(banked.banks.len(), 4);
        assert_eq!(
            banked.merged.logical_writes,
            banked.banks.iter().map(|b| b.logical_writes).sum::<u64>()
        );
        assert_eq!(
            banked.merged.device_writes,
            banked.banks.iter().map(|b| b.device_writes).sum::<u64>()
        );
        assert!(banked.merged.completed);
        assert!(banked.merged.failed_page.is_some());
        assert!(banked.merged.capacity_fraction > 0.0);
        assert!((0.0..=1.0).contains(&banked.merged.wear_gini));
    }

    #[test]
    #[should_panic(expected = "divisible by banks")]
    fn lopsided_split_is_rejected() {
        let pcm = config(64, 3);
        let limits = SimLimits::default();
        let _ = run_attack_banked_on(1, &pcm, SchemeKind::Nowl, AttackKind::Repeat, &limits);
    }
}
