//! The hard guarantee of the horizon-paced degradation loop: for every
//! scheme and attack, the batched graceful-degradation driver produces
//! a report — curve points, first-fault / first-retirement /
//! spare-exhaustion device-write counts, everything — bit-identical to
//! the per-write reference loop that absorbs faults after every single
//! logical write.

use twl_attacks::{Attack, AttackKind};
use twl_faults::{CorrectionPolicy, FaultConfig};
use twl_lifetime::{
    build_scheme_spec_for_region, run_degradation_attack, run_degradation_attack_unbatched,
    run_degradation_workload, run_degradation_workload_unbatched, Calibration, DegradationEnd,
    DegradationReport, SchemeKind, SchemeSpec, SimLimits,
};
use twl_pcm::PcmConfig;
use twl_workloads::ParsecBenchmark;

/// Every scheme the factory can build (64 pages is a power of two, so
/// Security Refresh is included).
const SCHEMES: [SchemeKind; 7] = [
    SchemeKind::Nowl,
    SchemeKind::Sr,
    SchemeKind::Bwl,
    SchemeKind::Wrl,
    SchemeKind::StartGap,
    SchemeKind::TwlSwp,
    SchemeKind::TwlAp,
];

fn domain(endurance: u64, seed: u64) -> twl_faults::FaultDomain {
    let pcm = PcmConfig::builder()
        .pages(64)
        .mean_endurance(endurance)
        .seed(seed)
        .build()
        .expect("valid config");
    twl_faults::provision(
        &pcm,
        &FaultConfig {
            cell_groups_per_page: 8,
            group_sigma_fraction: 0.15,
            policy: CorrectionPolicy::Ecp { entries: 2 },
            spare_fraction: 0.1,
            seed: seed ^ 0x5eed,
        },
    )
    .expect("domain provisions")
}

fn attack_run(
    kind: SchemeKind,
    attack_kind: AttackKind,
    seed: u64,
    limits: &SimLimits,
    batched: bool,
) -> (DegradationReport, Vec<u64>) {
    let mut domain = domain(2_000, seed);
    let spec = SchemeSpec::new(kind);
    let mut scheme = build_scheme_spec_for_region(&spec, &domain.device, domain.data_pages)
        .expect("scheme builds");
    let mut attack = Attack::new(attack_kind, scheme.page_count(), seed);
    let calibration = Calibration::attack_8gbps();
    let report = if batched {
        run_degradation_attack(
            scheme.as_mut(),
            &mut domain,
            &mut attack,
            limits,
            &calibration,
        )
    } else {
        run_degradation_attack_unbatched(
            scheme.as_mut(),
            &mut domain,
            &mut attack,
            limits,
            &calibration,
        )
    };
    (report, domain.device.wear_counters().to_vec())
}

/// Repeat drives pages to wear-out fastest and exercises the largest
/// batches — the path where a mid-batch crossing would hide if the
/// horizon pacing were wrong.
#[test]
fn repeat_attack_to_spare_exhaustion_is_bit_identical() {
    let limits = SimLimits::default();
    for kind in SCHEMES {
        for seed in [0, 7] {
            let (batched, wear_b) = attack_run(kind, AttackKind::Repeat, seed, &limits, true);
            let (reference, wear_u) = attack_run(kind, AttackKind::Repeat, seed, &limits, false);
            assert_eq!(batched, reference, "{kind:?} seed {seed} report diverged");
            assert_eq!(wear_b, wear_u, "{kind:?} seed {seed} wear map diverged");
            // The run must actually cover the interesting events —
            // faults corrected, pages retired, pool exhausted — or this
            // test proves nothing about them.
            assert_eq!(batched.end, DegradationEnd::SpareExhausted, "{kind:?}");
            assert!(batched.first_fault_device_writes.is_some(), "{kind:?}");
            assert!(batched.retired_pages > 0, "{kind:?}");
            assert!(batched.curve.len() > 1, "{kind:?}");
        }
    }
}

/// Random and inconsistent attacks produce short runs and exercise the
/// feedback path; the horizon still paces every absorb exactly.
#[test]
fn feedback_attacks_are_bit_identical() {
    let limits = SimLimits {
        max_logical_writes: 40_000,
    };
    for kind in [SchemeKind::TwlSwp, SchemeKind::Bwl, SchemeKind::StartGap] {
        for attack_kind in [AttackKind::Random, AttackKind::Inconsistent] {
            let (batched, wear_b) = attack_run(kind, attack_kind, 3, &limits, true);
            let (reference, wear_u) = attack_run(kind, attack_kind, 3, &limits, false);
            assert_eq!(batched, reference, "{kind:?}/{attack_kind:?} diverged");
            assert_eq!(wear_b, wear_u, "{kind:?}/{attack_kind:?} wear diverged");
        }
    }
}

/// Synthetic workloads declare runs of one write, so the batched loop
/// degenerates gracefully — and still absorbs at identical points.
#[test]
fn workload_degradation_is_bit_identical() {
    let limits = SimLimits {
        max_logical_writes: 30_000,
    };
    let calibration = Calibration::attack_8gbps();
    for kind in [SchemeKind::TwlSwp, SchemeKind::Nowl] {
        let run = |batched: bool| {
            let mut domain = domain(1_000, 5);
            let spec = SchemeSpec::new(kind);
            let mut scheme = build_scheme_spec_for_region(&spec, &domain.device, domain.data_pages)
                .expect("scheme builds");
            let mut workload = ParsecBenchmark::Canneal.workload(scheme.page_count(), 5);
            let report = if batched {
                run_degradation_workload(
                    scheme.as_mut(),
                    &mut domain,
                    &mut workload,
                    "canneal",
                    &limits,
                    &calibration,
                )
            } else {
                run_degradation_workload_unbatched(
                    scheme.as_mut(),
                    &mut domain,
                    &mut workload,
                    "canneal",
                    &limits,
                    &calibration,
                )
            };
            (report, domain.device.wear_counters().to_vec())
        };
        let (batched, wear_b) = run(true);
        let (reference, wear_u) = run(false);
        assert_eq!(batched, reference, "{kind:?} workload report diverged");
        assert_eq!(wear_b, wear_u, "{kind:?} workload wear diverged");
    }
}
