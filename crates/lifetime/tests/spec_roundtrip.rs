//! Round-trip properties of the scheme-spec grammar: any canonical
//! [`SchemeSpec`] survives `label → parse` and `to_json → from_json`
//! without loss, and kind labels survive `Display → FromStr` in any
//! case. These are the contracts the service wire format, checkpoint
//! files, and `twl-ctl --schemes` all lean on.

use proptest::prelude::*;
use twl_core::PairingStrategy;
use twl_lifetime::{
    BwlParams, SchemeKind, SchemeParams, SchemeSpec, SrParams, StartGapParams, TwlParams,
};

fn kind_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Nowl),
        Just(SchemeKind::Sr),
        Just(SchemeKind::Bwl),
        Just(SchemeKind::Wrl),
        Just(SchemeKind::StartGap),
        Just(SchemeKind::TwlSwp),
        Just(SchemeKind::TwlAp),
    ]
}

fn pairing_strategy() -> impl Strategy<Value = PairingStrategy> {
    prop_oneof![
        Just(PairingStrategy::StrongWeak),
        Just(PairingStrategy::Adjacent),
        (0u64..1000).prop_map(|seed| PairingStrategy::Random { seed }),
    ]
}

/// Makes any strategy optional: half the draws are `None`.
fn opt<S>(inner: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), inner.prop_map(Some)]
}

fn twl_spec_strategy(kind: SchemeKind) -> impl Strategy<Value = SchemeSpec> {
    (
        opt(1u64..10_000),
        opt(prop_oneof![(1u64..100_000).boxed(), Just(u64::MAX).boxed()]),
        opt(pairing_strategy()),
        opt(any::<bool>()),
        opt(any::<bool>()),
    )
        .prop_map(
            move |(ti, ip, pairing, optimized_swap, dynamic_endurance)| {
                SchemeSpec {
                    kind,
                    params: SchemeParams::Twl(TwlParams {
                        toss_up_interval: ti,
                        inter_pair_swap_interval: ip,
                        pairing,
                        optimized_swap,
                        dynamic_endurance,
                    }),
                }
                .canonical()
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = SchemeSpec> {
    prop_oneof![
        kind_strategy().prop_map(SchemeSpec::new),
        twl_spec_strategy(SchemeKind::TwlSwp),
        twl_spec_strategy(SchemeKind::TwlAp),
        (opt(1u64..1_000_000), opt(1u64..100), opt(any::<bool>())).prop_map(|(e, t, r)| {
            SchemeSpec {
                kind: SchemeKind::Bwl,
                params: SchemeParams::Bwl(BwlParams {
                    epoch_writes: e,
                    initial_hot_threshold: t,
                    band_repair: r,
                }),
            }
            .canonical()
        }),
        (opt(1u64..100_000), opt(1u64..100_000)).prop_map(|(inner, outer)| {
            SchemeSpec {
                kind: SchemeKind::Sr,
                params: SchemeParams::Sr(SrParams {
                    inner_interval: inner,
                    outer_interval: outer,
                }),
            }
            .canonical()
        }),
        opt(1u64..100_000).prop_map(|gap| {
            SchemeSpec {
                kind: SchemeKind::StartGap,
                params: SchemeParams::StartGap(StartGapParams { gap_interval: gap }),
            }
            .canonical()
        }),
    ]
}

proptest! {
    /// `label()` is parseable and parses back to the same spec.
    #[test]
    fn spec_labels_round_trip(spec in spec_strategy()) {
        let label = spec.label();
        let parsed: SchemeSpec = label
            .parse()
            .unwrap_or_else(|e| panic!("label `{label}` does not parse: {e}"));
        prop_assert_eq!(parsed, spec);
        // Parsing is idempotent: the reparsed spec renders the same label.
        prop_assert_eq!(parsed.label(), label);
    }

    /// The JSON codec is lossless, including through the text form.
    #[test]
    fn spec_json_round_trips(spec in spec_strategy()) {
        let encoded = spec.to_json();
        let decoded = SchemeSpec::from_json(&encoded)
            .unwrap_or_else(|e| panic!("{spec} does not decode from its own JSON: {e}"));
        prop_assert_eq!(decoded, spec);
        let text = encoded.to_compact();
        let reparsed = twl_telemetry::json::Json::parse(&text)
            .unwrap_or_else(|e| panic!("compact JSON for {spec} does not reparse: {e}"));
        let redecoded = SchemeSpec::from_json(&reparsed)
            .unwrap_or_else(|e| panic!("{spec} does not decode through text: {e}"));
        prop_assert_eq!(redecoded, spec);
    }

    /// Kind labels round-trip case-insensitively.
    #[test]
    fn kind_labels_round_trip(kind in kind_strategy()) {
        prop_assert_eq!(kind.label().parse::<SchemeKind>(), Ok(kind));
        prop_assert_eq!(kind.label().to_uppercase().parse::<SchemeKind>(), Ok(kind));
        prop_assert_eq!(kind.label().to_lowercase().parse::<SchemeKind>(), Ok(kind));
    }
}
