//! The banked runners' determinism contract: splitting one run into
//! bank domains and fanning it out on N workers is bit-identical to
//! running the same banks serially — the partition and the merge depend
//! on the config, never on scheduling.

use twl_attacks::AttackKind;
use twl_lifetime::{
    run_attack_banked_on, run_lifetime_banked_on, run_workload_banked_on, SchemeKind, SimLimits,
};
use twl_pcm::PcmConfig;
use twl_workloads::ParsecBenchmark;

fn config(pages: u64, banks: u32) -> PcmConfig {
    let mut pcm = PcmConfig::builder()
        .pages(pages)
        .mean_endurance(2_000)
        .seed(9)
        .build()
        .expect("valid config");
    pcm.banks = banks;
    pcm
}

/// The acceptance gate for intra-cell parallelism: the parallel path is
/// bit-identical to the single-thread run for the same seed, for every
/// scheme the factory can build.
#[test]
fn parallel_attack_runs_match_serial_bit_for_bit() {
    let pcm = config(256, 4);
    let limits = SimLimits::default();
    for kind in [
        SchemeKind::Nowl,
        SchemeKind::Sr,
        SchemeKind::Bwl,
        SchemeKind::Wrl,
        SchemeKind::StartGap,
        SchemeKind::TwlSwp,
        SchemeKind::TwlAp,
    ] {
        let serial = run_attack_banked_on(1, &pcm, kind, AttackKind::Repeat, &limits);
        for workers in [2, 4, 8] {
            let parallel = run_attack_banked_on(workers, &pcm, kind, AttackKind::Repeat, &limits);
            assert_eq!(serial, parallel, "{kind:?} diverged at {workers} workers");
        }
    }
}

/// Feedback attacks (address choice depends on observed latency) stay
/// deterministic too: feedback never crosses bank boundaries.
#[test]
fn parallel_feedback_attack_matches_serial() {
    let pcm = config(128, 2);
    let limits = SimLimits::default();
    let serial = run_attack_banked_on(1, &pcm, SchemeKind::TwlSwp, AttackKind::Random, &limits);
    let parallel = run_attack_banked_on(4, &pcm, SchemeKind::TwlSwp, AttackKind::Random, &limits);
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_workload_runs_match_serial_bit_for_bit() {
    // Synthetic workloads need ≳1024 pages to fit the paper's locality
    // ratios, and the constraint applies per bank.
    let pcm = config(2048, 2);
    let limits = SimLimits::default();
    for bench in [ParsecBenchmark::Canneal, ParsecBenchmark::Vips] {
        let serial = run_workload_banked_on(1, &pcm, SchemeKind::TwlSwp, bench, &limits);
        let parallel = run_workload_banked_on(4, &pcm, SchemeKind::TwlSwp, bench, &limits);
        assert_eq!(serial, parallel, "{bench:?} diverged");
    }
}

/// Changing the bank count changes the partition (and so the numbers),
/// but each partition is itself deterministic — the bank count is part
/// of the experiment, never an execution detail.
#[test]
fn bank_count_is_part_of_the_experiment() {
    let limits = SimLimits::default();
    let two = run_attack_banked_on(
        1,
        &config(128, 2),
        SchemeKind::Bwl,
        AttackKind::Repeat,
        &limits,
    );
    let four = run_attack_banked_on(
        1,
        &config(128, 4),
        SchemeKind::Bwl,
        AttackKind::Repeat,
        &limits,
    );
    assert_eq!(two.banks.len(), 2);
    assert_eq!(four.banks.len(), 4);
    let again = run_attack_banked_on(
        3,
        &config(128, 4),
        SchemeKind::Bwl,
        AttackKind::Repeat,
        &limits,
    );
    assert_eq!(four, again);
}

/// Trace replays hold the same contract: each bank replays the whole
/// capture against its own domain, and the fan-out is bit-identical
/// for any worker count.
#[test]
fn parallel_trace_replays_match_serial_bit_for_bit() {
    use twl_pcm::LogicalPageAddr;
    use twl_workloads::{write_trace, MemCmd, WorkloadSpec};

    let dir = std::env::temp_dir().join(format!("twl-banked-id-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("capture.trace");
    let mut cmds = Vec::new();
    for i in 0..50u64 {
        cmds.push(MemCmd::write(LogicalPageAddr::new(3)));
        cmds.push(MemCmd::write(LogicalPageAddr::new(i * 7)));
        cmds.push(MemCmd::read(LogicalPageAddr::new(i)));
    }
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &cmds).expect("encode trace");
    std::fs::write(&path, bytes).expect("write trace");

    let workload: WorkloadSpec = format!("TRACE[path={},seed=11]", path.display())
        .parse()
        .expect("trace label parses");
    let pcm = config(256, 4);
    let limits = SimLimits::default();
    let serial = run_lifetime_banked_on(1, &pcm, SchemeKind::TwlSwp, &workload, &limits);
    for workers in [2, 4, 8] {
        let parallel =
            run_lifetime_banked_on(workers, &pcm, SchemeKind::TwlSwp, &workload, &limits);
        assert_eq!(
            serial, parallel,
            "trace replay diverged at {workers} workers"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
