//! The hard guarantee of the event-skipping fast path: for every
//! scheme, attack, and seed, the batched fail-stop driver produces a
//! report and a device wear map bit-identical to the per-write
//! reference loop.

use twl_attacks::{Attack, AttackKind};
use twl_lifetime::{
    build_scheme_spec, run_attack, run_attack_unbatched, run_workload, run_workload_unbatched,
    Calibration, LifetimeReport, SchemeKind, SchemeSpec, SimLimits,
};
use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
use twl_workloads::{write_trace, MemCmd, ParsecBenchmark, WorkloadSpec};

/// Every scheme the factory can build (64 pages is a power of two, so
/// Security Refresh is included).
const SCHEMES: [SchemeKind; 7] = [
    SchemeKind::Nowl,
    SchemeKind::Sr,
    SchemeKind::Bwl,
    SchemeKind::Wrl,
    SchemeKind::StartGap,
    SchemeKind::TwlSwp,
    SchemeKind::TwlAp,
];

/// Repeat exercises the long-run fast path, scan and random the
/// run-length-1 degradation, and inconsistent the feedback loop.
const ATTACKS: [AttackKind; 4] = [
    AttackKind::Repeat,
    AttackKind::Scan,
    AttackKind::Random,
    AttackKind::Inconsistent,
];

fn attack_run(
    spec: impl Into<SchemeSpec>,
    attack_kind: AttackKind,
    seed: u64,
    batched: bool,
) -> (LifetimeReport, Vec<u64>) {
    let pcm = PcmConfig::builder()
        .pages(64)
        .mean_endurance(2_000)
        .seed(seed)
        .build()
        .expect("valid config");
    let mut device = PcmDevice::new(&pcm);
    let mut scheme = build_scheme_spec(&spec.into(), &device).expect("scheme builds");
    let mut attack = Attack::new(attack_kind, scheme.page_count(), seed);
    let limits = SimLimits::default();
    let calibration = Calibration::attack_8gbps();
    let report = if batched {
        run_attack(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    } else {
        run_attack_unbatched(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    };
    (report, device.wear_counters().to_vec())
}

#[test]
fn batched_attacks_are_bit_identical_to_per_write_runs() {
    for kind in SCHEMES {
        for attack_kind in ATTACKS {
            for seed in [1u64, 2, 3] {
                let (batched, wear_batched) = attack_run(kind, attack_kind, seed, true);
                let (scalar, wear_scalar) = attack_run(kind, attack_kind, seed, false);
                assert_eq!(batched, scalar, "{kind} / {attack_kind} / seed {seed}");
                assert_eq!(
                    wear_batched, wear_scalar,
                    "wear map: {kind} / {attack_kind} / seed {seed}"
                );
            }
        }
    }
}

#[test]
fn batched_attacks_stay_bit_identical_off_the_default_config() {
    // Non-default specs must hold the same equivalence: the fast-path
    // boundaries (toss-up interval, inter-pair interval, swap mode)
    // move with the overrides, and the relabeling wrapper must not
    // perturb them.
    // The SR entries pin its closed-form `write_batch`: odd intervals
    // land refresh events off any power-of-two stride, and a large
    // outer interval exercises long quiet stretches on one level while
    // the other keeps firing.
    const SPECS: [&str; 7] = [
        "TWL_swp[ti=8]",
        "TWL_swp[pair=rnd:11]",
        "TWL_swp[swap=3]",
        "BWL[epoch=600,repair=0]",
        "StartGap[gap=37]",
        "SR[inner=5,outer=9]",
        "SR[inner=3,outer=128]",
    ];
    for label in SPECS {
        let spec: SchemeSpec = label.parse().expect("spec label parses");
        for attack_kind in ATTACKS {
            for seed in [1u64, 2] {
                let (batched, wear_batched) = attack_run(spec, attack_kind, seed, true);
                let (scalar, wear_scalar) = attack_run(spec, attack_kind, seed, false);
                assert_eq!(
                    batched.scheme,
                    spec.label(),
                    "report carries the spec label"
                );
                assert_eq!(batched, scalar, "{label} / {attack_kind} / seed {seed}");
                assert_eq!(
                    wear_batched, wear_scalar,
                    "wear map: {label} / {attack_kind} / seed {seed}"
                );
            }
        }
    }
}

#[test]
fn batched_workload_runs_are_bit_identical_too() {
    // Workloads always declare runs of 1; the batched driver must still
    // reproduce the reference loop exactly through write_batch.
    for kind in [SchemeKind::Nowl, SchemeKind::StartGap, SchemeKind::TwlSwp] {
        let bench = ParsecBenchmark::Canneal;
        let mut runs = Vec::new();
        for batched in [true, false] {
            let pcm = PcmConfig::builder()
                .pages(64)
                .mean_endurance(2_000)
                .seed(5)
                .build()
                .expect("valid config");
            let mut device = PcmDevice::new(&pcm);
            let mut scheme =
                build_scheme_spec(&SchemeSpec::new(kind), &device).expect("scheme builds");
            let mut workload = bench.workload(scheme.page_count(), 5);
            let limits = SimLimits::default();
            let calibration = Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps());
            let report = if batched {
                run_workload(
                    scheme.as_mut(),
                    &mut device,
                    &mut workload,
                    bench.name(),
                    &limits,
                    &calibration,
                )
            } else {
                run_workload_unbatched(
                    scheme.as_mut(),
                    &mut device,
                    &mut workload,
                    bench.name(),
                    &limits,
                    &calibration,
                )
            };
            runs.push((report, device.wear_counters().to_vec()));
        }
        assert_eq!(runs[0], runs[1], "{kind} / canneal");
    }
}

#[test]
fn batched_trace_replays_are_bit_identical_too() {
    // Captured traces mix long same-page runs (batchable) with
    // single-write runs and reads the replay must skip; the batched
    // driver must reproduce the per-write reference loop exactly
    // through the run-length declarations of `TraceWorkload`.
    let dir = std::env::temp_dir().join(format!("twl-batch-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("capture.trace");
    let mut cmds = Vec::new();
    for i in 0..40u64 {
        cmds.push(MemCmd::write(LogicalPageAddr::new(7)));
        cmds.push(MemCmd::write(LogicalPageAddr::new(7)));
        cmds.push(MemCmd::read(LogicalPageAddr::new(i % 64)));
        cmds.push(MemCmd::write(LogicalPageAddr::new(i * 3)));
    }
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &cmds).expect("encode trace");
    std::fs::write(&path, bytes).expect("write trace");

    let label = format!("TRACE[path={},seed=5]", path.display());
    let workload: WorkloadSpec = label.parse().expect("trace label parses");
    for kind in [SchemeKind::Nowl, SchemeKind::Sr, SchemeKind::TwlSwp] {
        let mut runs = Vec::new();
        for batched in [true, false] {
            let pcm = PcmConfig::builder()
                .pages(64)
                .mean_endurance(2_000)
                .seed(9)
                .build()
                .expect("valid config");
            let mut device = PcmDevice::new(&pcm);
            let mut scheme =
                build_scheme_spec(&SchemeSpec::new(kind), &device).expect("scheme builds");
            let mut stream = workload
                .build(scheme.page_count(), pcm.seed)
                .expect("trace workload builds");
            let limits = SimLimits::default();
            let calibration = Calibration::attack_8gbps();
            let report = if batched {
                run_attack(
                    scheme.as_mut(),
                    &mut device,
                    &mut stream,
                    &limits,
                    &calibration,
                )
            } else {
                run_attack_unbatched(
                    scheme.as_mut(),
                    &mut device,
                    &mut stream,
                    &limits,
                    &calibration,
                )
            };
            runs.push((report, device.wear_counters().to_vec()));
        }
        assert_eq!(runs[0], runs[1], "{kind} / trace replay");
        assert_eq!(runs[0].0.scheme, SchemeSpec::new(kind).label());
    }
    std::fs::remove_dir_all(&dir).ok();
}
