#![warn(missing_docs)]

//! `twl-blockdev`: a network-block-device frontend for the simulated
//! PCM — real filesystem traffic through the paper's wear pipeline.
//!
//! Two binaries and the library behind them:
//!
//! * **`twl-blockd`** — a std-only userspace NBD server. The data port
//!   speaks the newstyle-fixed handshake and the `READ`/`WRITE`/
//!   `FLUSH`/`TRIM`/`DISC` transmission subset (the kernel's
//!   `nbd-client` can attach it as `/dev/nbd0`); a second port speaks
//!   `twl-wire/v1`, so `twl-ctl metrics` and `twl-top` work against it
//!   unmodified. Block bytes live in a RAM [`BlockStore`]; every page a
//!   write touches becomes a logical write through a configurable
//!   wear-leveling scheme on a fault-provisioned device, and spare-pool
//!   exhaustion surfaces to the client as `ENOSPC`.
//! * **`twl-blk`** — the client CLI: drive deterministic mixed traffic
//!   at a daemon, or replay a captured trace offline and print the
//!   wear state it must reproduce.
//!
//! The pieces, bottom-up:
//!
//! * [`nbd`] — the wire subset: codec, handshake halves, errnos.
//! * [`store`] — the byte store with atomic snapshot/restore.
//! * [`mapping`] — block→page geometry (`pages_touched`).
//! * [`gateway`] — scheme + fault engine + capture; deterministic
//!   replay is both the audit trail and the restart path.
//! * [`server`] — the daemon: both listeners, persistence, shutdown.
//! * [`client`] — the in-process client and the shared traffic driver.

pub mod client;
pub mod gateway;
pub mod mapping;
pub mod nbd;
pub mod server;
pub mod store;

pub use client::{drive_mixed, DriveReport, NbdClient};
pub use gateway::{GatewayConfig, GatewayError, GatewayProbe, WearGateway};
pub use mapping::BlockGeometry;
pub use nbd::NbdError;
pub use server::{publish_probe, BlockServer, BlockdevConfig, ShutdownHandle, META_SCHEMA};
pub use store::{BlockStore, OutOfRange};
