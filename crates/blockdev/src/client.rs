//! An in-process NBD client, plus the deterministic mixed-traffic
//! driver the integration tests and the CI smoke job share.
//!
//! The client speaks exactly the subset [`crate::nbd`] serves:
//! newstyle-fixed handshake with `NO_ZEROES`, `EXPORT_NAME` to enter
//! transmission, then synchronous request/simple-reply exchanges.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use twl_rng::{SimRng, Xoshiro256StarStar};

use crate::nbd::{
    self, read_u16, read_u32, read_u64, NbdError, CMD_DISC, CMD_FLUSH, CMD_READ, CMD_TRIM,
    CMD_WRITE,
};

/// A synchronous NBD client over one TCP connection.
pub struct NbdClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    export_bytes: u64,
    transmission_flags: u16,
    next_handle: u64,
}

impl NbdClient {
    /// Connects and completes the newstyle-fixed handshake, entering
    /// transmission on the server's (single) export.
    ///
    /// # Errors
    ///
    /// [`NbdError::Protocol`] when the peer is not a fixed-newstyle NBD
    /// server; transport errors pass through.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NbdError> {
        let stream = TcpStream::connect(addr).map_err(NbdError::Io)?;
        let _ = stream.set_nodelay(true);
        let reader_half = stream.try_clone().map_err(NbdError::Io)?;
        let mut reader = BufReader::new(reader_half);
        let mut writer = BufWriter::new(stream);
        if read_u64(&mut reader)? != nbd::NBDMAGIC {
            return Err(NbdError::Protocol("bad server magic".into()));
        }
        if read_u64(&mut reader)? != nbd::IHAVEOPT {
            return Err(NbdError::Protocol("server is not newstyle".into()));
        }
        let handshake_flags = read_u16(&mut reader)?;
        if handshake_flags & nbd::FLAG_FIXED_NEWSTYLE == 0 {
            return Err(NbdError::Protocol("server is not fixed-newstyle".into()));
        }
        let no_zeroes = handshake_flags & nbd::FLAG_NO_ZEROES != 0;
        let client_flags = u32::from(nbd::FLAG_FIXED_NEWSTYLE)
            | if no_zeroes {
                u32::from(nbd::FLAG_NO_ZEROES)
            } else {
                0
            };
        writer
            .write_all(&client_flags.to_be_bytes())
            .map_err(NbdError::Io)?;
        // EXPORT_NAME with the default (empty) export enters
        // transmission directly; there is no option reply to parse.
        writer
            .write_all(&nbd::IHAVEOPT.to_be_bytes())
            .map_err(NbdError::Io)?;
        writer
            .write_all(&nbd::OPT_EXPORT_NAME.to_be_bytes())
            .map_err(NbdError::Io)?;
        writer
            .write_all(&0u32.to_be_bytes())
            .map_err(NbdError::Io)?;
        writer.flush().map_err(NbdError::Io)?;
        let export_bytes = read_u64(&mut reader)?;
        let transmission_flags = read_u16(&mut reader)?;
        if !no_zeroes {
            let mut pad = [0u8; 124];
            reader.read_exact(&mut pad).map_err(NbdError::from)?;
        }
        Ok(Self {
            reader,
            writer,
            export_bytes,
            transmission_flags,
            next_handle: 1,
        })
    }

    /// The export size the server announced.
    #[must_use]
    pub fn export_bytes(&self) -> u64 {
        self.export_bytes
    }

    /// The transmission flags the server announced.
    #[must_use]
    pub fn transmission_flags(&self) -> u16 {
        self.transmission_flags
    }

    fn request(
        &mut self,
        cmd: u16,
        offset: u64,
        len: u32,
        payload: &[u8],
    ) -> Result<u64, NbdError> {
        let handle = self.next_handle;
        self.next_handle += 1;
        let w = &mut self.writer;
        w.write_all(&nbd::REQUEST_MAGIC.to_be_bytes())
            .map_err(NbdError::Io)?;
        w.write_all(&0u16.to_be_bytes()).map_err(NbdError::Io)?;
        w.write_all(&cmd.to_be_bytes()).map_err(NbdError::Io)?;
        w.write_all(&handle.to_be_bytes()).map_err(NbdError::Io)?;
        w.write_all(&offset.to_be_bytes()).map_err(NbdError::Io)?;
        w.write_all(&len.to_be_bytes()).map_err(NbdError::Io)?;
        w.write_all(payload).map_err(NbdError::Io)?;
        w.flush().map_err(NbdError::Io)?;
        Ok(handle)
    }

    fn reply(&mut self, handle: u64, read_len: usize) -> Result<Vec<u8>, NbdError> {
        if read_u32(&mut self.reader)? != nbd::SIMPLE_REPLY_MAGIC {
            return Err(NbdError::Protocol("bad reply magic".into()));
        }
        let errno = read_u32(&mut self.reader)?;
        let got = read_u64(&mut self.reader)?;
        if got != handle {
            return Err(NbdError::Protocol(format!(
                "reply handle {got} for request {handle}"
            )));
        }
        if errno != 0 {
            return Err(NbdError::Server { errno });
        }
        let mut data = vec![0u8; read_len];
        self.reader.read_exact(&mut data).map_err(NbdError::from)?;
        Ok(data)
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`NbdError::Server`] carries the server's errno; protocol and
    /// transport errors pass through.
    pub fn read(&mut self, offset: u64, len: u32) -> Result<Vec<u8>, NbdError> {
        let handle = self.request(CMD_READ, offset, len, &[])?;
        self.reply(handle, len as usize)
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// As [`NbdClient::read`]; `ENOSPC` means the simulated device hit
    /// end of life.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), NbdError> {
        let len = u32::try_from(data.len())
            .map_err(|_| NbdError::Protocol("write longer than u32".into()))?;
        let handle = self.request(CMD_WRITE, offset, len, data)?;
        self.reply(handle, 0).map(|_| ())
    }

    /// Discards a range (reads back as zeroes).
    ///
    /// # Errors
    ///
    /// As [`NbdClient::read`].
    pub fn trim(&mut self, offset: u64, len: u32) -> Result<(), NbdError> {
        let handle = self.request(CMD_TRIM, offset, len, &[])?;
        self.reply(handle, 0).map(|_| ())
    }

    /// Flushes the export to stable storage (persists the daemon's
    /// state dir, when it has one).
    ///
    /// # Errors
    ///
    /// As [`NbdClient::read`].
    pub fn flush(&mut self) -> Result<(), NbdError> {
        let handle = self.request(CMD_FLUSH, 0, 0, &[])?;
        self.reply(handle, 0).map(|_| ())
    }

    /// Sends `DISC` and drops the connection. `DISC` has no reply.
    ///
    /// # Errors
    ///
    /// Transport errors on the final send.
    pub fn disconnect(mut self) -> Result<(), NbdError> {
        self.request(CMD_DISC, 0, 0, &[])?;
        Ok(())
    }
}

/// What a [`drive_mixed`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Writes acknowledged by the server.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Trims served.
    pub trims: u64,
    /// Flushes served.
    pub flushes: u64,
    /// Writes refused with `ENOSPC` (end of life).
    pub enospc: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
}

/// Drives `ops` operations of deterministic mixed traffic — roughly
/// 50 % writes, 30 % reads, 10 % trims, 10 % flushes, all 512-aligned —
/// through the client. The stream is a pure function of `seed` and the
/// export size, which is what lets the CI smoke job and the tests
/// re-derive the expected wear state by replaying the daemon's capture.
///
/// `ENOSPC` on a write is counted, not fatal: wearing the device out
/// mid-drive is a legitimate outcome for small exports.
///
/// # Errors
///
/// Any non-`ENOSPC` server error, or a protocol/transport failure.
pub fn drive_mixed(client: &mut NbdClient, ops: u64, seed: u64) -> Result<DriveReport, NbdError> {
    const ALIGN: u64 = 512;
    let slots = client.export_bytes() / ALIGN;
    assert!(slots >= 8, "export too small to drive");
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let mut report = DriveReport::default();
    for _ in 0..ops {
        let kind = rng.next_bounded(10);
        let slot = rng.next_bounded(slots);
        let max_len = (slots - slot).min(8);
        let len = (rng.next_bounded(max_len) + 1) * ALIGN;
        let offset = slot * ALIGN;
        match kind {
            0..=4 => {
                let mut data = vec![0u8; usize::try_from(len).expect("small io")];
                for chunk in data.chunks_mut(8) {
                    let word = rng.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&word[..chunk.len()]);
                }
                match client.write(offset, &data) {
                    Ok(()) => {
                        report.writes += 1;
                        report.bytes_written += len;
                    }
                    Err(NbdError::Server { errno }) if errno == nbd::ENOSPC => {
                        report.enospc += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
            5..=7 => {
                client.read(offset, u32::try_from(len).expect("small io"))?;
                report.reads += 1;
            }
            8 => {
                client.trim(offset, u32::try_from(len).expect("small io"))?;
                report.trims += 1;
            }
            _ => {
                client.flush()?;
                report.flushes += 1;
            }
        }
    }
    Ok(report)
}
