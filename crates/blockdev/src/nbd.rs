//! The NBD wire subset `twl-blockd` speaks: the newstyle-fixed
//! handshake and the simple-reply transmission phase.
//!
//! Implemented from the protocol document shipped with nbd (the
//! `doc/proto.md` of the reference implementation):
//!
//! * **Handshake (newstyle-fixed):** server greets with `NBDMAGIC`,
//!   `IHAVEOPT`, and 16-bit handshake flags; the client answers with
//!   32-bit client flags and then haggles options. `twl-blockd` serves
//!   `NBD_OPT_EXPORT_NAME` (enter transmission) and `NBD_OPT_ABORT`
//!   (acknowledged close); every other option gets
//!   `NBD_REP_ERR_UNSUP`, which is exactly what lets fixed-newstyle
//!   clients (including the kernel's `nbd-client`) fall back to
//!   `EXPORT_NAME`.
//! * **Transmission:** 28-byte requests (`READ`/`WRITE`/`FLUSH`/
//!   `TRIM`/`DISC`), 16-byte simple replies carrying POSIX errno
//!   values. Structured replies are not offered.
//!
//! Robustness contract (shared with the `twl-wire` framing): a bad
//! magic, truncated header, or oversized declared payload is a
//! protocol error that costs that connection only — and the oversized
//! check runs *before* the payload buffer is allocated, via the same
//! [`twl_service::net::guard_frame_len`] guard the JSON daemons use.

use std::fmt;
use std::io::{self, Read, Write};

use twl_service::net::guard_frame_len;

/// `"NBDMAGIC"`, the first 8 bytes a server sends.
pub const NBDMAGIC: u64 = 0x4e42_444d_4147_4943;
/// `"IHAVEOPT"`, the newstyle handshake magic and option-request magic.
pub const IHAVEOPT: u64 = 0x4948_4156_454f_5054;
/// Magic leading every option reply.
pub const OPT_REPLY_MAGIC: u64 = 0x0003_e889_0455_65a9;
/// Magic leading every transmission request.
pub const REQUEST_MAGIC: u32 = 0x2560_9513;
/// Magic leading every simple reply.
pub const SIMPLE_REPLY_MAGIC: u32 = 0x6744_6698;

/// Handshake flag: the server speaks fixed newstyle.
pub const FLAG_FIXED_NEWSTYLE: u16 = 1 << 0;
/// Handshake flag: the server can omit the 124 zero bytes after
/// `EXPORT_NAME`.
pub const FLAG_NO_ZEROES: u16 = 1 << 1;

/// Option: enter transmission on the named export.
pub const OPT_EXPORT_NAME: u32 = 1;
/// Option: abort the handshake cleanly.
pub const OPT_ABORT: u32 = 2;
/// Option reply: acknowledged.
pub const REP_ACK: u32 = 1;
/// Option reply: option not supported (fixed-newstyle fallback driver).
pub const REP_ERR_UNSUP: u32 = (1 << 31) | 1;

/// Transmission flag: this field is valid (always set).
pub const TFLAG_HAS_FLAGS: u16 = 1 << 0;
/// Transmission flag: the export serves `FLUSH`.
pub const TFLAG_SEND_FLUSH: u16 = 1 << 2;
/// Transmission flag: the export serves `TRIM`.
pub const TFLAG_SEND_TRIM: u16 = 1 << 5;

/// Command: read `len` bytes at `offset`.
pub const CMD_READ: u16 = 0;
/// Command: write the `len`-byte payload at `offset`.
pub const CMD_WRITE: u16 = 1;
/// Command: disconnect (no reply).
pub const CMD_DISC: u16 = 2;
/// Command: flush to stable storage.
pub const CMD_FLUSH: u16 = 3;
/// Command: discard a range.
pub const CMD_TRIM: u16 = 4;

/// Reply error: I/O error.
pub const EIO: u32 = 5;
/// Reply error: invalid request (bad range, unknown command).
pub const EINVAL: u32 = 22;
/// Reply error: no space — the wear pipeline's spare pool is exhausted
/// (graceful-degradation end of life).
pub const ENOSPC: u32 = 28;

/// Ceiling on a request's declared payload/read length (32 MiB, the
/// conventional NBD maximum). Checked before any allocation.
pub const MAX_IO_BYTES: usize = 32 * 1024 * 1024;

/// Why an NBD exchange failed.
#[derive(Debug)]
pub enum NbdError {
    /// The peer closed the connection at a message boundary.
    Closed,
    /// The peer violated the protocol (bad magic, oversized length,
    /// handshake mismatch). Costs the connection.
    Protocol(String),
    /// The server answered a request with a non-zero errno.
    Server {
        /// The POSIX errno from the simple reply.
        errno: u32,
    },
    /// A transport error.
    Io(io::Error),
}

impl fmt::Display for NbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Server { errno } => write!(f, "server error {errno}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NbdError {}

impl From<io::Error> for NbdError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Closed
        } else {
            Self::Io(e)
        }
    }
}

pub(crate) fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_be_bytes(b))
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_be_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_be_bytes(b))
}

/// One transmission-phase request, payload included for `WRITE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Command flags (none are honored by this subset).
    pub flags: u16,
    /// The command (`CMD_*`).
    pub cmd: u16,
    /// The client's correlation handle, echoed in the reply.
    pub handle: u64,
    /// Byte offset into the export.
    pub offset: u64,
    /// Byte length of the operation.
    pub len: u32,
    /// The payload (`WRITE` only; empty otherwise).
    pub data: Vec<u8>,
}

/// Reads one transmission request.
///
/// # Errors
///
/// [`NbdError::Closed`] on EOF at the request boundary,
/// [`NbdError::Protocol`] on a bad magic or a `WRITE` declaring more
/// than [`MAX_IO_BYTES`] (refused before allocating the payload), and
/// [`NbdError::Io`] on transport failures.
pub fn read_request(r: &mut impl Read) -> Result<Request, NbdError> {
    let mut magic = [0u8; 4];
    match r.read(&mut magic) {
        Ok(0) => return Err(NbdError::Closed),
        Ok(n) if n < 4 => r
            .read_exact(&mut magic[n..])
            .map_err(|_| NbdError::Protocol("truncated request header".into()))?,
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    if u32::from_be_bytes(magic) != REQUEST_MAGIC {
        return Err(NbdError::Protocol(format!(
            "bad request magic {:#010x}",
            u32::from_be_bytes(magic)
        )));
    }
    let flags = read_u16(r)?;
    let cmd = read_u16(r)?;
    let handle = read_u64(r)?;
    let offset = read_u64(r)?;
    let len = read_u32(r)?;
    let mut data = Vec::new();
    if cmd == CMD_WRITE {
        let payload = guard_frame_len(u64::from(len), MAX_IO_BYTES)
            .map_err(|len| NbdError::Protocol(format!("write payload of {len} bytes refused")))?;
        data = vec![0u8; payload];
        r.read_exact(&mut data)
            .map_err(|_| NbdError::Protocol("truncated write payload".into()))?;
    }
    Ok(Request {
        flags,
        cmd,
        handle,
        offset,
        len,
        data,
    })
}

/// Writes one simple reply; `data` rides along only on a successful
/// `READ`.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_simple_reply(
    w: &mut impl Write,
    handle: u64,
    errno: u32,
    data: &[u8],
) -> io::Result<()> {
    w.write_all(&SIMPLE_REPLY_MAGIC.to_be_bytes())?;
    w.write_all(&errno.to_be_bytes())?;
    w.write_all(&handle.to_be_bytes())?;
    if errno == 0 && !data.is_empty() {
        w.write_all(data)?;
    }
    w.flush()
}

/// Serves the newstyle-fixed handshake on a fresh connection: greeting,
/// client flags, then the option haggle. Returns `true` when the client
/// entered transmission via `EXPORT_NAME` (any name is served — the
/// daemon exposes a single export) and `false` on a clean `ABORT`.
///
/// # Errors
///
/// [`NbdError::Protocol`] on a bad option magic or an oversized option
/// payload (checked before allocation); transport errors pass through.
pub fn server_handshake(
    stream: &mut (impl Read + Write),
    export_bytes: u64,
) -> Result<bool, NbdError> {
    stream.write_all(&NBDMAGIC.to_be_bytes())?;
    stream.write_all(&IHAVEOPT.to_be_bytes())?;
    stream.write_all(&(FLAG_FIXED_NEWSTYLE | FLAG_NO_ZEROES).to_be_bytes())?;
    stream.flush()?;
    let client_flags = read_u32(stream)?;
    let no_zeroes = client_flags & u32::from(FLAG_NO_ZEROES) != 0;
    loop {
        let magic = read_u64(stream)?;
        if magic != IHAVEOPT {
            return Err(NbdError::Protocol(format!(
                "bad option magic {magic:#018x}"
            )));
        }
        let option = read_u32(stream)?;
        let len = read_u32(stream)?;
        // Option payloads are names and tiny structs; anything past the
        // frame ceiling is hostile. Refused before allocation.
        let len = guard_frame_len(u64::from(len), twl_service::MAX_FRAME_BYTES)
            .map_err(|len| NbdError::Protocol(format!("option payload of {len} bytes refused")))?;
        let mut payload = vec![0u8; len];
        stream
            .read_exact(&mut payload)
            .map_err(|_| NbdError::Protocol("truncated option payload".into()))?;
        match option {
            OPT_EXPORT_NAME => {
                // Any export name is served; the daemon has one export.
                stream.write_all(&export_bytes.to_be_bytes())?;
                stream.write_all(
                    &(TFLAG_HAS_FLAGS | TFLAG_SEND_FLUSH | TFLAG_SEND_TRIM).to_be_bytes(),
                )?;
                if !no_zeroes {
                    stream.write_all(&[0u8; 124])?;
                }
                stream.flush()?;
                return Ok(true);
            }
            OPT_ABORT => {
                write_option_reply(stream, option, REP_ACK, &[])?;
                return Ok(false);
            }
            _ => write_option_reply(stream, option, REP_ERR_UNSUP, &[])?,
        }
    }
}

fn write_option_reply(w: &mut impl Write, option: u32, reply: u32, data: &[u8]) -> io::Result<()> {
    w.write_all(&OPT_REPLY_MAGIC.to_be_bytes())?;
    w.write_all(&option.to_be_bytes())?;
    w.write_all(&reply.to_be_bytes())?;
    w.write_all(&u32::try_from(data.len()).expect("tiny reply").to_be_bytes())?;
    w.write_all(data)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_round_trips_a_write() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&CMD_WRITE.to_be_bytes());
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&4096u64.to_be_bytes());
        bytes.extend_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(b"data");
        let req = read_request(&mut bytes.as_slice()).unwrap();
        assert_eq!(req.cmd, CMD_WRITE);
        assert_eq!(req.handle, 7);
        assert_eq!(req.offset, 4096);
        assert_eq!(req.data, b"data");
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let bytes = 0xdead_beefu32.to_be_bytes();
        assert!(matches!(
            read_request(&mut bytes.as_slice()),
            Err(NbdError::Protocol(_))
        ));
    }

    #[test]
    fn eof_at_the_boundary_is_closed() {
        assert!(matches!(
            read_request(&mut [].as_slice()),
            Err(NbdError::Closed)
        ));
    }

    #[test]
    fn oversized_write_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&CMD_WRITE.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        let len = u32::try_from(MAX_IO_BYTES + 1).unwrap();
        bytes.extend_from_slice(&len.to_be_bytes());
        // No payload follows — the length alone must reject it.
        assert!(matches!(
            read_request(&mut bytes.as_slice()),
            Err(NbdError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_read_length_is_allowed_at_the_codec() {
        // READ carries no payload, so the codec accepts any declared
        // length; the server bounds it against the export instead.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&CMD_READ.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_request(&mut bytes.as_slice()).is_ok());
    }
}
