//! Block→page mapping: how byte-addressed NBD traffic lands on the
//! page-addressed wear pipeline.
//!
//! The export is `data_pages × bytes_per_page` bytes. A block write
//! covering byte range `[offset, offset+len)` wears every page the
//! range touches — one logical page write per touched page, because a
//! PCM page is the remap/wear granularity and a sub-page store still
//! rewrites the whole page (the write-amplification the paper's
//! schemes are built around). Reads and trims wear nothing.

use std::ops::Range;

/// The export geometry: page-granular wear over a byte-addressed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    /// Bytes per simulated PCM page (the wear granularity).
    pub bytes_per_page: u64,
    /// Pages in the scheme-addressable data region.
    pub data_pages: u64,
}

impl BlockGeometry {
    /// The export size in bytes.
    #[must_use]
    pub fn export_bytes(&self) -> u64 {
        self.bytes_per_page * self.data_pages
    }

    /// Whether a byte range stays inside the export.
    #[must_use]
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        offset
            .checked_add(len)
            .is_some_and(|end| end <= self.export_bytes())
    }

    /// The logical pages a byte range touches (empty for `len == 0`).
    ///
    /// Callers validate the range with [`BlockGeometry::contains`]
    /// first; the returned range is clamped to the device regardless.
    #[must_use]
    pub fn pages_touched(&self, offset: u64, len: u64) -> Range<u64> {
        if len == 0 {
            return 0..0;
        }
        let first = (offset / self.bytes_per_page).min(self.data_pages);
        let last = offset
            .saturating_add(len - 1)
            .checked_div(self.bytes_per_page)
            .unwrap_or(0)
            .min(self.data_pages.saturating_sub(1));
        first..last + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: BlockGeometry = BlockGeometry {
        bytes_per_page: 4096,
        data_pages: 64,
    };

    #[test]
    fn aligned_ranges_touch_exactly_their_pages() {
        assert_eq!(G.pages_touched(0, 4096), 0..1);
        assert_eq!(G.pages_touched(4096, 8192), 1..3);
        assert_eq!(G.pages_touched(0, 0), 0..0);
    }

    #[test]
    fn sub_page_and_straddling_ranges_round_out() {
        assert_eq!(G.pages_touched(10, 1), 0..1, "one byte wears its page");
        assert_eq!(G.pages_touched(4095, 2), 0..2, "straddle wears both");
        assert_eq!(
            G.pages_touched(8191, 4098),
            1..4,
            "last byte lands on page 3"
        );
        assert_eq!(G.pages_touched(8191, 4097), 1..3);
    }

    #[test]
    fn bounds_checking() {
        assert!(G.contains(0, G.export_bytes()));
        assert!(!G.contains(1, G.export_bytes()));
        assert!(!G.contains(u64::MAX, 1), "offset overflow");
        assert_eq!(G.export_bytes(), 64 * 4096);
    }
}
