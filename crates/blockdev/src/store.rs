//! The block data store: a RAM-backed byte device with atomic on-disk
//! snapshot/restore.
//!
//! The store holds the *data* a filesystem sees through the NBD export;
//! the wear pipeline ([`crate::gateway`]) is a shadow of it and never
//! moves stored bytes — scheme remaps shuffle physical wear, not
//! logical content. Snapshots are whole-image files written through a
//! temp-file-plus-rename, so a crash mid-persist leaves the previous
//! snapshot intact.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// An out-of-range access against the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// Requested start offset.
    pub offset: u64,
    /// Requested length in bytes.
    pub len: u64,
    /// The store's size.
    pub size: u64,
}

impl fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range [{}, {}) escapes the {}-byte store",
            self.offset,
            self.offset.saturating_add(self.len),
            self.size
        )
    }
}

impl std::error::Error for OutOfRange {}

/// A fixed-size byte store backing one NBD export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStore {
    bytes: Vec<u8>,
}

impl BlockStore {
    /// A zero-filled store of `len` bytes.
    #[must_use]
    pub fn zeroed(len: u64) -> Self {
        Self {
            bytes: vec![0; usize::try_from(len).expect("store fits in memory")],
        }
    }

    /// The store size in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the store is zero-sized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, offset: u64, len: u64) -> Result<std::ops::Range<usize>, OutOfRange> {
        let end = offset.checked_add(len).filter(|&e| e <= self.len());
        match end {
            Some(end) => Ok(offset as usize..end as usize),
            None => Err(OutOfRange {
                offset,
                len,
                size: self.len(),
            }),
        }
    }

    /// Fills `out` from the store at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range escapes the store.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), OutOfRange> {
        let range = self.check(offset, out.len() as u64)?;
        out.copy_from_slice(&self.bytes[range]);
        Ok(())
    }

    /// Writes `data` into the store at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range escapes the store.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), OutOfRange> {
        let range = self.check(offset, data.len() as u64)?;
        self.bytes[range].copy_from_slice(data);
        Ok(())
    }

    /// Discards (zero-fills) a range — the TRIM semantics the export
    /// advertises: trimmed blocks read back as zeroes.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range escapes the store.
    pub fn trim(&mut self, offset: u64, len: u64) -> Result<(), OutOfRange> {
        let range = self.check(offset, len)?;
        self.bytes[range].fill(0);
        Ok(())
    }

    /// Persists the whole image atomically: written to `<path>.tmp`,
    /// then renamed over `path`. Rename atomicity means a crashed
    /// *daemon* always leaves either the previous or the new snapshot;
    /// there is deliberately no fsync — power-loss durability is not a
    /// goal for a simulation device, and FLUSH runs on the request
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on failure `path` still holds the
    /// previous snapshot (or nothing).
    pub fn persist(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &self.bytes)?;
        fs::rename(&tmp, path)
    }

    /// Restores a snapshot written by [`BlockStore::persist`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or when the image size does not match
    /// `expected_len` (a snapshot from a different geometry).
    pub fn load(path: &Path, expected_len: u64) -> io::Result<Self> {
        let bytes = fs::read(path)?;
        if bytes.len() as u64 != expected_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot {} holds {} bytes, geometry expects {expected_len}",
                    path.display(),
                    bytes.len()
                ),
            ));
        }
        Ok(Self { bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_writes_and_trims() {
        let mut store = BlockStore::zeroed(1024);
        store.write(512, &[7u8; 256]).unwrap();
        let mut buf = [0u8; 256];
        store.read(512, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 256]);
        store.trim(512, 128).unwrap();
        store.read(512, &mut buf).unwrap();
        assert_eq!(&buf[..128], &[0u8; 128]);
        assert_eq!(&buf[128..], &[7u8; 128]);
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let mut store = BlockStore::zeroed(100);
        assert!(store.write(90, &[0u8; 11]).is_err());
        assert!(store.read(101, &mut []).is_err());
        assert!(store.trim(u64::MAX, 2).is_err(), "offset+len overflow");
        store.write(90, &[1u8; 10]).unwrap();
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = std::env::temp_dir().join(format!("twl-store-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.img");
        let mut store = BlockStore::zeroed(4096);
        store.write(17, b"hello block device").unwrap();
        store.persist(&path).unwrap();
        let back = BlockStore::load(&path, 4096).unwrap();
        assert_eq!(back, store);
        assert!(BlockStore::load(&path, 8192).is_err(), "size mismatch");
        let _ = fs::remove_dir_all(&dir);
    }
}
