//! `twl-blockd`: the NBD daemon serving a wear-leveled simulated PCM.
//!
//! ```text
//! twl-blockd [--addr HOST:PORT] [--control-addr HOST:PORT]
//!            [--pages N] [--bytes-per-page N] [--endurance N]
//!            [--scheme SPEC] [--seed N] [--spare-fraction F]
//!            [--fault-seed N] [--state-dir DIR] [--idle-timeout-ms N]
//! ```
//!
//! * `--addr` (default `127.0.0.1:10809`, the NBD IANA port) is the
//!   data port; `--control-addr` (default `127.0.0.1:7783`) speaks
//!   `twl-wire/v1` for `twl-ctl metrics` / `twl-top` / shutdown. Port 0
//!   picks a free port; the daemon prints
//!   `twl-blockd listening on <addr>` and
//!   `twl-blockd control on <addr>` once bound.
//! * `--scheme` takes any `SchemeSpec` label (`TWL_swp`,
//!   `SR[inner=5,outer=9]`, …); the export is `--pages` ×
//!   `--bytes-per-page` bytes.
//! * `--state-dir` enables persistence: FLUSH/disconnect/shutdown
//!   write `store.img` + `capture.trace` + `meta.json` atomically, and
//!   a restarted daemon restores the data image and replays the
//!   capture into a bit-identical wear state.

use std::path::PathBuf;
use std::process::ExitCode;

use twl_blockdev::{BlockServer, BlockdevConfig};

const USAGE: &str = "usage: twl-blockd [--addr HOST:PORT] [--control-addr HOST:PORT] \
[--pages N] [--bytes-per-page N] [--endurance N] [--scheme SPEC] [--seed N] \
[--spare-fraction F] [--fault-seed N] [--state-dir DIR] [--idle-timeout-ms N]";

struct Args {
    config: BlockdevConfig,
    addr: String,
    control_addr: String,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut config = BlockdevConfig::default();
    let mut addr = "127.0.0.1:10809".to_owned();
    let mut control_addr = "127.0.0.1:7783".to_owned();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?.to_owned(),
            "--control-addr" => control_addr = value("--control-addr")?.to_owned(),
            "--pages" => {
                config.gateway.pages = value("--pages")?
                    .parse()
                    .map_err(|e| format!("bad --pages: {e}"))?;
            }
            "--bytes-per-page" => {
                config.bytes_per_page = value("--bytes-per-page")?
                    .parse()
                    .map_err(|e| format!("bad --bytes-per-page: {e}"))?;
            }
            "--endurance" => {
                config.gateway.mean_endurance = value("--endurance")?
                    .parse()
                    .map_err(|e| format!("bad --endurance: {e}"))?;
            }
            "--scheme" => {
                config.gateway.scheme = value("--scheme")?
                    .parse()
                    .map_err(|e| format!("bad --scheme: {e}"))?;
            }
            "--seed" => {
                config.gateway.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--spare-fraction" => {
                config.gateway.spare_fraction = value("--spare-fraction")?
                    .parse()
                    .map_err(|e| format!("bad --spare-fraction: {e}"))?;
            }
            "--fault-seed" => {
                config.gateway.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            "--state-dir" => config.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --idle-timeout-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if config.bytes_per_page == 0 {
        return Err("--bytes-per-page must be positive".to_owned());
    }
    Ok(Args {
        config,
        addr,
        control_addr,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let args = parse_args(args)?;
    let server = BlockServer::bind(&args.config, args.addr.as_str(), args.control_addr.as_str())
        .map_err(|e| format!("cannot start: {e}"))?;
    println!(
        "twl-blockd serving {} pages x {} B ({}) via {}",
        args.config.gateway.pages,
        args.config.bytes_per_page,
        human_bytes(args.config.geometry().export_bytes()),
        args.config.gateway.scheme
    );
    println!("twl-blockd listening on {}", server.data_addr());
    println!("twl-blockd control on {}", server.control_addr());
    server.run().map_err(|e| format!("daemon failed: {e}"))
}

fn human_bytes(v: u64) -> String {
    match v {
        0..=1023 => format!("{v} B"),
        1024..=1_048_575 => format!("{} KiB", v / 1024),
        1_048_576..=1_073_741_823 => format!("{} MiB", v / 1_048_576),
        _ => format!("{} GiB", v / 1_073_741_824),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
