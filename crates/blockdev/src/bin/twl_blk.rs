//! `twl-blk`: client CLI for `twl-blockd`.
//!
//! ```text
//! twl-blk drive  --addr HOST:PORT [--ops N] [--seed N]
//! twl-blk replay --trace FILE [--pages N] [--bytes-per-page N]
//!                [--endurance N] [--scheme SPEC] [--seed N]
//!                [--spare-fraction F] [--fault-seed N]
//! ```
//!
//! * `drive` connects as an NBD client and issues `--ops` operations of
//!   the deterministic mixed workload (seeded writes/reads/trims/
//!   flushes), then disconnects cleanly. The same generator backs the
//!   integration tests and the CI smoke job.
//! * `replay` rebuilds the wear pipeline offline from a captured
//!   `capture.trace` and prints the resulting wear state as
//!   `twl_blockdev_* <value>` lines — byte-identical to the matching
//!   gauge samples on a live daemon's metrics page, so equality is one
//!   `grep`-and-diff away.

use std::fs::File;
use std::path::PathBuf;
use std::process::ExitCode;

use twl_blockdev::{drive_mixed, GatewayConfig, NbdClient, WearGateway};
use twl_workloads::read_trace;

const USAGE: &str = "usage: twl-blk drive --addr HOST:PORT [--ops N] [--seed N]\n\
       twl-blk replay --trace FILE [--pages N] [--endurance N] [--scheme SPEC] \
[--seed N] [--spare-fraction F] [--fault-seed N]";

fn run_drive(args: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut ops = 2000u64;
    let mut seed = 1u64;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?.to_owned()),
            "--ops" => {
                ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("bad --ops: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("drive needs --addr\n{USAGE}"))?;
    let mut client =
        NbdClient::connect(addr.as_str()).map_err(|e| format!("cannot connect: {e}"))?;
    println!("connected: export of {} bytes", client.export_bytes());
    let report = drive_mixed(&mut client, ops, seed).map_err(|e| format!("drive failed: {e}"))?;
    client
        .disconnect()
        .map_err(|e| format!("disconnect failed: {e}"))?;
    println!(
        "drove {ops} ops (seed {seed}): {} writes ({} B), {} reads, {} trims, {} flushes, {} enospc",
        report.writes, report.bytes_written, report.reads, report.trims, report.flushes,
        report.enospc
    );
    Ok(())
}

fn run_replay(args: &[String]) -> Result<(), String> {
    let mut trace = None;
    let mut config = GatewayConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--pages" => {
                config.pages = value("--pages")?
                    .parse()
                    .map_err(|e| format!("bad --pages: {e}"))?;
            }
            "--endurance" => {
                config.mean_endurance = value("--endurance")?
                    .parse()
                    .map_err(|e| format!("bad --endurance: {e}"))?;
            }
            "--scheme" => {
                config.scheme = value("--scheme")?
                    .parse()
                    .map_err(|e| format!("bad --scheme: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--spare-fraction" => {
                config.spare_fraction = value("--spare-fraction")?
                    .parse()
                    .map_err(|e| format!("bad --spare-fraction: {e}"))?;
            }
            "--fault-seed" => {
                config.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let trace = trace.ok_or_else(|| format!("replay needs --trace\n{USAGE}"))?;
    let file = File::open(&trace).map_err(|e| format!("cannot open {}: {e}", trace.display()))?;
    let cmds = read_trace(file).map_err(|e| format!("bad trace: {e}"))?;
    let gateway = WearGateway::replay(config, &cmds).map_err(|e| format!("replay failed: {e}"))?;
    let probe = gateway.probe();
    // The exact lines a live daemon's metrics page carries for these
    // gauges — diffable against a scrape with a single grep.
    println!("twl_blockdev_capture_cmds {}", probe.capture_len);
    println!("twl_blockdev_end_of_life {}", u8::from(probe.end_of_life));
    println!("twl_blockdev_pages_retired {}", probe.pages_retired);
    println!("twl_blockdev_spares_remaining {}", probe.spares_remaining);
    println!(
        "twl_blockdev_wear_device_writes {}",
        probe.stats.device_writes
    );
    println!(
        "twl_blockdev_wear_logical_writes {}",
        probe.stats.logical_writes
    );
    println!("twl_blockdev_wear_map_hash {}", probe.wear_map_hash);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("drive") => run_drive(&args[1..]),
        Some("replay") => run_replay(&args[1..]),
        _ => Err(USAGE.to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
