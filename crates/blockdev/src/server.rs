//! The `twl-blockd` server: one NBD data port, one `twl-wire/v1`
//! control port, one wear pipeline.
//!
//! The data port speaks the NBD subset of [`crate::nbd`]; every
//! connection is handled on its own thread against a shared
//! [`BlockStore`] + [`WearGateway`] pair behind one mutex (NBD traffic
//! is request/response, so the lock hold time is one operation). The
//! control port speaks the same `twl-wire/v1` frames as `twl-serviced`,
//! which makes `twl-ctl metrics --lint` and `twl-top` work against a
//! block daemon unmodified.
//!
//! Persistence: with a `--state-dir`, FLUSH, client disconnect, and
//! shutdown atomically persist the data image (`store.img`), the
//! capture stream (`capture.trace`), and the configuration
//! (`meta.json`). On restart the image restores the data and a replay
//! of the capture rebuilds the wear pipeline bit for bit — scheme
//! tables are XOR-keyed RNG state and are cheaper to re-derive than to
//! serialize.

use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use twl_pcm::LogicalPageAddr;
use twl_service::{
    apply_idle_timeout, idle_deadline, is_idle_timeout, read_frame, render_metrics_page,
    write_frame, FrameError, JobQueue, Request, Response, PROTOCOL,
};
use twl_telemetry::json::{int, str, Json};
use twl_telemetry::{counter, gauge, histogram};
use twl_workloads::{read_trace, write_trace, MemCmd};

use crate::gateway::{GatewayConfig, GatewayError, GatewayProbe, WearGateway};
use crate::mapping::BlockGeometry;
use crate::nbd::{self, NbdError};
use crate::store::BlockStore;

/// Schema tag of `meta.json` in the state directory.
pub const META_SCHEMA: &str = "twl-blockdev/v1";

/// Everything `twl-blockd` needs to serve one export.
#[derive(Debug, Clone)]
pub struct BlockdevConfig {
    /// The wear pipeline behind the export.
    pub gateway: GatewayConfig,
    /// Bytes per simulated PCM page (the wear granularity); the export
    /// is `gateway.pages × bytes_per_page` bytes.
    pub bytes_per_page: u64,
    /// Directory for `store.img` / `capture.trace` / `meta.json`;
    /// `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Idle timeout per connection in milliseconds; 0 disables.
    pub idle_timeout_ms: u64,
}

impl Default for BlockdevConfig {
    fn default() -> Self {
        Self {
            gateway: GatewayConfig::default(),
            bytes_per_page: 4096,
            state_dir: None,
            idle_timeout_ms: 0,
        }
    }
}

impl BlockdevConfig {
    /// The export geometry this configuration implies.
    #[must_use]
    pub fn geometry(&self) -> BlockGeometry {
        BlockGeometry {
            bytes_per_page: self.bytes_per_page,
            data_pages: self.gateway.pages,
        }
    }
}

struct DeviceState {
    store: BlockStore,
    gateway: WearGateway,
}

struct Shared {
    geometry: BlockGeometry,
    state: Mutex<DeviceState>,
    // Only `render_metrics_page` needs a queue and the block daemon has
    // no jobs; an empty one renders the plain exposition.
    queue: JobQueue,
    state_dir: Option<PathBuf>,
    idle: Option<Duration>,
    shutdown: AtomicBool,
    data_addr: SocketAddr,
    control_addr: SocketAddr,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, DeviceState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pushes the wear pipeline's current shape into the
    /// `twl_blockdev_*` gauges.
    fn refresh_gauges(&self) {
        let probe = self.lock().gateway.probe();
        publish_probe(&probe, self.geometry.export_bytes());
    }

    /// Persists image + capture + meta atomically (each through a temp
    /// file and rename). No-op without a state dir.
    fn persist(&self) -> io::Result<()> {
        let Some(dir) = &self.state_dir else {
            return Ok(());
        };
        fs::create_dir_all(dir)?;
        let state = self.lock();
        state.store.persist(&dir.join("store.img"))?;
        let mut trace = Vec::new();
        write_trace(&mut trace, state.gateway.capture())?;
        write_atomic(&dir.join("capture.trace"), &trace)?;
        let meta = Json::obj([
            ("schema", str(META_SCHEMA)),
            ("bytes_per_page", int(self.geometry.bytes_per_page)),
            ("capture_cmds", int(state.gateway.capture().len() as u64)),
            ("gateway", state.gateway.config().to_json()),
        ]);
        write_atomic(&dir.join("meta.json"), meta.to_compact().as_bytes())?;
        counter!("twl.blockdev.persists").inc();
        Ok(())
    }
}

// Temp-file-plus-rename, like `BlockStore::persist`: atomic against a
// daemon crash, deliberately not fsynced (FLUSH is on the request path).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Publishes one gateway probe as the `twl_blockdev_*` gauge family.
pub fn publish_probe(probe: &GatewayProbe, export_bytes: u64) {
    let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    gauge!("twl.blockdev.export_bytes").set(as_i64(export_bytes));
    gauge!("twl.blockdev.wear_logical_writes").set(as_i64(probe.stats.logical_writes));
    gauge!("twl.blockdev.wear_device_writes").set(as_i64(probe.stats.device_writes));
    gauge!("twl.blockdev.wear_map_hash").set(as_i64(probe.wear_map_hash));
    gauge!("twl.blockdev.pages_retired").set(as_i64(probe.pages_retired));
    gauge!("twl.blockdev.spares_remaining").set(as_i64(probe.spares_remaining));
    gauge!("twl.blockdev.capture_cmds").set(as_i64(probe.capture_len));
    gauge!("twl.blockdev.end_of_life").set(i64::from(probe.end_of_life));
}

/// The running daemon: bound data + control listeners around shared
/// device state.
pub struct BlockServer {
    data: TcpListener,
    control: TcpListener,
    data_addr: SocketAddr,
    control_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl BlockServer {
    /// Builds (or restores) the device state and binds both listeners.
    /// `data_addr`/`control_addr` may use port 0; the chosen ports are
    /// reported by [`BlockServer::data_addr`] / [`BlockServer::control_addr`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures, state-dir I/O errors, a `meta.json`
    /// that disagrees with `config`, and gateway construction failures.
    pub fn bind(
        config: &BlockdevConfig,
        data_addr: impl ToSocketAddrs,
        control_addr: impl ToSocketAddrs,
    ) -> io::Result<Self> {
        let state = restore_or_new(config)?;
        let data = TcpListener::bind(data_addr)?;
        let control = TcpListener::bind(control_addr)?;
        let data_addr = data.local_addr()?;
        let control_addr = control.local_addr()?;
        let shared = Arc::new(Shared {
            geometry: config.geometry(),
            state: Mutex::new(state),
            queue: JobQueue::new(1, 1000),
            state_dir: config.state_dir.clone(),
            idle: idle_deadline(config.idle_timeout_ms),
            shutdown: AtomicBool::new(false),
            data_addr,
            control_addr,
        });
        shared.refresh_gauges();
        Ok(Self {
            data,
            control,
            data_addr,
            control_addr,
            shared,
        })
    }

    /// The NBD data port.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// The `twl-wire/v1` control port.
    #[must_use]
    pub fn control_addr(&self) -> SocketAddr {
        self.control_addr
    }

    /// Serves both ports until a control-port `Shutdown` arrives, then
    /// persists and returns. Each connection gets its own thread.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures and the final persist.
    pub fn run(self) -> io::Result<()> {
        let control_shared = Arc::clone(&self.shared);
        let control = self.control;
        let control_loop = thread::spawn(move || {
            for stream in control.incoming() {
                if control_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(&control_shared);
                thread::spawn(move || handle_control(&shared, stream));
            }
        });
        for stream in self.data.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            counter!("twl.blockdev.connections").inc();
            // Request/response over loopback dies by Nagle+delayed-ACK
            // without this.
            let _ = stream.set_nodelay(true);
            apply_idle_timeout(&stream, self.shared.idle);
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || {
                if let Err(e) = handle_data_connection(&shared, stream) {
                    match e {
                        NbdError::Closed => {}
                        NbdError::Protocol(_) => {
                            counter!("twl.blockdev.protocol_errors").inc();
                        }
                        NbdError::Io(ref io_err) if is_idle_timeout(io_err) => {
                            counter!("twl.blockdev.idle_timeouts").inc();
                        }
                        _ => counter!("twl.blockdev.errors").inc(),
                    }
                }
                // A client that vanished mid-session still leaves a
                // consistent snapshot behind.
                let _ = shared.persist();
            });
        }
        let _ = control_loop.join();
        self.shared.persist()
    }

    /// Asks a bound-but-not-yet-running server's accept loops to exit.
    /// Used by tests; the normal path is a control-port `Shutdown`.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            data_addr: self.data_addr,
            control_addr: self.control_addr,
        }
    }
}

/// A handle that can stop a running [`BlockServer`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
    data_addr: SocketAddr,
    control_addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flags shutdown and pokes both listeners so their accept loops
    /// observe it.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.data_addr);
        let _ = TcpStream::connect(self.control_addr);
    }

    /// A point-in-time probe of the live wear pipeline (in-process
    /// tests compare this against an offline replay).
    #[must_use]
    pub fn probe(&self) -> GatewayProbe {
        self.shared.lock().gateway.probe()
    }

    /// The live physical wear counters, cloned.
    #[must_use]
    pub fn wear_counters(&self) -> Vec<u64> {
        self.shared.lock().gateway.wear_counters().to_vec()
    }
}

/// Builds fresh state, or restores it from `config.state_dir` when a
/// `meta.json` is present: the image restores the data bytes, the
/// capture replays into a fresh wear pipeline.
fn restore_or_new(config: &BlockdevConfig) -> io::Result<DeviceState> {
    let geometry = config.geometry();
    let meta_path = config.state_dir.as_ref().map(|d| d.join("meta.json"));
    let resumable = meta_path.as_ref().is_some_and(|p| p.exists());
    if !resumable {
        let gateway = WearGateway::new(config.gateway.clone()).map_err(gateway_io)?;
        return Ok(DeviceState {
            store: BlockStore::zeroed(geometry.export_bytes()),
            gateway,
        });
    }
    let dir = config.state_dir.as_ref().expect("resumable implies dir");
    let meta = Json::parse(&fs::read_to_string(dir.join("meta.json"))?)
        .map_err(|e| bad_state(format!("meta.json: {e}")))?;
    let schema = meta.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != META_SCHEMA {
        return Err(bad_state(format!(
            "meta.json schema `{schema}`, expected `{META_SCHEMA}`"
        )));
    }
    let saved = GatewayConfig::from_json(
        meta.get("gateway")
            .ok_or_else(|| bad_state("meta.json missing `gateway`".into()))?,
    )
    .map_err(bad_state)?;
    let saved_bpp = meta.get("bytes_per_page").and_then(Json::as_u64);
    if saved != config.gateway || saved_bpp != Some(config.bytes_per_page) {
        return Err(bad_state(
            "state dir was written under a different configuration".into(),
        ));
    }
    let store = BlockStore::load(&dir.join("store.img"), geometry.export_bytes())?;
    let mut capture = fs::File::open(dir.join("capture.trace"))?;
    let cmds: Vec<MemCmd> = read_trace(&mut capture)?;
    let gateway = WearGateway::replay(config.gateway.clone(), &cmds).map_err(gateway_io)?;
    counter!("twl.blockdev.restores").inc();
    Ok(DeviceState { store, gateway })
}

fn gateway_io(e: GatewayError) -> io::Error {
    io::Error::other(e.to_string())
}

fn bad_state(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One NBD connection: handshake, then requests until disconnect.
fn handle_data_connection(shared: &Shared, mut stream: TcpStream) -> Result<(), NbdError> {
    if !nbd::server_handshake(&mut stream, shared.geometry.export_bytes())? {
        return Ok(()); // clean OPT_ABORT
    }
    loop {
        let req = nbd::read_request(&mut stream)?;
        let started = Instant::now();
        match req.cmd {
            nbd::CMD_READ => {
                let _span = twl_telemetry::span!("blockdev.read");
                let errno_data = serve_read(shared, req.offset, req.len);
                match errno_data {
                    Ok(data) => {
                        counter!("twl.blockdev.reads").inc();
                        counter!("twl.blockdev.bytes_read").add(u64::from(req.len));
                        nbd::write_simple_reply(&mut stream, req.handle, 0, &data)?;
                    }
                    Err(errno) => {
                        counter!("twl.blockdev.errors").inc();
                        nbd::write_simple_reply(&mut stream, req.handle, errno, &[])?;
                    }
                }
                histogram!("twl.blockdev.read_us")
                    .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            nbd::CMD_WRITE => {
                let _span = twl_telemetry::span!("blockdev.write");
                let errno = serve_write(shared, req.offset, &req.data);
                if errno == 0 {
                    counter!("twl.blockdev.writes").inc();
                    counter!("twl.blockdev.bytes_written").add(req.data.len() as u64);
                } else {
                    counter!("twl.blockdev.errors").inc();
                }
                nbd::write_simple_reply(&mut stream, req.handle, errno, &[])?;
                histogram!("twl.blockdev.write_us")
                    .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            nbd::CMD_TRIM => {
                let errno = serve_trim(shared, req.offset, req.len);
                if errno == 0 {
                    counter!("twl.blockdev.trims").inc();
                } else {
                    counter!("twl.blockdev.errors").inc();
                }
                nbd::write_simple_reply(&mut stream, req.handle, errno, &[])?;
            }
            nbd::CMD_FLUSH => {
                let errno = if shared.persist().is_ok() {
                    0
                } else {
                    nbd::EIO
                };
                counter!("twl.blockdev.flushes").inc();
                nbd::write_simple_reply(&mut stream, req.handle, errno, &[])?;
            }
            nbd::CMD_DISC => {
                let _ = shared.persist();
                return Ok(());
            }
            _ => {
                counter!("twl.blockdev.errors").inc();
                nbd::write_simple_reply(&mut stream, req.handle, nbd::EINVAL, &[])?;
            }
        }
        shared.refresh_gauges();
    }
}

fn serve_read(shared: &Shared, offset: u64, len: u32) -> Result<Vec<u8>, u32> {
    if !shared.geometry.contains(offset, u64::from(len)) || len as usize > nbd::MAX_IO_BYTES {
        return Err(nbd::EINVAL);
    }
    let mut data = vec![0u8; len as usize];
    shared
        .lock()
        .store
        .read(offset, &mut data)
        .map_err(|_| nbd::EINVAL)?;
    Ok(data)
}

/// A write lands in the store first, then wears every touched page.
/// When the wear pipeline hits end of life mid-write the client gets
/// `ENOSPC` — like a real device failing a write, the data bytes that
/// already landed are not rolled back, and the capture keeps the
/// attempted page writes so a replay reproduces the same final state.
fn serve_write(shared: &Shared, offset: u64, data: &[u8]) -> u32 {
    if !shared.geometry.contains(offset, data.len() as u64) {
        return nbd::EINVAL;
    }
    let mut state = shared.lock();
    if state.gateway.end_of_life() {
        return nbd::ENOSPC;
    }
    if state.store.write(offset, data).is_err() {
        return nbd::EINVAL;
    }
    for page in shared.geometry.pages_touched(offset, data.len() as u64) {
        counter!("twl.blockdev.page_writes").inc();
        match state.gateway.write_page(LogicalPageAddr::new(page)) {
            Ok(()) => {}
            Err(GatewayError::EndOfLife) => return nbd::ENOSPC,
            Err(_) => return nbd::EIO,
        }
    }
    0
}

fn serve_trim(shared: &Shared, offset: u64, len: u32) -> u32 {
    if !shared.geometry.contains(offset, u64::from(len)) {
        return nbd::EINVAL;
    }
    match shared.lock().store.trim(offset, u64::from(len)) {
        Ok(()) => 0,
        Err(_) => nbd::EINVAL,
    }
}

/// One control connection: `twl-wire/v1` frames until the peer closes.
fn handle_control(shared: &Shared, mut stream: TcpStream) {
    apply_idle_timeout(&stream, shared.idle);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(ref e)) if is_idle_timeout(e) => {
                counter!("twl.blockdev.idle_timeouts").inc();
                return;
            }
            Err(_) => {
                counter!("twl.blockdev.protocol_errors").inc();
                return;
            }
        };
        let response = match Request::from_json(&frame) {
            Ok(Request::Hello { proto }) if proto == PROTOCOL => Response::HelloOk {
                proto: PROTOCOL.to_owned(),
                slots: None,
            },
            Ok(Request::Hello { proto }) => Response::Error {
                message: format!("unsupported protocol `{proto}`"),
            },
            Ok(Request::Metrics) => {
                shared.refresh_gauges();
                Response::MetricsOk {
                    text: render_metrics_page(&shared.queue),
                }
            }
            Ok(Request::Status { .. }) => Response::StatusOk { jobs: Vec::new() },
            Ok(Request::Shutdown) => {
                let persisted = shared.persist();
                shared.shutdown.store(true, Ordering::SeqCst);
                // Poke both accept loops so they observe the flag.
                let _ = TcpStream::connect(shared.data_addr);
                let _ = TcpStream::connect(shared.control_addr);
                let _ = write_frame(
                    &mut stream,
                    &match persisted {
                        Ok(()) => Response::ShutdownOk,
                        Err(e) => Response::Error {
                            message: format!("persist failed: {e}"),
                        },
                    }
                    .to_json(),
                );
                return;
            }
            Ok(_) => Response::Error {
                message: "twl-blockd serves hello/status/metrics/shutdown only".to_owned(),
            },
            Err(e) => {
                counter!("twl.blockdev.protocol_errors").inc();
                Response::Error { message: e }
            }
        };
        if write_frame(&mut stream, &response.to_json()).is_err() {
            return;
        }
    }
}
