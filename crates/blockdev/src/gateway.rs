//! The wear gateway: where block traffic meets the simulated PCM.
//!
//! Every page a block write touches becomes one logical write through
//! the configured wear-leveling scheme against a fault-provisioned
//! device ([`twl_faults::provision`]): scheme remaps shuffle wear,
//! the fault engine corrects cell-group faults and retires pages to
//! spares, and an empty spare pool is the export's end of life
//! (`ENOSPC` on the wire).
//!
//! The gateway also *captures*: each logical write is appended to an
//! in-memory [`MemCmd`] stream in the `twl-workloads` trace format.
//! Because the whole pipeline is deterministic — endurance map, scheme
//! RNG, and fault thresholds are all seed-derived — replaying a capture
//! through a fresh gateway built from the same [`GatewayConfig`]
//! reproduces the wear map, [`WlStats`], and retirement history
//! bit for bit. That replay is both the audit trail and the resume
//! path after a daemon restart.

use std::fmt;

use twl_faults::{provision, FaultConfig, FaultEngine};
use twl_lifetime::{build_scheme_spec_for_region, SchemeKind, SchemeSpec};
use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice, PcmError};
use twl_telemetry::json::{int, num, str, Json};
use twl_wl_core::{WearLeveler, WlStats};
use twl_workloads::MemCmd;

/// Everything needed to rebuild a gateway deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Pages in the scheme-addressable data region.
    pub pages: u64,
    /// Mean page endurance of the simulated device.
    pub mean_endurance: u64,
    /// Endurance-map seed.
    pub seed: u64,
    /// The wear-leveling scheme serving the export.
    pub scheme: SchemeSpec,
    /// Spare pages per data page (graceful-degradation headroom).
    pub spare_fraction: f64,
    /// Seed of the cell-group fault thresholds.
    pub fault_seed: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            pages: 1 << 12,
            mean_endurance: 100_000,
            seed: 7,
            scheme: SchemeSpec::new(SchemeKind::TwlSwp),
            spare_fraction: 0.05,
            fault_seed: 0xFA17,
        }
    }
}

impl GatewayConfig {
    /// Encodes the configuration as a JSON object (the `gateway` field
    /// of the daemon's `meta.json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("pages", int(self.pages)),
            ("mean_endurance", int(self.mean_endurance)),
            ("seed", int(self.seed)),
            ("scheme", str(&self.scheme.to_string())),
            ("spare_fraction", num(self.spare_fraction)),
            ("fault_seed", int(self.fault_seed)),
        ])
    }

    /// Decodes a configuration written by [`GatewayConfig::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let field = |k: &str| json.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let uint = |k: &str| {
            field(k).and_then(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("field `{k}` is not a u64"))
            })
        };
        let scheme = field("scheme")?
            .as_str()
            .ok_or_else(|| "field `scheme` is not a string".to_string())?
            .parse::<SchemeSpec>()
            .map_err(|e| format!("bad scheme label: {e}"))?;
        let spare_fraction = field("spare_fraction")?
            .as_f64()
            .ok_or_else(|| "field `spare_fraction` is not a number".to_string())?;
        Ok(Self {
            pages: uint("pages")?,
            mean_endurance: uint("mean_endurance")?,
            seed: uint("seed")?,
            scheme,
            spare_fraction,
            fault_seed: uint("fault_seed")?,
        })
    }
}

/// Why the gateway could not be built or a write could not land.
#[derive(Debug)]
pub enum GatewayError {
    /// The scheme spec rejected the device geometry.
    Scheme(String),
    /// The device or fault engine failed.
    Device(PcmError),
    /// The spare pool is exhausted; the export is read-only from here.
    EndOfLife,
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Scheme(m) => write!(f, "scheme: {m}"),
            Self::Device(e) => write!(f, "device: {e}"),
            Self::EndOfLife => write!(f, "spare pool exhausted (end of life)"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// A point-in-time snapshot of the gateway's wear state, as the tests
/// and the daemon's gauge refresh read it.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayProbe {
    /// The scheme's accounting.
    pub stats: WlStats,
    /// FNV-1a digest of the physical wear map, masked to 32 bits.
    pub wear_map_hash: u64,
    /// Pages retired to spares so far.
    pub pages_retired: u64,
    /// Spares still available.
    pub spares_remaining: u64,
    /// Captured logical writes.
    pub capture_len: u64,
    /// Whether the spare pool has been exhausted.
    pub end_of_life: bool,
}

/// The wear pipeline behind one export: device + fault engine + scheme,
/// with a capture stream on the side.
pub struct WearGateway {
    config: GatewayConfig,
    device: PcmDevice,
    engine: FaultEngine,
    scheme: Box<dyn WearLeveler>,
    capture: Vec<MemCmd>,
    end_of_life: bool,
}

impl fmt::Debug for WearGateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WearGateway")
            .field("scheme", &self.scheme.name())
            .field("pages", &self.config.pages)
            .field("capture_len", &self.capture.len())
            .field("end_of_life", &self.end_of_life)
            .finish_non_exhaustive()
    }
}

impl WearGateway {
    /// Provisions the device (data region + spare tail), fault engine,
    /// and scheme the configuration describes.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Device`] on an invalid device/fault config,
    /// [`GatewayError::Scheme`] when the scheme rejects the geometry
    /// (e.g. SR over a non-power-of-two page count).
    pub fn new(config: GatewayConfig) -> Result<Self, GatewayError> {
        let data_cfg = PcmConfig::scaled(config.pages, config.mean_endurance, config.seed);
        let fault_cfg = FaultConfig {
            spare_fraction: config.spare_fraction,
            seed: config.fault_seed,
            ..FaultConfig::default()
        };
        let domain = provision(&data_cfg, &fault_cfg).map_err(GatewayError::Device)?;
        let scheme =
            build_scheme_spec_for_region(&config.scheme, &domain.device, domain.data_pages)
                .map_err(|e| GatewayError::Scheme(e.to_string()))?;
        Ok(Self {
            config,
            device: domain.device,
            engine: domain.engine,
            scheme,
            capture: Vec::new(),
            end_of_life: false,
        })
    }

    /// The configuration this gateway was built from.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Services (and captures) one logical page write through the
    /// scheme, then lets the fault engine absorb the wear it caused.
    ///
    /// The command is captured *before* the write lands, so a capture
    /// replay re-issues exactly the writes this gateway attempted —
    /// including a final one that died mid-flight — and reconverges on
    /// the same device state.
    ///
    /// # Errors
    ///
    /// [`GatewayError::EndOfLife`] once the spare pool is exhausted
    /// (also set lazily when an absorb exhausts it); other
    /// [`PcmError`]s pass through as [`GatewayError::Device`].
    pub fn write_page(&mut self, la: LogicalPageAddr) -> Result<(), GatewayError> {
        if self.end_of_life {
            return Err(GatewayError::EndOfLife);
        }
        self.capture.push(MemCmd::write(la));
        let wrote = self.scheme.write(la, &mut self.device);
        let absorbed = self.engine.absorb(&mut self.device);
        let first_error = wrote.map(|_| ()).and(absorbed.map(|_| ()));
        match first_error {
            Ok(()) => Ok(()),
            Err(PcmError::SparesExhausted { .. }) => {
                self.end_of_life = true;
                Err(GatewayError::EndOfLife)
            }
            Err(e) => Err(GatewayError::Device(e)),
        }
    }

    /// The captured logical-write stream, oldest first.
    #[must_use]
    pub fn capture(&self) -> &[MemCmd] {
        &self.capture
    }

    /// The scheme's running statistics.
    #[must_use]
    pub fn stats(&self) -> &WlStats {
        self.scheme.stats()
    }

    /// Whether the export has reached graceful-degradation end of life.
    #[must_use]
    pub fn end_of_life(&self) -> bool {
        self.end_of_life
    }

    /// FNV-1a over the physical wear counters, masked to 32 bits so the
    /// digest survives a round trip through an f64 Prometheus gauge.
    /// Equal hashes across a live run and its replay certify equal wear
    /// maps (and the tests also compare the maps directly).
    #[must_use]
    pub fn wear_map_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in self.device.wear_counters() {
            for b in w.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
        }
        h & 0xffff_ffff
    }

    /// The raw physical wear counters (data region + spare tail).
    #[must_use]
    pub fn wear_counters(&self) -> &[u64] {
        self.device.wear_counters()
    }

    /// Snapshot of everything the daemon's gauges and the tests need.
    #[must_use]
    pub fn probe(&self) -> GatewayProbe {
        GatewayProbe {
            stats: *self.scheme.stats(),
            wear_map_hash: self.wear_map_hash(),
            pages_retired: self.device.retired_pages(),
            spares_remaining: self.device.spares_remaining(),
            capture_len: self.capture.len() as u64,
            end_of_life: self.end_of_life,
        }
    }

    /// Rebuilds a gateway from a configuration and a captured stream:
    /// a fresh pipeline with every captured write re-applied in order.
    /// Non-write commands are skipped (they carry no wear); a write
    /// that fails mid-replay fails exactly where the live run failed,
    /// and replay continues so the final state matches the live
    /// gateway's.
    ///
    /// # Errors
    ///
    /// Only construction errors surface; per-write wear errors are part
    /// of a faithful replay.
    pub fn replay(config: GatewayConfig, cmds: &[MemCmd]) -> Result<Self, GatewayError> {
        let mut gateway = Self::new(config)?;
        for cmd in cmds {
            if cmd.is_write() {
                let _ = gateway.write_page(cmd.la);
            }
        }
        Ok(gateway)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GatewayConfig {
        GatewayConfig {
            pages: 64,
            mean_endurance: 10_000,
            ..GatewayConfig::default()
        }
    }

    #[test]
    fn config_json_round_trips() {
        let cfg = GatewayConfig {
            scheme: "SR[inner=5,outer=9]".parse().unwrap(),
            ..tiny()
        };
        let back = GatewayConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
        assert!(GatewayConfig::from_json(&Json::obj([])).is_err());
    }

    #[test]
    fn replay_reproduces_the_live_wear_state() {
        let mut live = WearGateway::new(tiny()).unwrap();
        for i in 0..500u64 {
            live.write_page(LogicalPageAddr::new(i * 7 % 64)).unwrap();
        }
        let replayed = WearGateway::replay(tiny(), live.capture()).unwrap();
        assert_eq!(replayed.probe(), live.probe());
        assert_eq!(replayed.wear_counters(), live.wear_counters());
    }

    #[test]
    fn end_of_life_is_sticky() {
        // Tiny endurance so the spare pool drains fast.
        let cfg = GatewayConfig {
            pages: 64,
            mean_endurance: 40,
            ..GatewayConfig::default()
        };
        let mut gw = WearGateway::new(cfg.clone()).unwrap();
        let mut writes = 0u64;
        loop {
            match gw.write_page(LogicalPageAddr::new(writes % 64)) {
                Ok(()) => writes += 1,
                Err(GatewayError::EndOfLife) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(writes < 1_000_000, "device never wore out");
        }
        assert!(gw.end_of_life());
        assert!(matches!(
            gw.write_page(LogicalPageAddr::new(0)),
            Err(GatewayError::EndOfLife)
        ));
        // The failed attempts are captured, and replay still converges.
        let replayed = WearGateway::replay(cfg, gw.capture()).unwrap();
        assert_eq!(replayed.probe(), gw.probe());
    }
}
