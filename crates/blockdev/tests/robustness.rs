//! NBD protocol robustness: malformed frames — bad magics, truncated
//! headers, oversized declared lengths, random garbage — cost at worst
//! the offending connection. The daemon keeps serving NBD and
//! `twl-wire` traffic throughout.
//!
//! One shared in-process daemon serves every test in this binary; its
//! thread dies with the process.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::OnceLock;

use proptest::prelude::*;

use twl_blockdev::{nbd, BlockServer, BlockdevConfig, GatewayConfig, NbdClient};

struct Addrs {
    data: String,
    control: String,
}

fn shared() -> &'static Addrs {
    static ADDRS: OnceLock<Addrs> = OnceLock::new();
    ADDRS.get_or_init(|| {
        let config = BlockdevConfig {
            gateway: GatewayConfig {
                pages: 64,
                mean_endurance: 1_000_000,
                ..GatewayConfig::default()
            },
            bytes_per_page: 512,
            state_dir: None,
            idle_timeout_ms: 2_000,
        };
        let server = BlockServer::bind(&config, "127.0.0.1:0", "127.0.0.1:0").expect("bind daemon");
        let addrs = Addrs {
            data: server.data_addr().to_string(),
            control: server.control_addr().to_string(),
        };
        std::thread::spawn(move || {
            let _ = server.run();
        });
        addrs
    })
}

/// Writes raw bytes to the data port, half-closes, and drains the
/// server's reply (greeting included) until it hangs up.
fn poke(bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(&shared().data).expect("connect raw");
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

/// A full handshake plus one write must still succeed.
fn assert_still_serving() {
    let mut client = NbdClient::connect(shared().data.as_str()).expect("handshake");
    client.write(0, &[7u8; 512]).expect("write");
    client.disconnect().expect("disconnect");
}

/// Client flags + an `EXPORT_NAME` option, the prefix of a valid
/// handshake, so transmission-phase garbage can be appended.
fn handshake_prefix() -> Vec<u8> {
    let mut bytes = Vec::new();
    let flags = u32::from(nbd::FLAG_FIXED_NEWSTYLE | nbd::FLAG_NO_ZEROES);
    bytes.extend_from_slice(&flags.to_be_bytes());
    bytes.extend_from_slice(&nbd::IHAVEOPT.to_be_bytes());
    bytes.extend_from_slice(&nbd::OPT_EXPORT_NAME.to_be_bytes());
    bytes.extend_from_slice(&0u32.to_be_bytes());
    bytes
}

#[test]
fn bad_option_magic_costs_only_that_connection() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0u32.to_be_bytes()); // client flags
    bytes.extend_from_slice(&0xdead_beef_dead_beefu64.to_be_bytes());
    let reply = poke(&bytes);
    assert!(reply.len() >= 18, "greeting must have been sent");
    assert_still_serving();
}

#[test]
fn bad_request_magic_costs_only_that_connection() {
    let mut bytes = handshake_prefix();
    bytes.extend_from_slice(&0xbaad_f00du32.to_be_bytes());
    bytes.extend_from_slice(&[0u8; 24]);
    poke(&bytes);
    assert_still_serving();
}

#[test]
fn oversized_write_length_is_refused_without_allocation() {
    // A WRITE declaring u32::MAX bytes: the guard fires on the declared
    // length before any payload buffer exists, the connection dies, the
    // daemon survives.
    let mut bytes = handshake_prefix();
    bytes.extend_from_slice(&nbd::REQUEST_MAGIC.to_be_bytes());
    bytes.extend_from_slice(&0u16.to_be_bytes());
    bytes.extend_from_slice(&nbd::CMD_WRITE.to_be_bytes());
    bytes.extend_from_slice(&1u64.to_be_bytes());
    bytes.extend_from_slice(&0u64.to_be_bytes());
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    poke(&bytes);
    assert_still_serving();
}

#[test]
fn truncated_request_header_costs_only_that_connection() {
    let mut bytes = handshake_prefix();
    bytes.extend_from_slice(&nbd::REQUEST_MAGIC.to_be_bytes());
    bytes.extend_from_slice(&[0u8; 5]); // 5 of the remaining 24 bytes
    poke(&bytes);
    assert_still_serving();
}

#[test]
fn out_of_range_requests_get_errno_not_disconnect() {
    let mut client = NbdClient::connect(shared().data.as_str()).expect("handshake");
    let export = client.export_bytes();
    let err = client.read(export, 512).expect_err("read past the end");
    assert!(matches!(
        err,
        twl_blockdev::NbdError::Server { errno } if errno == nbd::EINVAL
    ));
    // The same connection keeps working after the error reply.
    client.write(0, &[1u8; 512]).expect("write after EINVAL");
    client.disconnect().expect("disconnect");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary byte blobs thrown at the data port — empty, partial
    /// handshakes, wild magics — never take the daemon down.
    #[test]
    fn random_bytes_never_kill_the_daemon(
        bytes in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        let _ = poke(&bytes);
        let mut client = NbdClient::connect(shared().data.as_str()).expect("handshake");
        prop_assert!(client.write(0, &[5u8; 512]).is_ok());
        let _ = client.disconnect();
    }

    /// Garbage appended after a valid handshake — transmission-phase
    /// corruption — costs exactly that connection.
    #[test]
    fn transmission_garbage_never_kills_the_daemon(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let mut frame = handshake_prefix();
        frame.extend_from_slice(&bytes);
        let _ = poke(&frame);
        let mut client = NbdClient::connect(shared().data.as_str()).expect("handshake");
        prop_assert!(client.write(0, &[6u8; 512]).is_ok());
        let _ = client.disconnect();
    }
}

#[test]
fn control_port_survives_nbd_garbage_too() {
    poke(b"definitely not NBD");
    let mut ctl = twl_service::Client::connect(&shared().control).expect("twl-wire handshake");
    assert!(ctl
        .metrics()
        .expect("metrics")
        .contains("twl_blockdev_export_bytes"));
}
