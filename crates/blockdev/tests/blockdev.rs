//! End-to-end: a live NBD session against `twl-blockd`'s server, the
//! capture it records, and the two guarantees the capture buys —
//! offline replay reproduces the wear state bit for bit, and a killed
//! daemon resumes from its snapshot without data loss.

use std::fs::{self, File};
use std::path::PathBuf;
use std::thread::{self, JoinHandle};

use twl_blockdev::{
    drive_mixed, BlockServer, BlockdevConfig, GatewayConfig, NbdClient, ShutdownHandle, WearGateway,
};
use twl_service::Client;
use twl_telemetry::prom::parse_exposition;
use twl_workloads::read_trace;

fn test_config(state_dir: Option<PathBuf>) -> BlockdevConfig {
    BlockdevConfig {
        gateway: GatewayConfig {
            pages: 256,
            mean_endurance: 50_000,
            seed: 11,
            scheme: "TWL_swp".parse().expect("scheme label"),
            spare_fraction: 0.05,
            fault_seed: 0xBEEF,
        },
        bytes_per_page: 512,
        state_dir,
        idle_timeout_ms: 0,
    }
}

struct Daemon {
    data_addr: String,
    control_addr: String,
    handle: ShutdownHandle,
    thread: JoinHandle<std::io::Result<()>>,
}

fn start(config: &BlockdevConfig) -> Daemon {
    let server = BlockServer::bind(config, "127.0.0.1:0", "127.0.0.1:0").expect("bind twl-blockd");
    let data_addr = server.data_addr().to_string();
    let control_addr = server.control_addr().to_string();
    let handle = server.shutdown_handle();
    let thread = thread::spawn(move || server.run());
    Daemon {
        data_addr,
        control_addr,
        handle,
        thread,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twl-blockdev-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn live_session_capture_replays_bit_identically() {
    let dir = temp_dir("replay");
    let config = test_config(Some(dir.clone()));
    let daemon = start(&config);

    let mut client = NbdClient::connect(daemon.data_addr.as_str()).expect("connect");
    assert_eq!(client.export_bytes(), 256 * 512);
    let report = drive_mixed(&mut client, 600, 42).expect("drive");
    assert!(report.writes > 0, "the mix must contain writes");
    client.write(0, &[0xA5; 1024]).expect("direct write");
    client.flush().expect("flush");
    client.disconnect().expect("disconnect");

    // Disconnect persisted; wait for the connection thread to finish
    // by probing until the capture stops growing is unnecessary — the
    // client's DISC reply ordering guarantees the server saw it, but
    // the persist runs on the connection thread, so poll the file.
    let trace_path = dir.join("capture.trace");
    for _ in 0..200 {
        if trace_path.exists() {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    let live = daemon.handle.probe();
    let live_wear = daemon.handle.wear_counters();
    assert!(live.stats.logical_writes > 0);

    // Offline replay of the captured trace: bit-identical wear map and
    // WlStats.
    let cmds = read_trace(File::open(&trace_path).expect("capture.trace")).expect("trace codec");
    assert_eq!(cmds.len() as u64, live.capture_len);
    let replayed = WearGateway::replay(config.gateway.clone(), &cmds).expect("replay");
    assert_eq!(replayed.probe(), live, "replayed probe != live probe");
    assert_eq!(
        replayed.wear_counters(),
        live_wear.as_slice(),
        "replayed wear map != live wear map"
    );

    daemon.handle.shutdown();
    daemon.thread.join().expect("join").expect("run");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_from_snapshot_without_data_loss() {
    let dir = temp_dir("resume");
    let config = test_config(Some(dir.clone()));
    let daemon = start(&config);

    let mut client = NbdClient::connect(daemon.data_addr.as_str()).expect("connect");
    drive_mixed(&mut client, 300, 7).expect("drive");
    let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    client.write(4096, &payload).expect("write payload");
    client.flush().expect("flush");
    let at_flush = daemon.handle.probe();

    // "Kill": abandon the daemon without shutdown — no final persist, no
    // DISC. The state dir holds exactly the flush-time snapshot.
    drop(client);
    drop(daemon);

    let revived = start(&config);
    let mut client = NbdClient::connect(revived.data_addr.as_str()).expect("reconnect");
    assert_eq!(
        client.read(4096, 2048).expect("read back"),
        payload,
        "data written before the flush must survive the restart"
    );
    assert_eq!(
        revived.handle.probe(),
        at_flush,
        "the replayed wear pipeline must match the flush-time state"
    );

    // The revived daemon keeps serving writes and wearing the device.
    client.write(0, &[1u8; 512]).expect("write after resume");
    assert!(revived.handle.probe().stats.logical_writes > at_flush.stats.logical_writes);
    client.disconnect().expect("disconnect");
    revived.handle.shutdown();
    revived.thread.join().expect("join").expect("run");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_state_dir_is_refused() {
    let dir = temp_dir("mismatch");
    let config = test_config(Some(dir.clone()));
    let daemon = start(&config);
    let mut client = NbdClient::connect(daemon.data_addr.as_str()).expect("connect");
    client.write(0, &[9u8; 512]).expect("write");
    client.flush().expect("flush");
    client.disconnect().expect("disconnect");
    daemon.handle.shutdown();
    daemon.thread.join().expect("join").expect("run");

    // Same dir, different geometry: the daemon must refuse, not
    // silently reinterpret the snapshot.
    let mut other = test_config(Some(dir.clone()));
    other.gateway.seed += 1;
    assert!(BlockServer::bind(&other, "127.0.0.1:0", "127.0.0.1:0").is_err());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn control_port_speaks_twl_wire() {
    let config = test_config(None);
    let daemon = start(&config);

    let mut nbd = NbdClient::connect(daemon.data_addr.as_str()).expect("nbd connect");
    nbd.write(512, &[3u8; 512]).expect("write");

    let mut ctl = Client::connect(&daemon.control_addr).expect("twl-wire handshake");
    assert!(ctl.status(None).expect("status").is_empty());
    let page = ctl.metrics().expect("metrics");
    let samples = parse_exposition(&page).expect("metrics page must lint clean");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(find("twl_blockdev_export_bytes"), (256 * 512) as f64);
    assert!(find("twl_blockdev_wear_logical_writes") >= 1.0);
    assert!(find("twl_blockdev_capture_cmds") >= 1.0);

    nbd.disconnect().expect("disconnect");
    ctl.shutdown().expect("shutdown");
    daemon.thread.join().expect("join").expect("run");
}
