//! Capture-format round trip, as a property: for arbitrary block-write
//! streams, serializing the gateway's capture through the
//! `twl-workloads` trace codec and replaying the deserialized stream
//! through a fresh gateway reproduces the wear map and `WlStats` bit
//! for bit.
//!
//! This is the schema-stability test for `capture.trace`: the on-disk
//! bytes are the 9-byte-per-command binary codec, written here through
//! the streaming `TraceWriter` (the daemon's appender) and read back
//! with `read_trace` (the replayer's reader), so any drift between the
//! two halves of the codec fails the property.

use proptest::prelude::*;

use twl_blockdev::{BlockGeometry, GatewayConfig, WearGateway};
use twl_pcm::LogicalPageAddr;
use twl_workloads::{read_trace, TraceWriter};

fn config(scheme: &str) -> GatewayConfig {
    GatewayConfig {
        pages: 64,
        mean_endurance: 20_000,
        seed: 3,
        scheme: scheme.parse().expect("scheme label"),
        spare_fraction: 0.05,
        fault_seed: 0xFA17,
    }
}

const GEOMETRY: BlockGeometry = BlockGeometry {
    bytes_per_page: 512,
    data_pages: 64,
};

/// Applies a stream of (offset, len) block writes the way the server
/// does — one gateway write per touched page — and returns the gateway.
fn apply(cfg: &GatewayConfig, blocks: &[(u64, u64)]) -> WearGateway {
    let mut gateway = WearGateway::new(cfg.clone()).expect("build gateway");
    for &(offset, len) in blocks {
        for page in GEOMETRY.pages_touched(offset, len) {
            // End of life mid-stream is a legal outcome; the capture
            // still records the attempt, exactly like the live server.
            let _ = gateway.write_page(LogicalPageAddr::new(page));
        }
    }
    gateway
}

/// Strategy: in-range, possibly page-straddling block writes — an
/// offset anywhere in the export and a length up to four pages,
/// clamped to the export's end.
fn block_writes() -> impl Strategy<Value = Vec<(u64, u64)>> {
    let export = GEOMETRY.export_bytes();
    proptest::collection::vec(
        (0..export, 1..4 * 512 + 1u64)
            .prop_map(move |(offset, len)| (offset, len.min(export - offset))),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn capture_serialize_replay_is_bit_identical(
        blocks in block_writes(),
        scheme_idx in 0usize..4,
    ) {
        let scheme = ["TWL_swp", "SR", "BWL", "NOWL"][scheme_idx];
        let cfg = config(scheme);
        let live = apply(&cfg, &blocks);

        // Serialize the capture through the streaming writer the daemon
        // uses, then read it back with the replayer's reader.
        let mut writer = TraceWriter::new(Vec::new());
        for &cmd in live.capture() {
            writer.append(cmd).expect("append");
        }
        prop_assert_eq!(writer.written(), live.capture().len() as u64);
        let bytes = writer.into_inner();
        prop_assert_eq!(bytes.len() as u64, 9 * live.capture().len() as u64);
        let decoded = read_trace(bytes.as_slice()).expect("decode");
        prop_assert_eq!(decoded.as_slice(), live.capture());

        // Replay the deserialized stream: same wear map, same WlStats.
        let replayed = WearGateway::replay(cfg, &decoded).expect("replay");
        prop_assert_eq!(replayed.probe(), live.probe());
        prop_assert_eq!(replayed.wear_counters(), live.wear_counters());
        prop_assert_eq!(replayed.stats(), live.stats());
    }
}
