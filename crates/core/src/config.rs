//! TWL configuration.

use crate::PairingStrategy;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned for invalid [`TwlConfig`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwlConfigError(String);

impl fmt::Display for TwlConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid TWL configuration: {}", self.0)
    }
}

impl Error for TwlConfigError {}

/// Configuration of [`TossUpWearLeveling`](crate::TossUpWearLeveling).
///
/// Defaults follow the paper's evaluated setting (Table 1 / §5.2):
/// toss-up interval 32, inter-pair swap interval 128, strong-weak
/// pairing, the optimized two-write swap, and toss-up probabilities from
/// the factory-tested (initial) endurance table.
///
/// # Examples
///
/// ```
/// use twl_core::{PairingStrategy, TwlConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = TwlConfig::builder()
///     .toss_up_interval(16)
///     .pairing(PairingStrategy::Adjacent)
///     .build()?;
/// assert_eq!(config.toss_up_interval, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwlConfig {
    /// Trigger the toss-up every this many writes to a page (§4.3).
    pub toss_up_interval: u64,
    /// Swap the written page with a random page every this many global
    /// writes (§4.1; paper fixes 128, matching Security Refresh).
    pub inter_pair_swap_interval: u64,
    /// How pages are bonded into toss-up pairs.
    pub pairing: PairingStrategy,
    /// Use the optimized two-write "swap-then-write" (§4.1). Disabling
    /// it models the naive three-write swap as an ablation.
    pub optimized_swap: bool,
    /// Toss on *remaining* endurance instead of factory-tested initial
    /// endurance (ablation; the paper uses initial).
    pub dynamic_endurance: bool,
    /// Seed for the toss-up RNG and inter-pair target selection.
    pub rng_seed: u64,
    /// Latency of the hardware RNG in cycles (Table 1: 4).
    pub rng_latency: u64,
    /// Latency of the TWL control logic in cycles (Table 1: 5).
    pub control_latency: u64,
    /// Latency of one table access in cycles (Table 1: 10).
    pub table_latency: u64,
}

impl TwlConfig {
    /// Starts building a configuration from the paper's defaults.
    #[must_use]
    pub fn builder() -> TwlConfigBuilder {
        TwlConfigBuilder::new()
    }

    /// The paper's evaluated configuration (toss-up interval 32,
    /// inter-pair interval 128, strong-weak pairing).
    #[must_use]
    pub fn dac17() -> Self {
        Self::builder().build().expect("defaults are valid")
    }

    /// The naive adjacent-pairing variant evaluated as `TWL_ap` in
    /// Fig. 6.
    #[must_use]
    pub fn dac17_adjacent() -> Self {
        Self::builder()
            .pairing(PairingStrategy::Adjacent)
            .build()
            .expect("defaults are valid")
    }

    /// Engine latency charged on a write that does *not* toss
    /// (SWPT + RT/ET lookups + control).
    #[must_use]
    pub fn base_write_latency(&self) -> u64 {
        self.control_latency + 2 * self.table_latency
    }

    /// Engine latency charged on a tossing write (adds the RNG).
    #[must_use]
    pub fn toss_write_latency(&self) -> u64 {
        self.base_write_latency() + self.rng_latency
    }
}

impl Default for TwlConfig {
    fn default() -> Self {
        Self::dac17()
    }
}

/// Builder for [`TwlConfig`].
#[derive(Debug, Clone)]
pub struct TwlConfigBuilder {
    config: TwlConfig,
}

impl TwlConfigBuilder {
    /// Creates a builder seeded with the paper's defaults.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: TwlConfig {
                toss_up_interval: 32,
                inter_pair_swap_interval: 128,
                pairing: PairingStrategy::StrongWeak,
                optimized_swap: true,
                dynamic_endurance: false,
                rng_seed: 0x7055_5057,
                rng_latency: 4,
                control_latency: 5,
                table_latency: 10,
            },
        }
    }

    /// Sets the toss-up interval (writes per page between tosses).
    pub fn toss_up_interval(&mut self, writes: u64) -> &mut Self {
        self.config.toss_up_interval = writes;
        self
    }

    /// Sets the inter-pair swap interval (global writes between swaps).
    pub fn inter_pair_swap_interval(&mut self, writes: u64) -> &mut Self {
        self.config.inter_pair_swap_interval = writes;
        self
    }

    /// Sets the pairing strategy.
    pub fn pairing(&mut self, pairing: PairingStrategy) -> &mut Self {
        self.config.pairing = pairing;
        self
    }

    /// Enables/disables the optimized two-write swap.
    pub fn optimized_swap(&mut self, enabled: bool) -> &mut Self {
        self.config.optimized_swap = enabled;
        self
    }

    /// Enables tossing on remaining (dynamic) endurance.
    pub fn dynamic_endurance(&mut self, enabled: bool) -> &mut Self {
        self.config.dynamic_endurance = enabled;
        self
    }

    /// Sets the RNG seed.
    pub fn rng_seed(&mut self, seed: u64) -> &mut Self {
        self.config.rng_seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TwlConfigError`] if either interval is zero.
    pub fn build(&self) -> Result<TwlConfig, TwlConfigError> {
        if self.config.toss_up_interval == 0 {
            return Err(TwlConfigError("toss-up interval must be positive".into()));
        }
        if self.config.inter_pair_swap_interval == 0 {
            return Err(TwlConfigError(
                "inter-pair swap interval must be positive".into(),
            ));
        }
        Ok(self.config.clone())
    }
}

impl Default for TwlConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = TwlConfig::dac17();
        assert_eq!(c.toss_up_interval, 32);
        assert_eq!(c.inter_pair_swap_interval, 128);
        assert_eq!(c.pairing, PairingStrategy::StrongWeak);
        assert!(c.optimized_swap);
        assert!(!c.dynamic_endurance);
        assert_eq!(c.rng_latency, 4);
        assert_eq!(c.control_latency, 5);
        assert_eq!(c.table_latency, 10);
    }

    #[test]
    fn latencies_compose() {
        let c = TwlConfig::dac17();
        assert_eq!(c.base_write_latency(), 25);
        assert_eq!(c.toss_write_latency(), 29);
    }

    #[test]
    fn zero_intervals_rejected() {
        assert!(TwlConfig::builder().toss_up_interval(0).build().is_err());
        assert!(TwlConfig::builder()
            .inter_pair_swap_interval(0)
            .build()
            .is_err());
    }

    #[test]
    fn adjacent_preset() {
        assert_eq!(
            TwlConfig::dac17_adjacent().pairing,
            PairingStrategy::Adjacent
        );
    }
}
