#![warn(missing_docs)]

//! # Toss-up Wear Leveling (TWL)
//!
//! The primary contribution of *Toss-up Wear Leveling: Protecting
//! Phase-Change Memories from Inconsistent Write Patterns* (Zhang & Sun,
//! DAC 2017), implemented as a [`WearLeveler`](twl_wl_core::WearLeveler).
//!
//! ## How it works (paper §4)
//!
//! Prior PV-aware schemes *predict* hot addresses and map them to strong
//! pages; a malicious program that reverses its write distribution after
//! every swap phase turns that prediction into a weapon (§3). TWL never
//! predicts. Instead:
//!
//! 1. **Toss-up pairs** — every strong page is bonded with a weak page
//!    ([`PairTable`], built by [`PairingStrategy::StrongWeak`] sorting).
//! 2. **Toss-up** — when a write arrives at either page of a pair, a
//!    random draw sends it to page A with probability
//!    `E_A / (E_A + E_B)`, so the *stronger page takes proportionally
//!    more wear no matter what the program does*.
//! 3. **Swap judge** — if the toss picks the page that does not currently
//!    hold the data, the pair swaps first ("swap-then-write", optimized
//!    from 3 device writes down to 2).
//! 4. **Interval-triggered toss-up** — the toss only runs every
//!    [`TwlConfig::toss_up_interval`] writes to a page (paper picks 32,
//!    ≈2.2 % extra writes).
//! 5. **Inter-pair swap** — every
//!    [`TwlConfig::inter_pair_swap_interval`] (=128) writes the written
//!    page swaps with a uniformly random page, spreading traffic across
//!    pairs.
//!
//! ## Example
//!
//! ```
//! use twl_core::{TossUpWearLeveling, TwlConfig};
//! use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
//! use twl_wl_core::WearLeveler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pcm = PcmConfig::builder().pages(128).mean_endurance(10_000).seed(1).build()?;
//! let mut device = PcmDevice::new(&pcm);
//! let twl_config = TwlConfig::builder().toss_up_interval(32).build()?;
//! let mut twl = TossUpWearLeveling::new(&twl_config, device.endurance_map());
//!
//! for i in 0..1000u64 {
//!     twl.write(LogicalPageAddr::new(i % 128), &mut device)?;
//! }
//! assert!(twl.stats().device_writes >= 1000);
//! # Ok(())
//! # }
//! ```

mod config;
mod engine;
mod overhead;
mod pairing;

pub use config::{TwlConfig, TwlConfigBuilder, TwlConfigError};
pub use engine::{swap_probability, TossUpWearLeveling};
pub use overhead::TwlOverhead;
pub use pairing::{PairTable, PairingStrategy};
