//! Toss-up pair construction (the SWPT of Fig. 5).

use serde::{Deserialize, Serialize};
use twl_pcm::{EnduranceMap, PhysicalPageAddr};
use twl_rng::{SimRng, Xoshiro256StarStar};

/// How physical pages are bonded into toss-up pairs.
///
/// §4.3 proposes **Strong-Weak Pairing** to minimize swap frequency and
/// even out per-pair total endurance; the naive alternative evaluated as
/// `TWL_ap` in Fig. 6 bonds physically adjacent pages. A uniformly random
/// bonding is included as an extra ablation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PairingStrategy {
    /// Sort pages by endurance; bond the k-th strongest with the k-th
    /// weakest (paper §4.3, `TWL_swp`).
    StrongWeak,
    /// Bond physically adjacent pages `(2i, 2i+1)` (paper Fig. 6,
    /// `TWL_ap`).
    Adjacent,
    /// Bond uniformly random pages (ablation).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

impl PairingStrategy {
    /// The scheme-name suffix the paper uses for this strategy.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::StrongWeak => "swp",
            Self::Adjacent => "ap",
            Self::Random { .. } => "rnd",
        }
    }
}

/// The strong-weak pair table (SWPT): a fixed involution bonding every
/// physical page with exactly one partner.
///
/// Pairs are *physical* bonds: inter-pair swaps move logical data between
/// frames but never rewire partners.
///
/// # Examples
///
/// ```
/// use twl_core::{PairTable, PairingStrategy};
/// use twl_pcm::{EnduranceMap, PhysicalPageAddr};
///
/// let endurance = EnduranceMap::from_values(vec![10, 40, 20, 30]);
/// let pairs = PairTable::build(&endurance, PairingStrategy::StrongWeak);
/// // Weakest (PA0, E=10) bonds with strongest (PA1, E=40).
/// assert_eq!(pairs.partner(PhysicalPageAddr::new(0)).index(), 1);
/// assert_eq!(pairs.partner(PhysicalPageAddr::new(2)).index(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairTable {
    partner: Vec<u64>,
}

impl PairTable {
    /// Builds the pair table for the given endurance map and strategy.
    ///
    /// # Panics
    ///
    /// Panics if the map has fewer than 2 pages or an odd page count.
    #[must_use]
    pub fn build(endurance: &EnduranceMap, strategy: PairingStrategy) -> Self {
        let n = endurance.len();
        assert!(n >= 2, "pairing needs at least 2 pages");
        assert!(n.is_multiple_of(2), "pairing needs an even page count");
        twl_telemetry::counter!("twl.core.pair_builds").inc();
        let mut partner = vec![0u64; n];
        match strategy {
            PairingStrategy::StrongWeak => {
                let sorted = endurance.sorted_by_endurance();
                for k in 0..n / 2 {
                    let weak = sorted[k];
                    let strong = sorted[n - 1 - k];
                    partner[weak.as_usize()] = strong.index();
                    partner[strong.as_usize()] = weak.index();
                }
            }
            PairingStrategy::Adjacent => {
                for i in (0..n).step_by(2) {
                    partner[i] = (i + 1) as u64;
                    partner[i + 1] = i as u64;
                }
            }
            PairingStrategy::Random { seed } => {
                let mut order: Vec<u64> = (0..n as u64).collect();
                let mut rng = Xoshiro256StarStar::seed_from(seed);
                // Fisher-Yates shuffle, then bond consecutive entries.
                for i in (1..n).rev() {
                    let j = rng.next_bounded(i as u64 + 1) as usize;
                    order.swap(i, j);
                }
                for pair in order.chunks(2) {
                    partner[pair[0] as usize] = pair[1];
                    partner[pair[1] as usize] = pair[0];
                }
            }
        }
        Self { partner }
    }

    /// Number of pages (twice the number of pairs).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.partner.len() as u64
    }

    /// Whether the table is empty (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partner.is_empty()
    }

    /// The bonded partner of a physical page.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is out of range.
    #[must_use]
    pub fn partner(&self, pa: PhysicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(self.partner[pa.as_usize()])
    }

    /// Iterates each pair once, as `(low_member, high_member)`.
    pub fn pairs(&self) -> impl Iterator<Item = (PhysicalPageAddr, PhysicalPageAddr)> + '_ {
        self.partner.iter().enumerate().filter_map(|(i, &p)| {
            if (i as u64) < p {
                Some((PhysicalPageAddr::new(i as u64), PhysicalPageAddr::new(p)))
            } else {
                None
            }
        })
    }

    /// Verifies the involution invariant: every page has exactly one
    /// partner distinct from itself, symmetrically.
    #[must_use]
    pub fn is_valid_involution(&self) -> bool {
        self.partner.iter().enumerate().all(|(i, &p)| {
            p != i as u64
                && (p as usize) < self.partner.len()
                && self.partner[p as usize] == i as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    fn map(n: u64, seed: u64) -> EnduranceMap {
        let c = PcmConfig::builder()
            .pages(n)
            .mean_endurance(100_000)
            .seed(seed)
            .build()
            .unwrap();
        EnduranceMap::generate(&c)
    }

    #[test]
    fn all_strategies_build_involutions() {
        let endurance = map(256, 3);
        for strategy in [
            PairingStrategy::StrongWeak,
            PairingStrategy::Adjacent,
            PairingStrategy::Random { seed: 5 },
        ] {
            let pairs = PairTable::build(&endurance, strategy);
            assert!(pairs.is_valid_involution(), "strategy {strategy:?}");
            assert_eq!(pairs.pairs().count(), 128);
        }
    }

    #[test]
    fn strong_weak_minimizes_pair_sum_spread() {
        let endurance = map(1024, 7);
        let swp = PairTable::build(&endurance, PairingStrategy::StrongWeak);
        let ap = PairTable::build(&endurance, PairingStrategy::Adjacent);
        let spread = |t: &PairTable| {
            let sums: Vec<u64> = t
                .pairs()
                .map(|(a, b)| endurance.endurance(a) + endurance.endurance(b))
                .collect();
            (*sums.iter().max().unwrap() - *sums.iter().min().unwrap()) as f64
        };
        assert!(
            spread(&swp) < spread(&ap) / 2.0,
            "SWP should concentrate pair sums: swp={} ap={}",
            spread(&swp),
            spread(&ap)
        );
    }

    #[test]
    fn strong_weak_bonds_extremes() {
        let endurance = EnduranceMap::from_values(vec![5, 1, 9, 7, 3, 11]);
        let pairs = PairTable::build(&endurance, PairingStrategy::StrongWeak);
        // Sorted: PA1(1) PA4(3) PA0(5) PA3(7) PA2(9) PA5(11).
        assert_eq!(pairs.partner(PhysicalPageAddr::new(1)).index(), 5);
        assert_eq!(pairs.partner(PhysicalPageAddr::new(4)).index(), 2);
        assert_eq!(pairs.partner(PhysicalPageAddr::new(0)).index(), 3);
    }

    #[test]
    fn adjacent_bonds_neighbours() {
        let endurance = map(8, 1);
        let pairs = PairTable::build(&endurance, PairingStrategy::Adjacent);
        for i in (0..8).step_by(2) {
            assert_eq!(pairs.partner(PhysicalPageAddr::new(i)).index(), i + 1);
        }
    }

    #[test]
    fn random_pairing_is_seed_deterministic() {
        let endurance = map(64, 2);
        let a = PairTable::build(&endurance, PairingStrategy::Random { seed: 9 });
        let b = PairTable::build(&endurance, PairingStrategy::Random { seed: 9 });
        let c = PairTable::build(&endurance, PairingStrategy::Random { seed: 10 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "even page count")]
    fn odd_pages_panic() {
        let endurance = EnduranceMap::from_values(vec![1, 2, 3]);
        let _ = PairTable::build(&endurance, PairingStrategy::Adjacent);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use twl_pcm::PcmConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every strategy yields a valid involution on any even-sized
        /// endurance map.
        #[test]
        fn strategies_always_produce_involutions(
            pairs in 1u64..200,
            seed in any::<u64>(),
            strategy_pick in 0u8..3,
        ) {
            let pages = pairs * 2;
            let pcm = PcmConfig::builder()
                .pages(pages)
                .mean_endurance(50_000)
                .seed(seed)
                .build()
                .expect("valid config");
            let endurance = EnduranceMap::generate(&pcm);
            let strategy = match strategy_pick {
                0 => PairingStrategy::StrongWeak,
                1 => PairingStrategy::Adjacent,
                _ => PairingStrategy::Random { seed },
            };
            let table = PairTable::build(&endurance, strategy);
            prop_assert!(table.is_valid_involution());
            prop_assert_eq!(table.pairs().count() as u64, pairs);
        }

        /// Strong-weak pairing minimizes the spread of pair endurance
        /// sums versus adjacent pairing, for any PV draw large enough
        /// for the statistics to bite.
        #[test]
        fn swp_pair_sums_are_tighter_than_adjacent(seed in any::<u64>()) {
            let pcm = PcmConfig::builder()
                .pages(512)
                .mean_endurance(100_000)
                .seed(seed)
                .build()
                .expect("valid config");
            let endurance = EnduranceMap::generate(&pcm);
            let spread = |strategy| {
                let table = PairTable::build(&endurance, strategy);
                let sums: Vec<u64> = table
                    .pairs()
                    .map(|(a, b)| endurance.endurance(a) + endurance.endurance(b))
                    .collect();
                (*sums.iter().max().expect("non-empty")
                    - *sums.iter().min().expect("non-empty")) as f64
            };
            prop_assert!(
                spread(PairingStrategy::StrongWeak) < spread(PairingStrategy::Adjacent)
            );
        }
    }
}
