//! The TWL engine: toss-up, swap judge, inter-pair swap (Fig. 4 / 5).

use crate::{PairTable, TwlConfig};
use twl_pcm::{EnduranceMap, LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_rng::{RngBuffer, SimRng, Xoshiro256StarStar};
use twl_wl_core::{
    BatchOutcome, ReadOutcome, RemappingTable, WearLeveler, WlStats, WriteCounterTable,
    WriteOutcome,
};

/// Telemetry handles resolved once at construction.
///
/// The `counter!`/`histogram!` macros cache per call site, but even the
/// cached path is a `OnceLock` load per write; at 10⁹-write lifetimes
/// that is measurable. Struct fields make the handle loads free.
#[derive(Debug, Clone, Copy)]
struct EngineMetrics {
    writes: &'static twl_telemetry::Counter,
    toss_ups: &'static twl_telemetry::Counter,
    toss_swaps: &'static twl_telemetry::Counter,
    inter_pair_swaps: &'static twl_telemetry::Counter,
    blocking_cycles: &'static twl_telemetry::Histogram,
}

impl EngineMetrics {
    fn resolve() -> Self {
        Self {
            writes: twl_telemetry::counter!("twl.core.writes"),
            toss_ups: twl_telemetry::counter!("twl.core.toss_ups"),
            toss_swaps: twl_telemetry::counter!("twl.core.toss_swaps"),
            inter_pair_swaps: twl_telemetry::counter!("twl.core.inter_pair_swaps"),
            blocking_cycles: twl_telemetry::histogram!("twl.core.blocking_cycles"),
        }
    }
}

/// Closed-form per-toss swap probability (paper Eq. 1/2).
///
/// With a pair `(A, B)`, `p` the probability a write addresses the page
/// currently holding A's data, and endurance `e_a ≥ 0`, `e_b ≥ 0`:
///
/// `Prob(swap) = p·E_B/(E_A+E_B) + (1−p)·E_A/(E_A+E_B)`
///
/// The four cases of §4.2 fall out directly; see the tests.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or both endurances are zero.
///
/// # Examples
///
/// ```
/// use twl_core::swap_probability;
///
/// // Case-1: equal endurance → 1/2 regardless of p.
/// assert!((swap_probability(0.9, 100, 100) - 0.5).abs() < 1e-12);
/// // Case-2: E_A >> E_B and p → 1 → no swaps.
/// assert!(swap_probability(1.0, 1_000_000, 1) < 1e-5);
/// ```
#[must_use]
pub fn swap_probability(p: f64, e_a: u64, e_b: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let den = e_a as f64 + e_b as f64;
    assert!(den > 0.0, "at least one endurance must be positive");
    p * e_b as f64 / den + (1.0 - p) * e_a as f64 / den
}

/// Toss-up Wear Leveling — the paper's scheme (§4).
///
/// See the [crate-level docs](crate) for the algorithm. Construct with
/// [`TossUpWearLeveling::new`] from a [`TwlConfig`] and the device's
/// factory endurance map, then drive it through the
/// [`WearLeveler`] trait.
#[derive(Debug, Clone)]
pub struct TossUpWearLeveling {
    config: TwlConfig,
    rt: RemappingTable,
    wct: WriteCounterTable,
    pairs: PairTable,
    /// Factory-tested endurance per physical page (the ET of Fig. 5).
    initial_endurance: Vec<u64>,
    /// The event RNG behind a FIFO prefetch buffer: batch runs generate
    /// their expected draws in one bulk pass, while the observed stream
    /// stays draw-for-draw identical to the bare generator's — the
    /// scalar and batched paths share one pinned sequence.
    rng: RngBuffer<Xoshiro256StarStar>,
    global_writes: u64,
    toss_ups: u64,
    inter_pair_swaps: u64,
    stats: WlStats,
    name: String,
    metrics: EngineMetrics,
}

impl TossUpWearLeveling {
    /// Creates the scheme over the device described by `endurance`.
    ///
    /// # Panics
    ///
    /// Panics if the endurance map has fewer than 2 pages or an odd page
    /// count (pairing requires bonding every page).
    #[must_use]
    pub fn new(config: &TwlConfig, endurance: &EnduranceMap) -> Self {
        let pairs = PairTable::build(endurance, config.pairing);
        let n = endurance.len() as u64;
        Self {
            config: config.clone(),
            rt: RemappingTable::identity(n),
            wct: WriteCounterTable::new(n),
            pairs,
            initial_endurance: endurance.iter().map(|(_, e)| e).collect(),
            rng: RngBuffer::new(Xoshiro256StarStar::seed_from(config.rng_seed)),
            global_writes: 0,
            toss_ups: 0,
            inter_pair_swaps: 0,
            stats: WlStats::new(),
            name: format!("TWL_{}", config.pairing.label()),
            metrics: EngineMetrics::resolve(),
        }
    }

    /// The configuration the scheme runs with.
    #[must_use]
    pub fn config(&self) -> &TwlConfig {
        &self.config
    }

    /// Number of toss-ups performed so far.
    #[must_use]
    pub fn toss_ups(&self) -> u64 {
        self.toss_ups
    }

    /// Number of inter-pair swaps performed so far.
    #[must_use]
    pub fn inter_pair_swaps(&self) -> u64 {
        self.inter_pair_swaps
    }

    /// The pair table (for inspection and invariant tests).
    #[must_use]
    pub fn pair_table(&self) -> &PairTable {
        &self.pairs
    }

    /// The live remapping table (for inspection and invariant tests).
    #[must_use]
    pub fn remapping_table(&self) -> &RemappingTable {
        &self.rt
    }

    /// Endurance used for the toss at `pa`: factory-tested by default,
    /// remaining endurance in the dynamic ablation.
    fn toss_endurance(&self, pa: PhysicalPageAddr, device: &PcmDevice) -> u64 {
        if self.config.dynamic_endurance {
            device.remaining(pa)
        } else {
            self.initial_endurance[pa.as_usize()]
        }
    }

    /// Runs the toss-up + swap judge for a write currently mapped to
    /// `pa`. Returns the page that must receive the request data plus
    /// the cost incurred.
    fn toss(
        &mut self,
        pa: PhysicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<TossResult, PcmError> {
        self.toss_ups += 1;
        self.metrics.toss_ups.inc();
        let partner = self.pairs.partner(pa);
        let e_here = self.toss_endurance(pa, device);
        let e_partner = self.toss_endurance(partner, device);
        let den = e_here + e_partner;
        // If both pages are exhausted (dynamic mode) the device is about
        // to die anyway; stay put so the failing write is attributed to
        // the addressed page.
        let chosen = if den == 0 || self.rng.bernoulli_ratio(e_here, den) {
            pa
        } else {
            partner
        };
        if chosen == pa {
            return Ok(TossResult {
                target: pa,
                migration_writes: 0,
                blocking_cycles: 0,
                swapped: false,
            });
        }
        // Swap judge fired: swap-then-write (§4.1). The data currently
        // at `chosen` must migrate to `pa` before `chosen` takes the
        // request data.
        let migrate = device.config().timing.migrate_latency();
        let (migration_writes, blocking_cycles) = if self.config.optimized_swap {
            device.write_page(pa)?;
            (1, migrate)
        } else {
            // Naive three-write swap: both pages rewritten before the
            // request write lands.
            device.write_page(pa)?;
            device.write_page(chosen)?;
            (2, 2 * migrate)
        };
        self.rt.swap_physical(pa, chosen);
        self.metrics.toss_swaps.inc();
        Ok(TossResult {
            target: chosen,
            migration_writes,
            blocking_cycles,
            swapped: true,
        })
    }

    /// Runs the inter-pair swap for a write that just landed at `pa`.
    fn inter_pair_swap(
        &mut self,
        pa: PhysicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<TossResult, PcmError> {
        let n = self.rt.len();
        let target = PhysicalPageAddr::new(self.rng.next_bounded(n));
        if target == pa {
            return Ok(TossResult {
                target: pa,
                migration_writes: 0,
                blocking_cycles: 0,
                swapped: false,
            });
        }
        self.inter_pair_swaps += 1;
        self.metrics.inter_pair_swaps.inc();
        // Full content exchange: both frames are rewritten.
        device.write_page(pa)?;
        device.write_page(target)?;
        self.rt.swap_physical(pa, target);
        let migrate = device.config().timing.migrate_latency();
        Ok(TossResult {
            target,
            migration_writes: 2,
            blocking_cycles: 2 * migrate,
            swapped: true,
        })
    }
}

/// Internal result of a toss or inter-pair swap step.
struct TossResult {
    target: PhysicalPageAddr,
    migration_writes: u32,
    blocking_cycles: u64,
    swapped: bool,
}

impl WearLeveler for TossUpWearLeveling {
    fn name(&self) -> &str {
        &self.name
    }

    fn page_count(&self) -> u64 {
        self.rt.len()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.rt.translate(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // Worst case on a single frame in one logical write: a naive
        // toss migration landing on it, the request write it now hosts,
        // and the first write of an inter-pair swap — three device
        // writes; four is a safe ceiling.
        (wear_margin.saturating_sub(1) / 4).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let mut engine_cycles = self.config.base_write_latency();
        let mut device_writes = 0u32;
        let mut blocking_cycles = 0u64;
        let mut swapped = false;

        let count = self.wct.increment(la);
        let mut pa = self.rt.translate(la);

        // Interval-triggered toss-up (§4.3): the WCT gates the engine.
        if count.is_multiple_of(self.config.toss_up_interval) {
            engine_cycles += self.config.rng_latency;
            let toss = self.toss(pa, device)?;
            device_writes += toss.migration_writes;
            blocking_cycles += toss.blocking_cycles;
            swapped |= toss.swapped;
            pa = toss.target;
        }

        // The request write itself.
        device.write_page(pa)?;
        device_writes += 1;

        // Inter-pair swap every `inter_pair_swap_interval` global writes
        // (§4.1) distributes traffic between pairs.
        self.global_writes += 1;
        if self
            .global_writes
            .is_multiple_of(self.config.inter_pair_swap_interval)
        {
            let swap = self.inter_pair_swap(pa, device)?;
            device_writes += swap.migration_writes;
            blocking_cycles += swap.blocking_cycles;
            swapped |= swap.swapped;
            pa = swap.target;
        }

        let outcome = WriteOutcome {
            pa,
            device_writes,
            swapped,
            engine_cycles,
            blocking_cycles,
        };
        self.stats.record_write(&outcome);
        self.metrics.writes.inc();
        if blocking_cycles > 0 {
            self.metrics.blocking_cycles.record(blocking_cycles);
        }
        Ok(outcome)
    }

    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        let mut batch = BatchOutcome::default();
        if n == 0 {
            return batch;
        }
        let t = self.config.toss_up_interval;
        let s = self.config.inter_pair_swap_interval;
        let base = self.config.base_write_latency();
        let rng_latency = self.config.rng_latency;
        let optimized = self.config.optimized_swap;
        let migrate = device.config().timing.migrate_latency();
        let pages = self.rt.len();

        // Statistics and metrics accumulate locally and flush once on
        // every exit path below: the flushed totals are sums, so they
        // are identical to per-write recording, without one atomic
        // round-trip per event.
        let mut acc = WlStats::new();
        let mut toss_ups = 0u64;
        let mut toss_swaps = 0u64;
        let mut inter_swaps = 0u64;
        // Deferred table bumps: the loop below never reads the WCT or
        // the global counter (the countdowns carry that state), so both
        // flush as one addition per batch. Plain-stretch statistics are
        // all proportional to the stretch length and flush the same way.
        let mut wct_delta = 0u64;
        let mut global_delta = 0u64;
        let mut plain_total = 0u64;
        // A write's blocking cycles are always a small multiple of the
        // migrate latency (1 for an optimized toss swap, 2 naive or
        // inter-pair, up to 4 with both events on one write); counting
        // per multiple lets the flush replay the exact samples into the
        // histogram in O(1).
        let mut blocked = [0u64; 5];

        // Countdowns to the next event at this address: the toss-up
        // fires on the write that brings the WCT count to a multiple of
        // its interval (checked *before* the request write), the
        // inter-pair swap on the write that brings the global count to a
        // multiple of its interval (checked *after*). Every write
        // strictly before both boundaries is a plain wear bump on the
        // currently mapped frame with no RNG draw, so each stretch
        // collapses to one bulk device write. The two divisions here are
        // the only ones in the loop — decrements keep the countdowns
        // live across iterations.
        let mut remaining = n;
        let mut to_toss = t - self.wct.count(la) % t;
        let mut to_swap = s - self.global_writes % s;
        // An event write whose request write has been deferred into the
        // next bulk pass: after toss handling the engine always maps
        // `la` to the frame the request (and the following event-free
        // stretch) must hit, so both fuse into one `write_page_n`. The
        // held outcome excludes the request write; the `usize` is its
        // blocking-cycle multiple of the migrate latency.
        let mut pending: Option<(WriteOutcome, usize)> = None;

        'run: loop {
            // One bulk pass covers the deferred request write (if any)
            // plus every following write strictly before the next
            // toss-up / inter-pair boundary — all plain wear bumps on
            // the currently mapped frame with no RNG draw.
            let stretch = remaining.min(to_toss - 1).min(to_swap - 1);
            let lead = u64::from(pending.is_some());
            if stretch + lead > 0 {
                let pa = self.rt.translate(la);
                let bulk = device.write_page_n(pa, stretch + lead);
                let mut landed = bulk.landed;
                if let Some((mut outcome, mult)) = pending.take() {
                    if landed == 0 {
                        // The deferred request write itself failed:
                        // exactly as in the scalar path, the event's
                        // outcome goes unrecorded (its migrations still
                        // wore the device) and the bulk error is the
                        // one the request write would have raised.
                        batch.failure = bulk.failure;
                        break 'run;
                    }
                    landed -= 1;
                    outcome.device_writes += 1;
                    global_delta += 1;
                    acc.record_write(&outcome);
                    if outcome.blocking_cycles > 0 {
                        blocked[mult] += 1;
                    }
                    batch.serviced += 1;
                    batch.last = Some(outcome);
                }
                wct_delta += landed;
                global_delta += landed;
                plain_total += landed;
                if landed > 0 {
                    batch.serviced += landed;
                    batch.last = Some(WriteOutcome {
                        pa,
                        device_writes: 1,
                        swapped: false,
                        engine_cycles: base,
                        blocking_cycles: 0,
                    });
                }
                if let Some(e) = bulk.failure {
                    batch.failure = Some(e);
                    break 'run;
                }
                remaining -= stretch;
                to_toss -= stretch;
                to_swap -= stretch;
            }
            if remaining == 0 {
                break 'run;
            }

            // The event write, inlined from the scalar [`Self::write`]
            // path: identical order of state updates, device writes and
            // RNG draws, with stats and metrics folded into the batch
            // accumulators (and, as in the scalar path, a write that
            // fails mid-event leaves its own outcome unrecorded).
            if self.rng.buffered() == 0 {
                // Bulk-generate (a chunk of) the draws the rest of the
                // batch is expected to consume: one per toss-up or
                // inter-pair boundary. Lemire rejections can consume
                // more; the buffer just refills when it runs dry.
                let expect = (remaining / t + remaining / s).clamp(16, 1 << 16);
                self.rng
                    .prefetch(usize::try_from(expect).unwrap_or(usize::MAX));
            }
            wct_delta += 1;
            remaining -= 1;
            let mut pa = self.rt.translate(la);
            let mut engine_cycles = base;
            let mut device_writes = 0u32;
            let mut blocking_cycles = 0u64;
            let mut block_mult = 0usize;
            let mut swapped = false;

            if to_toss == 1 {
                engine_cycles += rng_latency;
                toss_ups += 1;
                let partner = self.pairs.partner(pa);
                let e_here = self.toss_endurance(pa, device);
                let e_partner = self.toss_endurance(partner, device);
                let den = e_here + e_partner;
                let chosen = if den == 0 || self.rng.bernoulli_ratio(e_here, den) {
                    pa
                } else {
                    partner
                };
                if chosen != pa {
                    let migrated = if optimized {
                        device_writes += 1;
                        blocking_cycles += migrate;
                        block_mult += 1;
                        device.write_page(pa)
                    } else {
                        device_writes += 2;
                        blocking_cycles += 2 * migrate;
                        block_mult += 2;
                        device
                            .write_page(pa)
                            .and_then(|()| device.write_page(chosen))
                    };
                    if let Err(e) = migrated {
                        batch.failure = Some(e);
                        break 'run;
                    }
                    self.rt.swap_physical(pa, chosen);
                    toss_swaps += 1;
                    swapped = true;
                    pa = chosen;
                }
                to_toss = t;
            } else {
                to_toss -= 1;
            }

            if to_swap != 1 {
                // No inter-pair boundary on this write: defer the
                // request write into the next bulk pass (it lands on
                // the frame `la` now maps to, first in line).
                to_swap -= 1;
                pending = Some((
                    WriteOutcome {
                        pa,
                        device_writes,
                        swapped,
                        engine_cycles,
                        blocking_cycles,
                    },
                    block_mult,
                ));
                continue 'run;
            }

            // Inter-pair boundary: the request write must land now so
            // the swap that follows it observes the scalar write order.
            if let Err(e) = device.write_page(pa) {
                batch.failure = Some(e);
                break 'run;
            }
            device_writes += 1;
            global_delta += 1;

            let target = PhysicalPageAddr::new(self.rng.next_bounded(pages));
            if target != pa {
                inter_swaps += 1;
                device_writes += 2;
                blocking_cycles += 2 * migrate;
                block_mult += 2;
                if let Err(e) = device
                    .write_page(pa)
                    .and_then(|()| device.write_page(target))
                {
                    batch.failure = Some(e);
                    break 'run;
                }
                self.rt.swap_physical(pa, target);
                swapped = true;
                pa = target;
            }
            to_swap = s;

            let outcome = WriteOutcome {
                pa,
                device_writes,
                swapped,
                engine_cycles,
                blocking_cycles,
            };
            acc.record_write(&outcome);
            // `block_mult` is `blocking_cycles / migrate`, tracked by
            // increments so the hot loop never divides.
            if blocking_cycles > 0 {
                blocked[block_mult] += 1;
            }
            batch.serviced += 1;
            batch.last = Some(outcome);
        }

        self.wct.add(la, wct_delta);
        self.global_writes += global_delta;
        self.toss_ups += toss_ups;
        self.inter_pair_swaps += inter_swaps;
        // Every plain write is one device write at the base latency.
        acc.logical_writes += plain_total;
        acc.device_writes += plain_total;
        acc.engine_cycles += plain_total * base;
        self.stats.absorb(&acc);
        self.metrics.writes.add(batch.serviced);
        self.metrics.toss_ups.add(toss_ups);
        self.metrics.toss_swaps.add(toss_swaps);
        self.metrics.inter_pair_swaps.add(inter_swaps);
        for (mult, &count) in blocked.iter().enumerate().skip(1) {
            if count > 0 {
                self.metrics
                    .blocking_cycles
                    .record_n(migrate * mult as u64, count);
            }
        }
        batch
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.rt.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.table_latency,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairingStrategy;
    use twl_pcm::PcmConfig;

    fn setup(pages: u64, endurance: u64, interval: u64) -> (PcmDevice, TossUpWearLeveling) {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .seed(11)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        let config = TwlConfig::builder()
            .toss_up_interval(interval)
            .build()
            .unwrap();
        let twl = TossUpWearLeveling::new(&config, device.endurance_map());
        (device, twl)
    }

    #[test]
    fn eq2_cases_hold() {
        // Case-1: E_A ≈ E_B → 1/2.
        assert!((swap_probability(0.3, 500, 500) - 0.5).abs() < 1e-12);
        // Case-2: E_A >> E_B, p→1 → ~0.
        assert!(swap_probability(0.999, 1_000_000, 10) < 0.01);
        // Case-3: E_A >> E_B, p→0 → ~1.
        assert!(swap_probability(0.001, 1_000_000, 10) > 0.99);
        // Case-4: p = 1/2 → 1/2 for any endurance split.
        assert!((swap_probability(0.5, 123_456, 7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn toss_frequency_matches_interval() {
        let (mut device, mut twl) = setup(64, 1_000_000, 8);
        let la = LogicalPageAddr::new(3);
        for _ in 0..64 {
            twl.write(la, &mut device).unwrap();
        }
        assert_eq!(twl.toss_ups(), 8);
    }

    #[test]
    fn empirical_toss_matches_endurance_ratio() {
        // One pair, toss on every write, repeat-write one address:
        // the fraction of writes landing on each page must approach
        // E_page / (E_A + E_B).
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(1_000_000_000)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let endurance = EnduranceMap::from_values(vec![300_000_000, 100_000_000]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        let config = TwlConfig::builder()
            .toss_up_interval(1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let la = LogicalPageAddr::new(0);
        let n = 40_000;
        for _ in 0..n {
            twl.write(la, &mut device).unwrap();
        }
        // Request writes go to page 0 with q = 3/4. Migration writes go
        // to the page the data just left: P = q(1-q) per side. Stationary
        // wear shares are therefore (q + q(1-q), (1-q) + q(1-q)):
        // (0.9375, 0.4375) → page 0 carries 0.9375/1.375 ≈ 0.6818.
        let w0 = device.wear(PhysicalPageAddr::new(0)) as f64;
        let w1 = device.wear(PhysicalPageAddr::new(1)) as f64;
        let frac0 = w0 / (w0 + w1);
        assert!((frac0 - 0.9375 / 1.375).abs() < 0.02, "frac0 = {frac0}");
        // And the *wear-rate* invariant the scheme targets: page 0 should
        // carry roughly 3x page 1's request traffic; with migrations it
        // still carries >2x the wear.
        assert!(w0 / w1 > 2.0, "w0/w1 = {}", w0 / w1);
    }

    #[test]
    fn remapping_stays_bijective_under_stress() {
        let (mut device, mut twl) = setup(128, 1_000_000, 4);
        let mut rng = Xoshiro256StarStar::seed_from(5);
        for _ in 0..20_000 {
            let la = LogicalPageAddr::new(rng.next_bounded(128));
            twl.write(la, &mut device).unwrap();
        }
        assert!(twl.remapping_table().is_bijective());
        assert!(twl.pair_table().is_valid_involution());
    }

    #[test]
    fn translate_follows_data() {
        let (mut device, mut twl) = setup(64, 1_000_000, 1);
        let la = LogicalPageAddr::new(9);
        for _ in 0..500 {
            let out = twl.write(la, &mut device).unwrap();
            assert_eq!(
                twl.translate(la),
                out.pa,
                "translation must point at the page that received the data"
            );
        }
    }

    #[test]
    fn optimized_swap_writes_two_naive_three() {
        for (optimized, expected_max) in [(true, 2u32), (false, 3u32)] {
            let pcm = PcmConfig::builder()
                .pages(2)
                .mean_endurance(1_000_000)
                .sigma_fraction(0.0)
                .build()
                .unwrap();
            let endurance = EnduranceMap::from_values(vec![999_999, 1]);
            let mut device = PcmDevice::with_endurance(&pcm, endurance);
            let config = TwlConfig::builder()
                .toss_up_interval(1)
                .inter_pair_swap_interval(u64::MAX)
                .pairing(PairingStrategy::Adjacent)
                .optimized_swap(optimized)
                .build()
                .unwrap();
            let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
            // Write LA1 (initially at weak PA1): the toss almost surely
            // redirects to PA0, forcing a swap.
            let out = twl.write(LogicalPageAddr::new(1), &mut device).unwrap();
            assert!(out.swapped);
            assert_eq!(out.device_writes, expected_max);
        }
    }

    #[test]
    fn inter_pair_swap_fires_on_interval() {
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(1_000_000)
            .seed(2)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let config = TwlConfig::builder()
            .toss_up_interval(u64::MAX - 1)
            .inter_pair_swap_interval(16)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        for i in 0..160u64 {
            twl.write(LogicalPageAddr::new(i % 256), &mut device)
                .unwrap();
        }
        // 10 interval hits; a few may pick the same page and no-op.
        assert!(
            twl.inter_pair_swaps() >= 8,
            "swaps = {}",
            twl.inter_pair_swaps()
        );
        assert!(twl.remapping_table().is_bijective());
    }

    #[test]
    fn wear_out_propagates_from_migration() {
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(10)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        // Pair (PA0: E=3, PA1: E=10^9). Alternating writes to LA0/LA1
        // make the toss pick PA1 nearly every time, so whichever logical
        // page currently sits on PA0 migrates back onto it on every
        // write — each write burns one PA0 migration write. PA0 dies
        // after 3 migrations and the 4th must surface the error.
        let endurance = EnduranceMap::from_values(vec![3, 1_000_000_000]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        let config = TwlConfig::builder()
            .toss_up_interval(1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let mut failed = false;
        for i in 0..100u64 {
            if twl.write(LogicalPageAddr::new(i % 2), &mut device).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "migrations must exhaust the weak page");
        assert_eq!(device.first_failure(), Some(PhysicalPageAddr::new(0)));
    }

    #[test]
    fn stats_account_every_device_write() {
        let (mut device, mut twl) = setup(64, 1_000_000, 2);
        let mut rng = Xoshiro256StarStar::seed_from(77);
        for _ in 0..5_000 {
            let la = LogicalPageAddr::new(rng.next_bounded(64));
            twl.write(la, &mut device).unwrap();
        }
        assert_eq!(twl.stats().device_writes, device.total_writes());
        assert_eq!(twl.stats().logical_writes, 5_000);
    }

    #[test]
    fn read_charges_table_latency() {
        let (device, mut twl) = setup(64, 1_000, 32);
        let r = twl.read(LogicalPageAddr::new(0), &device).unwrap();
        assert_eq!(r.engine_cycles, 10);
    }

    #[test]
    fn dynamic_endurance_tracks_remaining_life() {
        // With dynamic endurance, a pair whose strong member has been
        // worn down to parity tosses ~50/50 instead of by the initial
        // ratio.
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(1_000_000)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let endurance = EnduranceMap::from_values(vec![2_000_000, 1_000_000]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        // Pre-wear the strong page down to ~1M remaining.
        for _ in 0..1_000_000 {
            device.write_page(PhysicalPageAddr::new(0)).unwrap();
        }
        let config = TwlConfig::builder()
            .toss_up_interval(1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .dynamic_endurance(true)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let before_0 = device.wear(PhysicalPageAddr::new(0));
        let n = 30_000;
        for _ in 0..n {
            twl.write(LogicalPageAddr::new(0), &mut device).unwrap();
        }
        let w0 = (device.wear(PhysicalPageAddr::new(0)) - before_0) as f64;
        let w1 = device.wear(PhysicalPageAddr::new(1)) as f64;
        let frac0 = w0 / (w0 + w1);
        // Static tossing would put ~0.68 of the wear on page 0 (2:1
        // initial ratio, plus migrations); dynamic parity gives ~0.5.
        assert!((frac0 - 0.5).abs() < 0.05, "frac0 = {frac0}");
    }

    #[test]
    fn random_pairing_works_through_the_engine() {
        let pcm = PcmConfig::builder()
            .pages(64)
            .mean_endurance(1_000_000)
            .seed(3)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let config = TwlConfig::builder()
            .pairing(PairingStrategy::Random { seed: 12 })
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        assert_eq!(twl.name(), "TWL_rnd");
        for i in 0..2_000u64 {
            twl.write(LogicalPageAddr::new(i % 64), &mut device)
                .unwrap();
        }
        assert!(twl.remapping_table().is_bijective());
    }

    #[test]
    fn stats_extra_write_ratio_near_paper_at_interval_32() {
        // §5.2: toss-up interval 32 incurs "about 2.2% additional
        // writes". Under a scan-like pattern ours lands in the same
        // band (toss swaps + inter-pair swaps).
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(100_000_000)
            .seed(5)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut twl = TossUpWearLeveling::new(&TwlConfig::dac17(), device.endurance_map());
        for i in 0..200_000u64 {
            twl.write(LogicalPageAddr::new(i % 256), &mut device)
                .unwrap();
        }
        let ratio = twl.stats().extra_write_ratio();
        assert!((0.01..0.06).contains(&ratio), "extra-write ratio = {ratio}");
    }

    #[test]
    fn write_batch_is_bit_identical_to_sequential_writes() {
        // Batches of awkward sizes (straddling toss-up and inter-pair
        // boundaries) must leave the engine, device, and RNG stream in
        // exactly the per-write state.
        let (mut dev_bulk, mut bulk) = setup(64, 1_000_000, 8);
        let (mut dev_seq, mut seq) = setup(64, 1_000_000, 8);
        let la = LogicalPageAddr::new(5);
        for &n in &[1u64, 3, 7, 8, 9, 31, 32, 33, 128, 500] {
            let batch = bulk.write_batch(la, n, &mut dev_bulk);
            assert_eq!(batch.serviced, n);
            assert!(batch.failure.is_none());
            let mut last = None;
            for _ in 0..n {
                last = Some(seq.write(la, &mut dev_seq).unwrap());
            }
            assert_eq!(batch.last, last, "n = {n}");
        }
        assert_eq!(bulk.stats(), seq.stats());
        assert_eq!(bulk.toss_ups(), seq.toss_ups());
        assert_eq!(bulk.inter_pair_swaps(), seq.inter_pair_swaps());
        assert_eq!(bulk.remapping_table(), seq.remapping_table());
        assert_eq!(dev_bulk.wear_counters(), dev_seq.wear_counters());
        assert!(bulk.toss_ups() > 0, "the stress actually crossed events");
    }

    #[test]
    fn write_batch_stops_at_the_failing_write() {
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(50)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let endurance = EnduranceMap::from_values(vec![50, 50]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        let config = TwlConfig::builder()
            .toss_up_interval(u64::MAX - 1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let batch = twl.write_batch(LogicalPageAddr::new(0), 80, &mut device);
        assert_eq!(batch.serviced, 50);
        assert!(matches!(
            batch.failure,
            Some(PcmError::PageWornOut { addr, .. }) if addr.index() == 0
        ));
        assert_eq!(twl.stats().logical_writes, 50);
    }

    #[test]
    fn name_reflects_pairing() {
        let (_, twl) = setup(64, 1_000, 32);
        assert_eq!(twl.name(), "TWL_swp");
    }
}

#[cfg(test)]
mod eq2_validation {
    use super::*;
    use crate::PairingStrategy;
    use twl_pcm::PcmConfig;

    /// Drives a single pair with writes whose address distribution has a
    /// controlled `p = P(write hits the page holding A's data)` and
    /// compares the measured per-toss swap frequency against Eq. 2.
    fn measured_swap_rate(p: f64, e_a: u64, e_b: u64) -> f64 {
        let pcm = PcmConfig::builder()
            .pages(2)
            .mean_endurance(1_000_000_000)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let endurance = EnduranceMap::from_values(vec![e_a, e_b]);
        let mut device = PcmDevice::with_endurance(&pcm, endurance);
        let config = TwlConfig::builder()
            .toss_up_interval(1)
            .inter_pair_swap_interval(u64::MAX)
            .pairing(PairingStrategy::Adjacent)
            .build()
            .unwrap();
        let mut twl = TossUpWearLeveling::new(&config, device.endurance_map());
        let mut rng = Xoshiro256StarStar::seed_from(99);
        let n = 60_000u64;
        let mut swaps = 0u64;
        for _ in 0..n {
            // Address the logical page currently resident on frame A
            // with probability p (frame A = PA0 holds "A's data"
            // positionally: we track by current translation).
            let la_on_a = twl.remapping_table().reverse(PhysicalPageAddr::new(0));
            let la_on_b = twl.remapping_table().reverse(PhysicalPageAddr::new(1));
            let la = if rng.next_unit_f64() < p {
                la_on_a
            } else {
                la_on_b
            };
            let out = twl.write(la, &mut device).unwrap();
            if out.swapped {
                swaps += 1;
            }
        }
        swaps as f64 / n as f64
    }

    #[test]
    fn eq2_matches_simulation_across_the_four_cases() {
        // NOTE: Eq. 2's `p` is the probability the write addresses the
        // *data of page A* wherever it lives; our loop addresses frames,
        // which matches the paper's stationary-case analysis when the
        // toss uses the frames' endurance.
        for (p, e_a, e_b) in [
            (0.5, 1_000_000u64, 1_000_000u64), // Case-1: ~1/2
            (0.9, 10_000_000, 100_000),        // Case-2-ish: low swap
            (0.1, 10_000_000, 100_000),        // Case-3-ish: high swap
            (0.5, 3_000_000, 1_000_000),       // Case-4: ~1/2
        ] {
            let expected = swap_probability(p, e_a, e_b);
            let measured = measured_swap_rate(p, e_a, e_b);
            assert!(
                (measured - expected).abs() < 0.02,
                "p={p} E_A={e_a} E_B={e_b}: measured {measured}, Eq.2 {expected}"
            );
        }
    }
}
