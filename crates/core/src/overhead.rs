//! Hardware-overhead model (paper §5.4).
//!
//! The paper reports, per 4 KB page: a 7-bit write-counter entry, a
//! 27-bit endurance-table entry, a 23-bit remapping-table entry and a
//! 23-bit strong-weak-pair-table entry — 80 bits total, a storage
//! overhead of `80 / (4096 × 8) = 2.44·10⁻³` (quoted as 2.5·10⁻³). The
//! logic is an 8-bit Feistel RNG (<128 gates) plus a divider and
//! comparators (718 gates from their synthesis), ≈840 gates total.
//!
//! This module recomputes those numbers from an arbitrary configuration
//! so the overhead scales correctly for scaled simulation devices too.

use crate::TwlConfig;
use serde::{Deserialize, Serialize};
use twl_pcm::PcmConfig;
use twl_rng::FeistelRng;

/// Gate count of the divider + comparators from the paper's Synopsys
/// synthesis (§5.4). We take the published figure as ground truth since
/// re-synthesizing is out of scope for a simulator.
pub const DIVIDER_COMPARATOR_GATES: u64 = 718;

/// Storage and logic overhead of a TWL deployment.
///
/// # Examples
///
/// ```
/// use twl_core::{TwlConfig, TwlOverhead};
/// use twl_pcm::PcmConfig;
///
/// let overhead = TwlOverhead::compute(&TwlConfig::dac17(), &PcmConfig::nominal_dac17());
/// assert_eq!(overhead.bits_per_page(), 80);
/// assert!(overhead.total_gates() < 900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwlOverhead {
    /// Write-counter-table entry width (paper: 7 bits).
    pub wct_bits: u32,
    /// Endurance-table entry width (paper: 27 bits).
    pub et_bits: u32,
    /// Remapping-table entry width (paper: 23 bits).
    pub rt_bits: u32,
    /// Strong-weak-pair-table entry width (paper: 23 bits).
    pub swpt_bits: u32,
    /// Page size the per-page bits are amortized over.
    pub page_size_bytes: u64,
    /// Gate count of the Feistel RNG.
    pub rng_gates: u64,
    /// Gate count of the divider and comparators.
    pub arithmetic_gates: u64,
}

impl TwlOverhead {
    /// Computes the overhead for a TWL configuration on a device.
    #[must_use]
    pub fn compute(twl: &TwlConfig, pcm: &PcmConfig) -> Self {
        let addr_bits = ceil_log2(pcm.pages);
        // The WCT must count to the larger of the two intervals before
        // wrapping (paper: 7 bits for intervals 32/128).
        let counter_max = twl.toss_up_interval.max(twl.inter_pair_swap_interval);
        // The ET is sized for the mean endurance (paper: 27 bits for
        // 10⁸); tested values above 2^bits − 1 saturate, which costs the
        // strong tail nothing — a saturated strong page still tosses as
        // "very strong".
        let et_bits = ceil_log2(pcm.mean_endurance);
        Self {
            wct_bits: ceil_log2(counter_max),
            et_bits,
            rt_bits: addr_bits,
            swpt_bits: addr_bits,
            page_size_bytes: pcm.page_size_bytes,
            rng_gates: FeistelRng::new(0).gate_estimate(),
            arithmetic_gates: DIVIDER_COMPARATOR_GATES,
        }
    }

    /// Total metadata bits stored per PCM page.
    #[must_use]
    pub fn bits_per_page(&self) -> u32 {
        self.wct_bits + self.et_bits + self.rt_bits + self.swpt_bits
    }

    /// Storage overhead as a fraction of device capacity.
    #[must_use]
    pub fn storage_ratio(&self) -> f64 {
        f64::from(self.bits_per_page()) / (self.page_size_bytes * 8) as f64
    }

    /// Total logic gate estimate.
    #[must_use]
    pub fn total_gates(&self) -> u64 {
        self.rng_gates + self.arithmetic_gates
    }
}

/// ⌈log₂ x⌉ for x ≥ 1.
fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1, "log2 of zero");
    u64::BITS - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_reproduces_section_5_4() {
        let o = TwlOverhead::compute(&TwlConfig::dac17(), &PcmConfig::nominal_dac17());
        assert_eq!(o.wct_bits, 7, "WCT counts to 128");
        assert_eq!(o.et_bits, 27, "mean endurance 1e8 needs 27 bits");
        assert_eq!(o.rt_bits, 23, "8.4M pages need 23 bits");
        assert_eq!(o.swpt_bits, 23);
        assert_eq!(o.bits_per_page(), 80);
        // Paper rounds 2.44e-3 up to 2.5e-3.
        assert!((o.storage_ratio() - 2.44e-3).abs() < 0.05e-3);
        assert!(o.rng_gates < 128, "paper: Feistel RNG < 128 gates");
        assert_eq!(o.arithmetic_gates, 718);
        assert!((800..900).contains(&o.total_gates()), "paper: ~840 gates");
    }

    #[test]
    fn scaled_devices_shrink_tables() {
        let pcm = PcmConfig::scaled(8192, 100_000, 0);
        let o = TwlOverhead::compute(&TwlConfig::dac17(), &pcm);
        assert_eq!(o.rt_bits, 13);
        assert!(o.et_bits < 27);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(128), 7);
        assert_eq!(ceil_log2(129), 8);
    }
}
