//! Model-checking property test: the set-associative cache must agree
//! with a trivially-correct reference implementation on every access of
//! arbitrary traces.

use proptest::prelude::*;
use std::collections::HashMap;
use twl_cache::{Cache, CacheConfig};

/// A deliberately naive reference cache: per set, a vector of
/// (tag, dirty) in LRU order (front = LRU).
struct ReferenceCache {
    config: CacheConfig,
    sets: HashMap<u64, Vec<(u64, bool)>>,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        Self {
            config,
            sets: HashMap::new(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.config.line_bytes;
        (line % self.config.sets(), line / self.config.sets())
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let (t, dirty) = ways.remove(pos);
            ways.push((t, dirty || is_write));
            return (true, None);
        }
        let mut writeback = None;
        if ways.len() == self.config.ways as usize {
            let (victim_tag, dirty) = ways.remove(0);
            if dirty {
                writeback = Some((victim_tag * self.config.sets() + set) * self.config.line_bytes);
            }
        }
        ways.push((tag, is_write));
        (false, writeback)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..600),
        ways in 1u32..4,
    ) {
        let config = CacheConfig {
            size_bytes: 64 * u64::from(ways) * 8, // 8 sets
            ways,
            line_bytes: 64,
        };
        prop_assume!(config.is_valid());
        let mut dut = Cache::new(&config);
        let mut reference = ReferenceCache::new(config);
        for &(word, is_write) in &accesses {
            let addr = word * 8; // 8-byte word addresses
            let expected = reference.access(addr, is_write);
            let actual = dut.access(addr, is_write);
            prop_assert_eq!(actual.hit, expected.0, "hit mismatch at {}", addr);
            prop_assert_eq!(actual.writeback, expected.1, "writeback mismatch at {}", addr);
            if !actual.hit {
                prop_assert_eq!(actual.fill, Some(addr & !63), "fill must fetch the line");
            }
        }
    }

    #[test]
    fn flush_agrees_with_dirty_state(
        accesses in proptest::collection::vec((0u64..1024, any::<bool>()), 1..300),
    ) {
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        };
        let mut dut = Cache::new(&config);
        let mut reference = ReferenceCache::new(config);
        for &(word, is_write) in &accesses {
            let addr = word * 8;
            reference.access(addr, is_write);
            dut.access(addr, is_write);
        }
        let mut flushed = dut.flush();
        flushed.sort_unstable();
        let mut expected: Vec<u64> = reference
            .sets
            .iter()
            .flat_map(|(&set, ways)| {
                ways.iter().filter(|&&(_, d)| d).map(move |&(tag, _)| {
                    (tag * config.sets() + set) * config.line_bytes
                })
            })
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(flushed, expected);
    }
}
