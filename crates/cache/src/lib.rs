#![warn(missing_docs)]

//! CPU cache hierarchy for the `tossup-wl` simulator.
//!
//! Table 1 of the paper runs an 8-core CPU with 32 KB 2-way L1 caches
//! and a shared 2 MB 8-way L2 in front of the PCM; the memory traces
//! the wear-leveling schemes see are the *post-cache* write stream
//! (L2 write-backs), not raw program accesses. This crate provides that
//! substrate:
//!
//! * [`Cache`] — one set-associative, write-back, write-allocate cache
//!   level with LRU replacement.
//! * [`CacheHierarchy`] — an L1+L2 stack that turns a byte-address
//!   access stream into page-granularity PCM commands.
//! * [`CpuWorkload`] — a synthetic program-level access generator
//!   (Zipf-skewed regions with sequential bursts) whose filtered output
//!   looks like a PARSEC-style memory trace.
//!
//! The attack model does not use caches — §3.1 lets the compromised OS
//! turn them off — which is why the attack and lifetime crates drive
//! the PCM directly. The cache stack exists for end-to-end trace
//! generation and for studying how cache filtering shapes the write
//! stream (see the `cache_filter` example).
//!
//! # Examples
//!
//! ```
//! use twl_cache::{Cache, CacheConfig};
//!
//! let mut l1 = Cache::new(&CacheConfig::l1_dac17());
//! // First touch misses, second hits.
//! assert!(!l1.access(0x1000, false).hit);
//! assert!(l1.access(0x1000, true).hit);
//! ```

mod config;
mod cpu;
mod hierarchy;
mod level;

pub use config::CacheConfig;
pub use cpu::{CpuWorkload, CpuWorkloadConfig};
pub use hierarchy::{CacheHierarchy, HierarchyStats};
pub use level::{AccessResult, Cache, CacheStats};
