//! The L1 → L2 → PCM stack.

use crate::{Cache, CacheConfig, CacheStats};
use serde::{Deserialize, Serialize};
use twl_pcm::LogicalPageAddr;
use twl_workloads::MemCmd;

/// Aggregate statistics of a hierarchy run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Program accesses fed in.
    pub cpu_accesses: u64,
    /// Page-granularity commands emitted towards the PCM.
    pub memory_commands: u64,
}

impl HierarchyStats {
    /// Fraction of CPU accesses that reached memory (lower = better
    /// filtering).
    #[must_use]
    pub fn memory_traffic_ratio(&self) -> f64 {
        if self.cpu_accesses == 0 {
            0.0
        } else {
            self.memory_commands as f64 / self.cpu_accesses as f64
        }
    }
}

/// A two-level write-back cache hierarchy that converts byte-address
/// program accesses into page-granularity PCM commands.
///
/// L1 misses fill from L2; L1 dirty evictions write into L2; L2 misses
/// and dirty evictions become PCM reads and writes (at the page
/// granularity the wear-leveling layer operates on, per §4.4).
///
/// # Examples
///
/// ```
/// use twl_cache::CacheHierarchy;
///
/// let mut hierarchy = CacheHierarchy::dac17(4096);
/// let to_memory = hierarchy.access(0xABCD, true);
/// // A cold write misses both levels: one page read (fill) reaches PCM.
/// assert_eq!(to_memory.len(), 1);
/// assert!(!to_memory[0].is_write());
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    page_bytes: u64,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the Table 1 hierarchy over pages of `page_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two at least as large
    /// as the L2 line.
    #[must_use]
    pub fn dac17(page_bytes: u64) -> Self {
        Self::new(
            &CacheConfig::l1_dac17(),
            &CacheConfig::l2_dac17(),
            page_bytes,
        )
    }

    /// Builds a hierarchy from explicit level configurations.
    ///
    /// # Panics
    ///
    /// Panics if either geometry is invalid or `page_bytes` is not a
    /// power of two ≥ the L2 line size.
    #[must_use]
    pub fn new(l1: &CacheConfig, l2: &CacheConfig, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two() && page_bytes >= l2.line_bytes,
            "page must be a power of two at least one L2 line"
        );
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            page_bytes,
            stats: HierarchyStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        let mut s = self.stats;
        s.l1 = self.l1.stats();
        s.l2 = self.l2.stats();
        s
    }

    fn page_of(&self, addr: u64) -> LogicalPageAddr {
        LogicalPageAddr::new(addr / self.page_bytes)
    }

    /// Feeds one program access; returns the PCM commands it caused
    /// (possibly none on cache hits).
    pub fn access(&mut self, addr: u64, is_write: bool) -> Vec<MemCmd> {
        self.stats.cpu_accesses += 1;
        let mut to_memory = Vec::new();

        let l1_result = self.l1.access(addr, is_write);
        // L1 dirty evictions are writes into L2.
        if let Some(wb) = l1_result.writeback {
            if let Some(l2_wb) = self.l2.access(wb, true).writeback {
                to_memory.push(MemCmd::write(self.page_of(l2_wb)));
            }
        }
        // L1 fills read through L2.
        if let Some(fill) = l1_result.fill {
            let l2_result = self.l2.access(fill, false);
            if let Some(l2_wb) = l2_result.writeback {
                to_memory.push(MemCmd::write(self.page_of(l2_wb)));
            }
            if l2_result.fill.is_some() {
                to_memory.push(MemCmd::read(self.page_of(fill)));
            }
        }

        self.stats.memory_commands += to_memory.len() as u64;
        to_memory
    }

    /// Flushes both levels, returning the final write traffic.
    pub fn flush(&mut self) -> Vec<MemCmd> {
        let mut to_memory = Vec::new();
        for wb in self.l1.flush() {
            if let Some(l2_wb) = self.l2.access(wb, true).writeback {
                to_memory.push(MemCmd::write(self.page_of(l2_wb)));
            }
        }
        for wb in self.l2.flush() {
            to_memory.push(MemCmd::write(self.page_of(wb)));
        }
        self.stats.memory_commands += to_memory.len() as u64;
        to_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(
            &CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            &CacheConfig {
                size_bytes: 2048,
                ways: 2,
                line_bytes: 128,
            },
            4096,
        )
    }

    #[test]
    fn hit_traffic_never_reaches_memory() {
        let mut h = tiny();
        h.access(0, true);
        for _ in 0..100 {
            assert!(h.access(0, true).is_empty(), "L1 hits stay on chip");
        }
        assert_eq!(h.stats().memory_commands, 1, "only the cold fill");
    }

    #[test]
    fn cold_miss_reads_one_page() {
        let mut h = tiny();
        let cmds = h.access(8192, false);
        assert_eq!(cmds.len(), 1);
        assert!(!cmds[0].is_write());
        assert_eq!(cmds[0].la.index(), 2);
    }

    #[test]
    fn dirty_data_eventually_writes_back_to_the_right_page() {
        let mut h = tiny();
        h.access(3 * 4096 + 256, true);
        let flushed = h.flush();
        let writes: Vec<_> = flushed.iter().filter(|c| c.is_write()).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].la.index(), 3);
    }

    #[test]
    fn write_traffic_is_filtered_versus_raw() {
        // A looping working set larger than L1 but inside L2: memory
        // sees only the cold fills, not the loop traffic.
        let mut h = tiny();
        let lines = 16u64; // 16 x 64B = 1 KB: exceeds 512B L1, fits 2KB L2
        for _ in 0..50 {
            for i in 0..lines {
                h.access(i * 64, true);
            }
        }
        let stats = h.stats();
        assert!(
            stats.memory_traffic_ratio() < 0.05,
            "ratio {}",
            stats.memory_traffic_ratio()
        );
        assert!(stats.l2.hit_rate() > 0.5);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut h = tiny();
        h.access(0, true);
        let first = h.flush();
        assert!(!first.is_empty());
        assert!(h.flush().is_empty());
    }
}
