//! A synthetic program-level (pre-cache) access generator.

use serde::{Deserialize, Serialize};
use twl_rng::{SimRng, Xoshiro256StarStar};
use twl_workloads::Zipf;

/// Configuration of a [`CpuWorkload`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuWorkloadConfig {
    /// Memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Zipf exponent over 4 KB regions (program locality).
    pub region_alpha: f64,
    /// Mean sequential-burst length in accesses (spatial locality);
    /// each burst walks consecutive 8-byte words, so a burst of 8
    /// stays inside one 64-byte cache line.
    pub mean_burst: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for CpuWorkloadConfig {
    fn default() -> Self {
        Self {
            footprint_bytes: 64 * 1024 * 1024,
            region_alpha: 1.0,
            mean_burst: 16,
            write_fraction: 0.4,
            seed: 0,
        }
    }
}

/// Synthetic CPU-level access stream: Zipf-popular 4 KB regions with
/// sequential word bursts inside them.
///
/// Feed it through a [`CacheHierarchy`](crate::CacheHierarchy) to
/// obtain a realistic post-cache PCM trace; the caches absorb the burst
/// locality, so the memory-side stream is far sparser and less
/// sequential than this one — exactly the filtering gem5's cache model
/// applies before NVMain in the paper's setup.
///
/// # Examples
///
/// ```
/// use twl_cache::{CpuWorkload, CpuWorkloadConfig};
///
/// let mut cpu = CpuWorkload::new(&CpuWorkloadConfig::default());
/// let (addr, _is_write) = cpu.next_access();
/// assert!(addr < 64 * 1024 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CpuWorkload {
    config: CpuWorkloadConfig,
    regions: Zipf,
    rng: Xoshiro256StarStar,
    burst_addr: u64,
    burst_left: u64,
    burst_write: bool,
}

impl CpuWorkload {
    /// Word (access) granularity in bytes.
    pub const WORD_BYTES: u64 = 8;
    /// Region granularity in bytes.
    pub const REGION_BYTES: u64 = 4096;

    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one region, the burst
    /// length is zero, or `write_fraction` is not a probability.
    #[must_use]
    pub fn new(config: &CpuWorkloadConfig) -> Self {
        assert!(
            config.footprint_bytes >= Self::REGION_BYTES,
            "footprint must hold at least one region"
        );
        assert!(config.mean_burst > 0, "burst length must be positive");
        assert!(
            (0.0..=1.0).contains(&config.write_fraction),
            "write fraction must be a probability"
        );
        let regions = config.footprint_bytes / Self::REGION_BYTES;
        Self {
            regions: Zipf::new(regions, config.region_alpha),
            rng: Xoshiro256StarStar::seed_from(config.seed),
            config: config.clone(),
            burst_addr: 0,
            burst_left: 0,
            burst_write: false,
        }
    }

    /// Produces the next `(byte address, is_write)` access.
    pub fn next_access(&mut self) -> (u64, bool) {
        if self.burst_left == 0 {
            // Start a new burst at a random word of a Zipf-chosen region.
            let region = self.regions.sample(&mut self.rng);
            let words = Self::REGION_BYTES / Self::WORD_BYTES;
            let word = self.rng.next_bounded(words);
            self.burst_addr = region * Self::REGION_BYTES + word * Self::WORD_BYTES;
            // Geometric-ish burst length: 1..=2*mean.
            self.burst_left = 1 + self.rng.next_bounded(2 * self.config.mean_burst);
            self.burst_write = self.rng.next_unit_f64() < self.config.write_fraction;
        }
        let addr = self.burst_addr % self.config.footprint_bytes;
        self.burst_addr += Self::WORD_BYTES;
        self.burst_left -= 1;
        (addr, self.burst_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_stay_in_footprint() {
        let mut cpu = CpuWorkload::new(&CpuWorkloadConfig {
            footprint_bytes: 1 << 20,
            ..CpuWorkloadConfig::default()
        });
        for _ in 0..10_000 {
            let (addr, _) = cpu.next_access();
            assert!(addr < 1 << 20);
        }
    }

    #[test]
    fn bursts_are_sequential_words() {
        let mut cpu = CpuWorkload::new(&CpuWorkloadConfig {
            mean_burst: 1000, // long bursts so we observe runs
            ..CpuWorkloadConfig::default()
        });
        let (first, _) = cpu.next_access();
        let (second, _) = cpu.next_access();
        assert_eq!(second, first + CpuWorkload::WORD_BYTES);
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut cpu = CpuWorkload::new(&CpuWorkloadConfig {
            write_fraction: 0.25,
            mean_burst: 1,
            ..CpuWorkloadConfig::default()
        });
        let writes = (0..40_000).filter(|_| cpu.next_access().1).count();
        let p = writes as f64 / 40_000.0;
        assert!((p - 0.25).abs() < 0.02, "write fraction {p}");
    }

    #[test]
    fn determinism() {
        let config = CpuWorkloadConfig::default();
        let mut a = CpuWorkload::new(&config);
        let mut b = CpuWorkload::new(&config);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
