//! Cache-level configuration.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use twl_cache::CacheConfig;
///
/// let l2 = CacheConfig::l2_dac17();
/// assert_eq!(l2.sets(), 2 * 1024 * 1024 / 128 / 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Table 1's data L1: 32 KB, 2-way, 64-byte lines.
    #[must_use]
    pub const fn l1_dac17() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// Table 1's shared L2: 2 MB, 8-way, 128-byte lines.
    #[must_use]
    pub const fn l2_dac17() -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 128,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics (in [`Cache::new`](crate::Cache::new)) if the geometry is
    /// inconsistent; here a plain division.
    #[must_use]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways as u64
    }

    /// Validates the geometry: positive power-of-two line size, at
    /// least one way, and a power-of-two set count.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.line_bytes > 0
            && self.line_bytes.is_power_of_two()
            && self.ways > 0
            && self.size_bytes > 0
            && self
                .size_bytes
                .is_multiple_of(self.line_bytes * self.ways as u64)
            && self.sets() > 0
            && self.sets().is_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries_are_valid() {
        assert!(CacheConfig::l1_dac17().is_valid());
        assert!(CacheConfig::l2_dac17().is_valid());
        assert_eq!(CacheConfig::l1_dac17().sets(), 256);
        assert_eq!(CacheConfig::l2_dac17().sets(), 2048);
    }

    #[test]
    fn bad_geometries_are_rejected() {
        let mut c = CacheConfig::l1_dac17();
        c.line_bytes = 100;
        assert!(!c.is_valid());
        c = CacheConfig::l1_dac17();
        c.ways = 0;
        assert!(!c.is_valid());
        c = CacheConfig::l1_dac17();
        c.size_bytes = 3000;
        assert!(!c.is_valid());
    }
}
