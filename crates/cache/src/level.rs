//! One set-associative, write-back, write-allocate cache level.

use crate::CacheConfig;
use serde::{Deserialize, Serialize};

/// A cache way: the line's tag, dirty bit, and LRU timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        valid: false,
        dirty: false,
        last_used: 0,
    };
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Byte address of a dirty line evicted to make room (the traffic
    /// the next level down sees as a write).
    pub writeback: Option<u64>,
    /// Byte address of the line fetched on a miss (the traffic the next
    /// level down sees as a read).
    pub fill: Option<u64>,
}

/// Running hit/miss/write-back counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions emitted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (0 when never accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use twl_cache::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(&CacheConfig::l1_dac17());
/// let miss = cache.access(0x40, true);
/// assert!(!miss.hit);
/// assert_eq!(miss.fill, Some(0x40));
/// let hit = cache.access(0x40, false);
/// assert!(hit.hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is invalid (see
    /// [`CacheConfig::is_valid`]).
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        assert!(config.is_valid(), "invalid cache geometry: {config:?}");
        let entries = (config.sets() * u64::from(config.ways)) as usize;
        Self {
            config: *config,
            sets: vec![Way::EMPTY; entries],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, addr: u64) -> u64 {
        (addr / self.config.line_bytes) & (self.config.sets() - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes / self.config.sets()
    }

    fn line_base(&self, set: u64, tag: u64) -> u64 {
        (tag * self.config.sets() + set) * self.config.line_bytes
    }

    /// Accesses the byte address; `is_write` marks the line dirty.
    ///
    /// On a miss, the least-recently-used way is evicted (reported in
    /// [`AccessResult::writeback`] when dirty) and the line is filled
    /// (write-allocate, reported in [`AccessResult::fill`]).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways as usize;
        let base = set as usize * ways;
        let slots = &mut self.sets[base..base + ways];

        // Hit path.
        if let Some(way) = slots.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = self.clock;
            way.dirty |= is_write;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
                fill: None,
            };
        }

        // Miss: evict LRU (prefer invalid ways).
        self.stats.misses += 1;
        let victim = slots
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used + 1 } else { 0 })
            .expect("ways > 0");
        let writeback = (victim.valid && victim.dirty).then(|| {
            let evicted_tag = victim.tag;
            self.stats.writebacks += 1;
            (evicted_tag * self.config.sets() + set) * self.config.line_bytes
        });
        *victim = Way {
            tag,
            valid: true,
            dirty: is_write,
            last_used: self.clock,
        };
        AccessResult {
            hit: false,
            writeback,
            fill: Some(self.line_base(set, tag)),
        }
    }

    /// Flushes every dirty line, returning their byte addresses (used
    /// at end-of-trace to account outstanding write traffic).
    pub fn flush(&mut self) -> Vec<u64> {
        let sets = self.config.sets();
        let ways = self.config.ways as usize;
        let line = self.config.line_bytes;
        let mut out = Vec::new();
        for set in 0..sets {
            for w in &mut self.sets[set as usize * ways..(set as usize + 1) * ways] {
                if w.valid && w.dirty {
                    out.push((w.tag * sets + set) * line);
                    w.dirty = false;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512 B.
        Cache::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn address_decomposition_roundtrips() {
        let cache = tiny();
        for addr in [0u64, 64, 4096, 123_456 & !63] {
            let set = cache.set_index(addr);
            let tag = cache.tag(addr);
            assert_eq!(cache.line_base(set, tag), addr & !63);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = tiny();
        // Three lines mapping to set 0: addresses 0, 256, 512 (4 sets x 64B stride = 256).
        cache.access(0, false);
        cache.access(256, false);
        cache.access(0, false); // touch 0 again -> 256 is LRU
        let res = cache.access(512, false);
        assert!(!res.hit);
        // 256 evicted (clean -> no writeback); 0 still resident.
        assert!(res.writeback.is_none());
        assert!(cache.access(0, false).hit);
        assert!(!cache.access(256, false).hit);
    }

    #[test]
    fn dirty_eviction_emits_writeback_with_correct_address() {
        let mut cache = tiny();
        cache.access(256, true); // dirty line in set 0
        cache.access(0, false);
        let res = cache.access(512, false); // evicts 256
        assert_eq!(res.writeback, Some(256));
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut cache = tiny();
        cache.access(256, false);
        cache.access(0, false);
        let res = cache.access(512, false);
        assert!(res.writeback.is_none());
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut cache = tiny();
        cache.access(0, false); // clean fill
        cache.access(0, true); // dirty it via a hit
        cache.access(256, false);
        let res = cache.access(512, false); // evict LRU = 0
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn flush_returns_all_dirty_lines_once() {
        let mut cache = tiny();
        cache.access(0, true);
        cache.access(64, true);
        cache.access(128, false);
        let mut flushed = cache.flush();
        flushed.sort_unstable();
        assert_eq!(flushed, vec![0, 64]);
        assert!(cache.flush().is_empty(), "second flush is a no-op");
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut cache = Cache::new(&CacheConfig::l1_dac17());
        for round in 0..10u64 {
            for line in 0..64u64 {
                cache.access(line * 64, line % 2 == 0);
            }
            if round == 0 {
                assert_eq!(cache.stats().misses, 64);
            }
        }
        // 64 lines of 64B = 4 KB fits easily in 32 KB: all later rounds hit.
        assert_eq!(cache.stats().misses, 64);
        assert_eq!(cache.stats().hits, 9 * 64);
        assert!(cache.stats().hit_rate() > 0.89);
    }
}
