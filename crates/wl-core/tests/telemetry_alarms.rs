//! Integration check that the global telemetry counters stay in lock
//! step with `AttackMonitor`'s own accounting.
//!
//! This lives in its own integration-test binary so the process-global
//! metrics registry is not shared with unrelated tests; assertions are
//! still delta-based for robustness.

use twl_pcm::LogicalPageAddr;
use twl_telemetry::counter;
use twl_wl_core::AttackMonitor;

#[test]
fn alarm_counters_match_monitor_accounting() {
    let windows_before = counter!("twl.wl.monitor.windows").get();
    let alarms_before = counter!("twl.wl.monitor.alarms").get();

    let mut monitor = AttackMonitor::new(8, 100, 0.5);
    // Three attack windows (single hot page), then two benign windows.
    for _ in 0..300 {
        monitor.observe_write(LogicalPageAddr::new(9), None);
    }
    for i in 0..200u64 {
        monitor.observe_write(LogicalPageAddr::new(i % 97), None);
    }
    assert_eq!(monitor.windows(), 5);
    assert_eq!(monitor.alarms(), 3);

    let window_delta = counter!("twl.wl.monitor.windows").get() - windows_before;
    let alarm_delta = counter!("twl.wl.monitor.alarms").get() - alarms_before;
    assert_eq!(
        window_delta,
        monitor.windows(),
        "telemetry window counter diverged from the monitor"
    );
    assert_eq!(
        alarm_delta,
        monitor.alarms(),
        "telemetry alarm counter diverged from the monitor"
    );

    // The counters also surface through the registry snapshot (what
    // `finish_telemetry` exports into JSONL traces).
    let snapshot = twl_telemetry::global().snapshot();
    let exported = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "twl.wl.monitor.alarms")
        .map(|&(_, v)| v);
    assert_eq!(exported, Some(alarms_before + monitor.alarms()));
}
