//! Property tests for the attack-detection substrate: Misra-Gries
//! sketch invariants (including the decrement-all eviction path) and
//! `AttackMonitor` window-rollover accounting.

use proptest::prelude::*;
use std::collections::HashMap;
use twl_pcm::LogicalPageAddr;
use twl_wl_core::{AttackMonitor, MisraGries};

proptest! {
    /// The classic Misra-Gries guarantees, exercised on streams with
    /// far more distinct keys than counters so the decrement-all path
    /// runs constantly:
    ///
    /// * at most `k` counters are ever tracked;
    /// * every estimate is a lower bound on the true count;
    /// * the underestimate is at most `total / (k + 1)`;
    /// * any key with true share above `1 / (k + 1)` is tracked.
    #[test]
    fn misra_gries_bounds_hold(
        k in 1usize..12,
        keys in proptest::collection::vec(0u64..64, 1..800),
    ) {
        let mut mg = MisraGries::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &key in &keys {
            mg.insert(key);
            *truth.entry(key).or_default() += 1;
        }
        let total = keys.len() as u64;
        prop_assert_eq!(mg.total(), total);
        let hh = mg.heavy_hitters();
        prop_assert!(hh.len() <= k, "{} counters tracked with k = {k}", hh.len());
        let slack = total / (k as u64 + 1);
        for (&key, &count) in &truth {
            let est = mg.estimate(key);
            prop_assert!(est <= count, "estimate {est} above true count {count}");
            prop_assert!(
                count - est <= slack,
                "key {key}: underestimate {} exceeds n/(k+1) = {slack}",
                count - est
            );
            if count > slack {
                prop_assert!(est > 0, "heavy hitter {key} (count {count}) evicted");
            }
        }
    }

    /// `heavy_hitters` reports every live counter exactly once, heaviest
    /// first, and the tracked mass never exceeds the stream length.
    #[test]
    fn heavy_hitters_are_sorted_and_bounded(
        keys in proptest::collection::vec(0u64..32, 1..500),
    ) {
        let mut mg = MisraGries::new(5);
        for &key in &keys {
            mg.insert(key);
        }
        let hh = mg.heavy_hitters();
        for pair in hh.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1, "not sorted: {hh:?}");
        }
        for &(key, est) in &hh {
            prop_assert!(est > 0, "zero-count key {key} survived eviction");
            prop_assert_eq!(mg.estimate(key), est);
        }
        let tracked: u64 = hh.iter().map(|&(_, c)| c).sum();
        prop_assert!(tracked <= keys.len() as u64);
        prop_assert!((0.0..=1.0).contains(&mg.tracked_share()));
    }

    /// Window rollover: `windows()` advances exactly every
    /// `window_writes` observations regardless of the stream content,
    /// alarms never exceed windows, and `observe_write` returns `true`
    /// only on an alarming boundary write.
    #[test]
    fn monitor_rollover_accounting(
        window in 1u64..200,
        writes in 0u64..2000,
        stride in 1u64..64,
    ) {
        let mut monitor = AttackMonitor::new(4, window, 0.5);
        let mut boundary_alarms = 0u64;
        for i in 0..writes {
            let closed_with_alarm =
                monitor.observe_write(LogicalPageAddr::new(i % stride), None);
            if closed_with_alarm {
                boundary_alarms += 1;
                // An alarming boundary must land exactly on a window edge.
                prop_assert_eq!((i + 1) % window, 0, "alarm off-boundary at write {i}");
            }
        }
        prop_assert_eq!(monitor.windows(), writes / window);
        prop_assert_eq!(monitor.alarms(), boundary_alarms);
        prop_assert!(monitor.alarms() <= monitor.windows());
        prop_assert!((0.0..=1.0).contains(&monitor.alarm_rate()));
        prop_assert!((0.0..=1.0).contains(&monitor.last_window_share()));
        if monitor.windows() == 0 {
            prop_assert_eq!(monitor.alarm_rate(), 0.0);
            prop_assert_eq!(monitor.last_window_share(), 0.0);
        }
    }

    /// The sketch resets at each boundary: a window of pure attack
    /// writes alarms, and the immediately following window of a uniform
    /// stream (more distinct keys than the threshold share allows)
    /// clears the alarm — state never leaks across windows.
    #[test]
    fn monitor_windows_are_independent(window in 32u64..256) {
        let mut monitor = AttackMonitor::new(4, window, 0.5);
        for _ in 0..window {
            monitor.observe_write(LogicalPageAddr::new(7), None);
        }
        prop_assert!(monitor.under_attack(), "repeat window must alarm");
        prop_assert_eq!(monitor.last_window_share(), 1.0);
        for i in 0..window {
            monitor.observe_write(LogicalPageAddr::new(1000 + i), None);
        }
        prop_assert!(!monitor.under_attack(), "uniform window must clear");
        prop_assert_eq!(monitor.windows(), 2);
        prop_assert_eq!(monitor.alarms(), 1);
    }
}
