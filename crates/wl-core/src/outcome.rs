//! Per-request outcomes returned by wear-leveling schemes.

use serde::{Deserialize, Serialize};
use twl_pcm::PhysicalPageAddr;

/// Result of servicing one logical write through a wear-leveling scheme.
///
/// Besides the physical landing address, the outcome carries the cost
/// model the rest of the stack consumes:
///
/// * `device_writes` — how many PCM page writes the request actually
///   caused (1 for a plain write; 2 for TWL's optimized swap-then-write;
///   more for epoch-style bulk swaps).
/// * `engine_cycles` — pipeline latency added by the scheme's tables and
///   logic on the request path (Table 1: RNG 4, control 5, tables 10).
/// * `blocking_cycles` — time the memory was blocked migrating pages.
///   This is what the attacker can observe with `rdtsc`-style timing and
///   uses to detect swap phases (§3.2, footnote 1).
///
/// # Examples
///
/// ```
/// use twl_pcm::PhysicalPageAddr;
/// use twl_wl_core::WriteOutcome;
///
/// let outcome = WriteOutcome::plain(PhysicalPageAddr::new(7));
/// assert_eq!(outcome.device_writes, 1);
/// assert!(!outcome.swapped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Physical page that received the logical data.
    pub pa: PhysicalPageAddr,
    /// Total device page writes performed servicing this request.
    pub device_writes: u32,
    /// Whether any page migration/swap happened.
    pub swapped: bool,
    /// Scheme-logic latency added to the request, in cycles.
    pub engine_cycles: u64,
    /// Cycles the memory was blocked by migrations (attacker-visible).
    pub blocking_cycles: u64,
}

impl WriteOutcome {
    /// A plain one-page write with no scheme overhead.
    #[must_use]
    pub fn plain(pa: PhysicalPageAddr) -> Self {
        Self {
            pa,
            device_writes: 1,
            swapped: false,
            engine_cycles: 0,
            blocking_cycles: 0,
        }
    }

    /// Extra device writes beyond the one the program asked for.
    #[must_use]
    pub fn overhead_writes(&self) -> u32 {
        self.device_writes.saturating_sub(1)
    }
}

/// Result of servicing a batch of identical logical writes
/// (`WearLeveler::write_batch`).
///
/// A batch is observably equivalent to `serviced` (+1 on failure)
/// sequential `write` calls: `serviced` counts the writes that fully
/// completed, `last` is the outcome the final completed write produced
/// (the timing side channel consumes this once per event rather than
/// once per write — plain stretches between events all share one
/// outcome), and `failure` is the error the `serviced + 1`-th write hit,
/// if any.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// Logical writes that completed.
    pub serviced: u64,
    /// Outcome of the last completed write (`None` iff `serviced == 0`).
    pub last: Option<WriteOutcome>,
    /// Error that stopped the batch early, if any.
    pub failure: Option<twl_pcm::PcmError>,
}

/// Result of servicing one logical read.
///
/// Reads never wear PCM; the outcome only reports where the data lives
/// and the table-lookup latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// Physical page the data was read from.
    pub pa: PhysicalPageAddr,
    /// Scheme-logic latency added to the request, in cycles.
    pub engine_cycles: u64,
}

impl ReadOutcome {
    /// A read with no scheme overhead.
    #[must_use]
    pub fn plain(pa: PhysicalPageAddr) -> Self {
        Self {
            pa,
            engine_cycles: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_write_has_no_overhead() {
        let o = WriteOutcome::plain(PhysicalPageAddr::new(0));
        assert_eq!(o.overhead_writes(), 0);
        assert_eq!(o.blocking_cycles, 0);
    }

    #[test]
    fn overhead_counts_extra_writes() {
        let mut o = WriteOutcome::plain(PhysicalPageAddr::new(0));
        o.device_writes = 3;
        o.swapped = true;
        assert_eq!(o.overhead_writes(), 2);
    }

    #[test]
    fn read_outcome_plain() {
        let r = ReadOutcome::plain(PhysicalPageAddr::new(9));
        assert_eq!(r.pa.index(), 9);
        assert_eq!(r.engine_cycles, 0);
    }
}
