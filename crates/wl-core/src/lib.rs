#![warn(missing_docs)]

//! Wear-leveling abstractions shared by every scheme in `tossup-wl`.
//!
//! The crate defines:
//!
//! * [`WearLeveler`] — the trait all schemes implement (TWL, Security
//!   Refresh, bloom-filter WL, wear-rate leveling, Start-Gap, NOWL). The
//!   simulators in `twl-lifetime` and `twl-memctrl` are generic over it.
//! * [`WriteOutcome`] / [`ReadOutcome`] — per-request results carrying the
//!   physical address used, how many device writes were spent, and the
//!   latency the request experienced. The *blocking* component of that
//!   latency is the side channel the paper's attacker observes to detect
//!   swap phases (§3.2, footnote 1).
//! * [`RemappingTable`] — the logical→physical table (RT in Fig. 1/5) with
//!   a maintained inverse, so swaps are O(1) and the bijection invariant
//!   is checkable.
//! * [`WriteCounterTable`] — the WNT/WCT of the paper.
//! * [`WlStats`] — uniform accounting of logical writes, device writes,
//!   swaps and latency across schemes.
//! * [`Nowl`] — the "no wear leveling" identity baseline.
//! * [`AttackMonitor`] / [`MisraGries`] — online malicious-write-stream
//!   detection in the style of the paper's reference \[11\] (Qureshi+,
//!   HPCA 2011).
//!
//! # Examples
//!
//! ```
//! use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
//! use twl_wl_core::{Nowl, WearLeveler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = PcmConfig::builder().pages(64).mean_endurance(1000).seed(0).build()?;
//! let mut device = PcmDevice::new(&config);
//! let mut scheme = Nowl::new(config.pages);
//! let outcome = scheme.write(LogicalPageAddr::new(5), &mut device)?;
//! assert_eq!(outcome.pa.index(), 5);
//! # Ok(())
//! # }
//! ```

mod monitor;
mod nowl;
mod outcome;
mod stats;
mod tables;
mod traits;

pub use monitor::{AttackMonitor, MisraGries};
pub use nowl::Nowl;
pub use outcome::{BatchOutcome, ReadOutcome, WriteOutcome};
pub use stats::WlStats;
pub use tables::{RemappingTable, WriteCounterTable};
pub use traits::WearLeveler;
