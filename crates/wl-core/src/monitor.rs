//! Online malicious-write-stream detection (Qureshi et al., HPCA 2011
//! — the paper's reference \[11\]).
//!
//! The HPCA'11 line of work observes that wear-out attacks have a
//! statistical signature — a small set of addresses taking an outsized
//! share of the write stream — and detects them *online* with bounded
//! state, adapting the wear-leveling rate when an attack is suspected.
//!
//! This module provides the detection substrate:
//!
//! * [`MisraGries`] — the classic deterministic heavy-hitters sketch:
//!   with `k` counters, any address whose true frequency share exceeds
//!   `1/(k+1)` is guaranteed to be tracked.
//! * [`AttackMonitor`] — a windowed detector over the sketch that
//!   raises an alarm when the tracked heavy hitters' combined share
//!   exceeds a threshold. Benign workloads with smooth locality stay
//!   below it; repeat and inconsistent-write attacks light it up within
//!   a window.

use crate::WriteOutcome;
use serde::{Deserialize, Serialize};
use twl_pcm::LogicalPageAddr;

/// The Misra-Gries heavy-hitters summary.
///
/// Maintains at most `k` candidate counters over a stream. After `n`
/// insertions, every element with true count `> n/(k+1)` is present,
/// and each tracked count underestimates the true count by at most
/// `n/(k+1)`.
///
/// # Examples
///
/// ```
/// use twl_wl_core::MisraGries;
///
/// let mut mg = MisraGries::new(4);
/// for _ in 0..60 {
///     mg.insert(7);
/// }
/// for x in 0..30 {
///     mg.insert(100 + x % 10);
/// }
/// // 7 holds a 2/3 share: guaranteed tracked.
/// assert!(mg.estimate(7) > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisraGries {
    counters: Vec<(u64, u64)>,
    capacity: usize,
    total: u64,
}

impl MisraGries {
    /// Creates a sketch with `k` counters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sketch needs at least one counter");
        Self {
            counters: Vec::with_capacity(k),
            capacity: k,
            total: 0,
        }
    }

    /// Inserts one occurrence of `key`.
    pub fn insert(&mut self, key: u64) {
        self.insert_n(key, 1);
    }

    /// Inserts `n` occurrences of `key` in O(k), leaving the sketch in
    /// exactly the state `n` sequential [`MisraGries::insert`] calls
    /// would.
    ///
    /// The collapse is exact because repeated inserts of one key only
    /// take three shapes: a tracked key just accumulates; an untracked
    /// key with a free slot lands once and accumulates; and on a full
    /// sketch the first `d` inserts (where `d` is the smallest tracked
    /// count) each run the decrement-all step until a slot opens, after
    /// which the remaining `n − d` land on the key.
    pub fn insert_n(&mut self, key: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if let Some(entry) = self.counters.iter_mut().find(|(k, _)| *k == key) {
            entry.1 += n;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.push((key, n));
            return;
        }
        // Decrement-all, n times, collapsed (tracked counts are always
        // ≥ 1, so d ≥ 1 and the n == 1 case never pushes — the
        // signature Misra-Gries step).
        let d = self.counters.iter().map(|&(_, c)| c).min().unwrap_or(0);
        let drained = n.min(d);
        for entry in &mut self.counters {
            entry.1 -= drained;
        }
        self.counters.retain(|&(_, c)| c > 0);
        if n > d {
            self.counters.push((key, n - d));
        }
    }

    /// Lower-bound estimate of `key`'s count (0 if untracked).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, c)| c)
    }

    /// Total insertions so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Combined tracked count as a fraction of the stream — high when a
    /// few keys dominate, near zero for uniform streams.
    #[must_use]
    pub fn tracked_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let tracked: u64 = self.counters.iter().map(|&(_, c)| c).sum();
        tracked as f64 / self.total as f64
    }

    /// The tracked keys and their estimates, heaviest first.
    #[must_use]
    pub fn heavy_hitters(&self) -> Vec<(u64, u64)> {
        let mut hh = self.counters.clone();
        hh.sort_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        hh
    }

    /// Clears the sketch (window boundary).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.total = 0;
    }
}

/// Windowed attack detector over write-stream concentration.
///
/// Feed every logical write (and optionally its [`WriteOutcome`], for
/// future latency-based features); at each window boundary the detector
/// compares the heavy hitters' combined share against the threshold and
/// raises/clears the alarm. HPCA'11-style systems react to the alarm by
/// accelerating their wear-leveling rate; here the alarm is exposed for
/// the integration layer to act on.
///
/// # Examples
///
/// ```
/// use twl_pcm::LogicalPageAddr;
/// use twl_wl_core::AttackMonitor;
///
/// let mut monitor = AttackMonitor::new(16, 1000, 0.5);
/// for _ in 0..2000 {
///     monitor.observe_write(LogicalPageAddr::new(3), None);
/// }
/// assert!(monitor.under_attack());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackMonitor {
    sketch: MisraGries,
    window_writes: u64,
    threshold_share: f64,
    seen_in_window: u64,
    under_attack: bool,
    alarms: u64,
    windows: u64,
    last_share: f64,
}

impl AttackMonitor {
    /// Creates a detector with `k` sketch counters, a window of
    /// `window_writes` writes, and an alarm threshold on the heavy
    /// hitters' combined share.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the threshold is not in `(0, 1]`.
    #[must_use]
    pub fn new(k: usize, window_writes: u64, threshold_share: f64) -> Self {
        assert!(window_writes > 0, "window must be positive");
        assert!(
            threshold_share > 0.0 && threshold_share <= 1.0,
            "threshold must be a nonzero share"
        );
        Self {
            sketch: MisraGries::new(k),
            window_writes,
            threshold_share,
            seen_in_window: 0,
            under_attack: false,
            alarms: 0,
            windows: 0,
            last_share: 0.0,
        }
    }

    /// A configuration suited to page-granularity devices: 32 counters,
    /// 16 k-write windows, alarm at 40 % concentration.
    #[must_use]
    pub fn for_pages() -> Self {
        Self::new(32, 16_384, 0.4)
    }

    /// Feeds one write; returns `true` if this write closed a window
    /// that raised the alarm.
    pub fn observe_write(&mut self, la: LogicalPageAddr, _outcome: Option<&WriteOutcome>) -> bool {
        self.sketch.insert(la.index());
        self.seen_in_window += 1;
        if self.seen_in_window < self.window_writes {
            return false;
        }
        self.close_window().2
    }

    /// Feeds `n` consecutive writes to the same page, chunked at window
    /// boundaries so every window closes with exactly the state the
    /// per-write path would have produced.
    ///
    /// Returns `(window_index, share)` for each window that closed with
    /// the alarm raised, so callers can emit the same per-window alarm
    /// records as the scalar path.
    pub fn observe_writes(&mut self, la: LogicalPageAddr, mut n: u64) -> Vec<(u64, f64)> {
        let mut alarmed = Vec::new();
        while n > 0 {
            let room = self.window_writes - self.seen_in_window;
            let chunk = n.min(room);
            self.sketch.insert_n(la.index(), chunk);
            self.seen_in_window += chunk;
            n -= chunk;
            if self.seen_in_window == self.window_writes {
                let (window, share, alarm) = self.close_window();
                if alarm {
                    alarmed.push((window, share));
                }
            }
        }
        alarmed
    }

    /// Evaluates and resets the just-filled window, returning its index,
    /// measured share, and whether it alarmed.
    fn close_window(&mut self) -> (u64, f64, bool) {
        self.windows += 1;
        self.seen_in_window = 0;
        let share = self.sketch.tracked_share();
        self.last_share = share;
        self.under_attack = share >= self.threshold_share;
        twl_telemetry::counter!("twl.wl.monitor.windows").inc();
        if self.under_attack {
            self.alarms += 1;
            twl_telemetry::counter!("twl.wl.monitor.alarms").inc();
        }
        self.sketch.clear();
        (self.windows, share, self.under_attack)
    }

    /// Whether the most recent window looked like an attack.
    #[must_use]
    pub fn under_attack(&self) -> bool {
        self.under_attack
    }

    /// Heavy-hitter share measured when the most recent window closed
    /// (0.0 before the first window completes).
    #[must_use]
    pub fn last_window_share(&self) -> f64 {
        self.last_share
    }

    /// Windows that raised the alarm.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Windows evaluated.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Fraction of windows that alarmed (false-positive rate on benign
    /// streams, detection rate on attack streams).
    #[must_use]
    pub fn alarm_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.alarms as f64 / self.windows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misra_gries_guarantees_heavy_hitters() {
        let mut mg = MisraGries::new(9);
        // Key 1 takes 30% of 1000 items: share > 1/10 → guaranteed.
        for i in 0..1000u64 {
            if i % 10 < 3 {
                mg.insert(1);
            } else {
                mg.insert(1000 + i);
            }
        }
        assert!(mg.estimate(1) > 0, "30% heavy hitter must be tracked");
        // Underestimate bound: true 300, error ≤ 1000/10.
        assert!(mg.estimate(1) >= 200);
        assert!(mg.estimate(1) <= 300);
    }

    #[test]
    fn uniform_stream_has_low_tracked_share() {
        let mut mg = MisraGries::new(8);
        for i in 0..10_000u64 {
            mg.insert(i % 1000);
        }
        assert!(mg.tracked_share() < 0.05, "share {}", mg.tracked_share());
    }

    #[test]
    fn heavy_hitters_sorted_heaviest_first() {
        let mut mg = MisraGries::new(4);
        for _ in 0..50 {
            mg.insert(5);
        }
        for _ in 0..20 {
            mg.insert(9);
        }
        let hh = mg.heavy_hitters();
        assert_eq!(hh[0].0, 5);
        assert_eq!(hh[1].0, 9);
    }

    #[test]
    fn monitor_alarms_on_repeat_stream() {
        let mut monitor = AttackMonitor::new(8, 100, 0.5);
        let mut alarmed = false;
        for _ in 0..500 {
            alarmed |= monitor.observe_write(LogicalPageAddr::new(42), None);
        }
        assert!(alarmed);
        assert!(monitor.under_attack());
        assert_eq!(monitor.alarm_rate(), 1.0);
    }

    #[test]
    fn monitor_stays_quiet_on_uniform_stream() {
        let mut monitor = AttackMonitor::new(8, 1000, 0.5);
        for i in 0..10_000u64 {
            monitor.observe_write(LogicalPageAddr::new(i % 512), None);
        }
        assert!(!monitor.under_attack());
        assert_eq!(monitor.alarms(), 0);
        assert_eq!(monitor.windows(), 10);
    }

    #[test]
    fn alarm_clears_when_the_attack_stops() {
        let mut monitor = AttackMonitor::new(8, 100, 0.5);
        for _ in 0..100 {
            monitor.observe_write(LogicalPageAddr::new(1), None);
        }
        assert!(monitor.under_attack());
        for i in 0..100u64 {
            monitor.observe_write(LogicalPageAddr::new(i), None);
        }
        assert!(!monitor.under_attack());
    }

    #[test]
    fn insert_n_matches_sequential_inserts() {
        // Exercise every branch: tracked key, free slot, and the
        // full-sketch decrement cascade (both n ≤ d and n > d).
        for &(prefill, key, n) in &[
            (0u64, 7u64, 5u64), // free slot
            (4, 0, 3),          // already tracked
            (4, 99, 2),         // full, n ≤ min count
            (4, 99, 50),        // full, n > min count → key lands
        ] {
            let mut bulk = MisraGries::new(4);
            let mut seq = MisraGries::new(4);
            for k in 0..prefill {
                for _ in 0..10 {
                    bulk.insert(k);
                    seq.insert(k);
                }
            }
            bulk.insert_n(key, n);
            for _ in 0..n {
                seq.insert(key);
            }
            assert_eq!(bulk, seq, "prefill={prefill} key={key} n={n}");
        }
    }

    #[test]
    fn insert_n_zero_is_a_noop() {
        let mut mg = MisraGries::new(2);
        mg.insert_n(3, 0);
        assert_eq!(mg.total(), 0);
        assert_eq!(mg.estimate(3), 0);
    }

    #[test]
    fn observe_writes_matches_per_write_observation() {
        let mut bulk = AttackMonitor::new(8, 100, 0.5);
        let mut seq = AttackMonitor::new(8, 100, 0.5);
        let la = LogicalPageAddr::new(42);
        // 37 writes of warm-up so batches straddle window boundaries.
        for _ in 0..37 {
            bulk.observe_write(la, None);
            seq.observe_write(la, None);
        }
        let alarmed = bulk.observe_writes(la, 463);
        let mut seq_alarmed = Vec::new();
        for _ in 0..463 {
            if seq.observe_write(la, None) {
                seq_alarmed.push((seq.windows(), seq.last_window_share()));
            }
        }
        assert_eq!(bulk, seq);
        assert_eq!(alarmed, seq_alarmed);
        assert_eq!(bulk.windows(), 5);
        assert_eq!(bulk.alarms(), 5);
    }

    #[test]
    #[should_panic(expected = "sketch needs at least one counter")]
    fn zero_counters_panics() {
        let _ = MisraGries::new(0);
    }
}
