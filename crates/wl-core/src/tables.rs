//! Address-mapping and counter tables (RT, WNT/WCT of the paper).

use serde::{Deserialize, Serialize};
use twl_pcm::{LogicalPageAddr, PhysicalPageAddr};

/// The remapping table (RT): a bijection between logical and physical
/// page addresses with a maintained inverse.
///
/// Every scheme in the paper keeps this table (Fig. 1, Fig. 5). The
/// inverse map makes page swaps O(1) and lets tests assert the core
/// invariant — *the mapping is a permutation at all times* — cheaply.
///
/// # Examples
///
/// ```
/// use twl_pcm::{LogicalPageAddr, PhysicalPageAddr};
/// use twl_wl_core::RemappingTable;
///
/// let mut rt = RemappingTable::identity(8);
/// rt.swap_physical(PhysicalPageAddr::new(0), PhysicalPageAddr::new(5));
/// assert_eq!(rt.translate(LogicalPageAddr::new(0)).index(), 5);
/// assert_eq!(rt.translate(LogicalPageAddr::new(5)).index(), 0);
/// assert!(rt.is_bijective());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemappingTable {
    forward: Vec<u64>,
    inverse: Vec<u64>,
}

impl RemappingTable {
    /// Creates the identity mapping over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    #[must_use]
    pub fn identity(pages: u64) -> Self {
        assert!(pages > 0, "remapping table cannot be empty");
        let forward: Vec<u64> = (0..pages).collect();
        Self {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Number of pages.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Whether the table is empty (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Logical → physical translation.
    ///
    /// # Panics
    ///
    /// Panics if `la` is out of range.
    #[must_use]
    pub fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(self.forward[la.as_usize()])
    }

    /// Physical → logical reverse translation.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is out of range.
    #[must_use]
    pub fn reverse(&self, pa: PhysicalPageAddr) -> LogicalPageAddr {
        LogicalPageAddr::new(self.inverse[pa.as_usize()])
    }

    /// Swaps the logical contents of two physical pages: whatever logical
    /// addresses mapped to `a` and `b` now map to `b` and `a`.
    ///
    /// This is the primitive behind every data migration: after the
    /// device copies page contents, the table swap makes it architectural.
    ///
    /// # Panics
    ///
    /// Panics if either address is out of range.
    pub fn swap_physical(&mut self, a: PhysicalPageAddr, b: PhysicalPageAddr) {
        let la_a = self.inverse[a.as_usize()];
        let la_b = self.inverse[b.as_usize()];
        self.forward[la_a as usize] = b.index();
        self.forward[la_b as usize] = a.index();
        self.inverse[a.as_usize()] = la_b;
        self.inverse[b.as_usize()] = la_a;
    }

    /// Swaps the physical frames of two logical pages.
    ///
    /// # Panics
    ///
    /// Panics if either address is out of range.
    pub fn swap_logical(&mut self, a: LogicalPageAddr, b: LogicalPageAddr) {
        let pa_a = self.translate(a);
        let pa_b = self.translate(b);
        self.swap_physical(pa_a, pa_b);
    }

    /// Verifies the permutation invariant (O(n); for tests/debugging).
    #[must_use]
    pub fn is_bijective(&self) -> bool {
        self.forward
            .iter()
            .enumerate()
            .all(|(la, &pa)| self.inverse.get(pa as usize) == Some(&(la as u64)))
    }

    /// Bits per entry for the hardware-overhead model: ⌈log₂ pages⌉.
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        u64::BITS - (self.len() - 1).leading_zeros()
    }
}

/// A per-logical-page write counter table (the WNT of wear-rate leveling
/// and the WCT of TWL).
///
/// # Examples
///
/// ```
/// use twl_pcm::LogicalPageAddr;
/// use twl_wl_core::WriteCounterTable;
///
/// let mut wct = WriteCounterTable::new(4);
/// let la = LogicalPageAddr::new(2);
/// assert_eq!(wct.increment(la), 1);
/// assert_eq!(wct.count(la), 1);
/// wct.reset_all();
/// assert_eq!(wct.count(la), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteCounterTable {
    counts: Vec<u64>,
}

impl WriteCounterTable {
    /// Creates a zeroed table over `pages` pages.
    #[must_use]
    pub fn new(pages: u64) -> Self {
        Self {
            counts: vec![0; pages as usize],
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Whether the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Increments a logical page's counter, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `la` is out of range.
    pub fn increment(&mut self, la: LogicalPageAddr) -> u64 {
        self.add(la, 1)
    }

    /// Adds `n` to a logical page's counter in O(1), returning the new
    /// value — equivalent to `n` [`WriteCounterTable::increment`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `la` is out of range.
    pub fn add(&mut self, la: LogicalPageAddr, n: u64) -> u64 {
        let c = &mut self.counts[la.as_usize()];
        *c += n;
        *c
    }

    /// Current count for a logical page.
    ///
    /// # Panics
    ///
    /// Panics if `la` is out of range.
    #[must_use]
    pub fn count(&self, la: LogicalPageAddr) -> u64 {
        self.counts[la.as_usize()]
    }

    /// Resets one counter.
    ///
    /// # Panics
    ///
    /// Panics if `la` is out of range.
    pub fn reset(&mut self, la: LogicalPageAddr) {
        self.counts[la.as_usize()] = 0;
    }

    /// Zeroes every counter (start of a new prediction epoch).
    pub fn reset_all(&mut self) {
        self.counts.fill(0);
    }

    /// Logical addresses sorted by descending count (hottest first).
    #[must_use]
    pub fn hottest_first(&self) -> Vec<LogicalPageAddr> {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse((self.counts[i], i as u64)));
        order
            .into_iter()
            .map(|i| LogicalPageAddr::new(i as u64))
            .collect()
    }

    /// Raw counters, indexed by logical page.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_translates_to_self() {
        let rt = RemappingTable::identity(16);
        for i in 0..16 {
            assert_eq!(rt.translate(LogicalPageAddr::new(i)).index(), i);
            assert_eq!(rt.reverse(PhysicalPageAddr::new(i)).index(), i);
        }
        assert!(rt.is_bijective());
    }

    #[test]
    fn swap_physical_maintains_inverse() {
        let mut rt = RemappingTable::identity(8);
        rt.swap_physical(PhysicalPageAddr::new(1), PhysicalPageAddr::new(6));
        rt.swap_physical(PhysicalPageAddr::new(6), PhysicalPageAddr::new(3));
        assert!(rt.is_bijective());
        // LA1 -> PA6 -> PA3 chain.
        assert_eq!(rt.translate(LogicalPageAddr::new(1)).index(), 3);
        assert_eq!(rt.reverse(PhysicalPageAddr::new(3)).index(), 1);
    }

    #[test]
    fn swap_logical_swaps_frames() {
        let mut rt = RemappingTable::identity(8);
        rt.swap_logical(LogicalPageAddr::new(0), LogicalPageAddr::new(7));
        assert_eq!(rt.translate(LogicalPageAddr::new(0)).index(), 7);
        assert_eq!(rt.translate(LogicalPageAddr::new(7)).index(), 0);
        assert!(rt.is_bijective());
    }

    #[test]
    fn self_swap_is_identity() {
        let mut rt = RemappingTable::identity(4);
        rt.swap_physical(PhysicalPageAddr::new(2), PhysicalPageAddr::new(2));
        assert!(rt.is_bijective());
        assert_eq!(rt.translate(LogicalPageAddr::new(2)).index(), 2);
    }

    #[test]
    fn entry_bits_rounds_up() {
        assert_eq!(RemappingTable::identity(2).entry_bits(), 1);
        assert_eq!(RemappingTable::identity(8).entry_bits(), 3);
        assert_eq!(RemappingTable::identity(9).entry_bits(), 4);
        assert_eq!(RemappingTable::identity(8_388_608).entry_bits(), 23);
    }

    #[test]
    fn counters_track_and_sort() {
        let mut wct = WriteCounterTable::new(4);
        for _ in 0..5 {
            wct.increment(LogicalPageAddr::new(2));
        }
        wct.increment(LogicalPageAddr::new(0));
        let order = wct.hottest_first();
        assert_eq!(order[0].index(), 2);
        assert_eq!(order[1].index(), 0);
        wct.reset(LogicalPageAddr::new(2));
        assert_eq!(wct.count(LogicalPageAddr::new(2)), 0);
        assert_eq!(wct.count(LogicalPageAddr::new(0)), 1);
    }

    #[test]
    fn bulk_add_matches_repeated_increment() {
        let mut bulk = WriteCounterTable::new(4);
        let mut seq = WriteCounterTable::new(4);
        let la = LogicalPageAddr::new(3);
        assert_eq!(bulk.add(la, 5), 5);
        for _ in 0..5 {
            seq.increment(la);
        }
        assert_eq!(bulk, seq);
        assert_eq!(bulk.add(la, 0), 5, "adding zero is a no-op");
    }

    #[test]
    #[should_panic(expected = "remapping table cannot be empty")]
    fn empty_table_panics() {
        let _ = RemappingTable::identity(0);
    }
}
