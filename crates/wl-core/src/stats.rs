//! Uniform wear-leveling accounting.

use crate::WriteOutcome;
use serde::{Deserialize, Serialize};

/// Running statistics every [`WearLeveler`](crate::WearLeveler) maintains.
///
/// The two ratios the paper reports come straight from these counters:
///
/// * **swap/write ratio** (Fig. 7a) = `swaps / logical_writes`;
/// * **extra-write ratio** = `(device_writes − logical_writes) /
///   logical_writes` (§5.2 quotes ≈2.2 % for toss-up interval 32).
///
/// # Examples
///
/// ```
/// use twl_pcm::PhysicalPageAddr;
/// use twl_wl_core::{WlStats, WriteOutcome};
///
/// let mut stats = WlStats::new();
/// stats.record_write(&WriteOutcome::plain(PhysicalPageAddr::new(0)));
/// assert_eq!(stats.logical_writes, 1);
/// assert_eq!(stats.swap_per_write(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WlStats {
    /// Logical write requests serviced.
    pub logical_writes: u64,
    /// Device page writes performed (≥ `logical_writes`).
    pub device_writes: u64,
    /// Page swaps / migrations performed.
    pub swaps: u64,
    /// Total engine (table/logic) cycles added on the request path.
    pub engine_cycles: u64,
    /// Total cycles the memory was blocked by migrations.
    pub blocking_cycles: u64,
}

impl WlStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one write outcome into the totals.
    pub fn record_write(&mut self, outcome: &WriteOutcome) {
        self.logical_writes += 1;
        self.device_writes += u64::from(outcome.device_writes);
        if outcome.swapped {
            self.swaps += 1;
        }
        self.engine_cycles += outcome.engine_cycles;
        self.blocking_cycles += outcome.blocking_cycles;
    }

    /// Folds `n` identical write outcomes into the totals in O(1) — the
    /// accounting arm of the batched fast path.
    pub fn record_write_n(&mut self, outcome: &WriteOutcome, n: u64) {
        self.logical_writes += n;
        self.device_writes += n * u64::from(outcome.device_writes);
        if outcome.swapped {
            self.swaps += n;
        }
        self.engine_cycles += n * outcome.engine_cycles;
        self.blocking_cycles += n * outcome.blocking_cycles;
    }

    /// Folds another accumulator's totals into these — the flush arm of
    /// batch loops that record into a local `WlStats` and merge once.
    /// Every field is a sum, so `absorb` of a local accumulator is
    /// identical to having recorded each write here directly.
    pub fn absorb(&mut self, other: &WlStats) {
        self.logical_writes += other.logical_writes;
        self.device_writes += other.device_writes;
        self.swaps += other.swaps;
        self.engine_cycles += other.engine_cycles;
        self.blocking_cycles += other.blocking_cycles;
    }

    /// Swap operations per logical write (Fig. 7a's y-axis).
    #[must_use]
    pub fn swap_per_write(&self) -> f64 {
        if self.logical_writes == 0 {
            0.0
        } else {
            self.swaps as f64 / self.logical_writes as f64
        }
    }

    /// Fraction of device writes that are overhead.
    ///
    /// Saturates at 0.0 when `device_writes < logical_writes` (possible
    /// for hand-built stats or partially recorded outcomes) rather than
    /// wrapping the subtraction.
    #[must_use]
    pub fn extra_write_ratio(&self) -> f64 {
        if self.logical_writes == 0 {
            0.0
        } else {
            self.device_writes.saturating_sub(self.logical_writes) as f64
                / self.logical_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PhysicalPageAddr;

    #[test]
    fn ratios_from_mixed_outcomes() {
        let mut stats = WlStats::new();
        stats.record_write(&WriteOutcome::plain(PhysicalPageAddr::new(0)));
        stats.record_write(&WriteOutcome {
            pa: PhysicalPageAddr::new(1),
            device_writes: 2,
            swapped: true,
            engine_cycles: 9,
            blocking_cycles: 2250,
        });
        assert_eq!(stats.logical_writes, 2);
        assert_eq!(stats.device_writes, 3);
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.swap_per_write(), 0.5);
        assert_eq!(stats.extra_write_ratio(), 0.5);
        assert_eq!(stats.engine_cycles, 9);
        assert_eq!(stats.blocking_cycles, 2250);
    }

    #[test]
    fn record_write_n_matches_repeated_record_write() {
        let outcome = WriteOutcome {
            pa: PhysicalPageAddr::new(1),
            device_writes: 2,
            swapped: true,
            engine_cycles: 9,
            blocking_cycles: 50,
        };
        let mut bulk = WlStats::new();
        bulk.record_write_n(&outcome, 5);
        let mut seq = WlStats::new();
        for _ in 0..5 {
            seq.record_write(&outcome);
        }
        assert_eq!(bulk, seq);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let stats = WlStats::new();
        assert_eq!(stats.swap_per_write(), 0.0);
        assert_eq!(stats.extra_write_ratio(), 0.0);
    }

    #[test]
    fn zero_write_ratios_are_finite_not_nan() {
        let stats = WlStats::new();
        assert!(stats.swap_per_write().is_finite());
        assert!(stats.extra_write_ratio().is_finite());
    }

    #[test]
    fn extra_write_ratio_saturates_below_parity() {
        // device_writes < logical_writes must clamp to 0.0, not wrap to
        // a huge u64 difference.
        let stats = WlStats {
            logical_writes: 10,
            device_writes: 7,
            ..WlStats::default()
        };
        assert_eq!(stats.extra_write_ratio(), 0.0);
    }
}
