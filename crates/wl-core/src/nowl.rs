//! The "no wear leveling" baseline (NOWL in the paper's figures).

use crate::{ReadOutcome, WearLeveler, WlStats, WriteOutcome};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};

/// Identity mapping with zero overhead: logical page *i* is physical
/// page *i*, forever.
///
/// This is the paper's `NOWL` reference point in Figs. 6, 8 and Table 2's
/// "Lifetime w/o WL" column. Under any localized write pattern it dies as
/// fast as its hottest weak page allows.
///
/// # Examples
///
/// ```
/// use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
/// use twl_wl_core::{Nowl, WearLeveler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(8).mean_endurance(100).seed(0).build()?;
/// let mut device = PcmDevice::new(&config);
/// let mut nowl = Nowl::new(8);
/// let out = nowl.write(LogicalPageAddr::new(3), &mut device)?;
/// assert_eq!(out.pa.index(), 3);
/// assert_eq!(nowl.stats().device_writes, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nowl {
    pages: u64,
    stats: WlStats,
}

impl Nowl {
    /// Creates the baseline over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    #[must_use]
    pub fn new(pages: u64) -> Self {
        assert!(pages > 0, "device must have pages");
        Self {
            pages,
            stats: WlStats::new(),
        }
    }
}

impl WearLeveler for Nowl {
    fn name(&self) -> &str {
        "NOWL"
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(la.index())
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let pa = self.translate(la);
        device.write_page(pa)?;
        let outcome = WriteOutcome::plain(pa);
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome::plain(pa))
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    #[test]
    fn repeat_writes_kill_one_page() {
        let config = PcmConfig::builder()
            .pages(4)
            .mean_endurance(10)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&config);
        let mut nowl = Nowl::new(4);
        let la = LogicalPageAddr::new(1);
        for _ in 0..10 {
            nowl.write(la, &mut device).unwrap();
        }
        let err = nowl.write(la, &mut device).unwrap_err();
        assert!(matches!(err, PcmError::PageWornOut { addr, .. } if addr.index() == 1));
        assert_eq!(nowl.stats().logical_writes, 10);
        assert_eq!(nowl.stats().swaps, 0);
    }

    #[test]
    fn read_has_no_side_effects() {
        let config = PcmConfig::builder().pages(4).build().unwrap();
        let device = PcmDevice::new(&config);
        let mut nowl = Nowl::new(4);
        let r = nowl.read(LogicalPageAddr::new(2), &device).unwrap();
        assert_eq!(r.pa.index(), 2);
        assert_eq!(nowl.stats().logical_writes, 0);
    }
}
