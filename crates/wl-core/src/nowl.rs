//! The "no wear leveling" baseline (NOWL in the paper's figures).

use crate::{BatchOutcome, ReadOutcome, WearLeveler, WlStats, WriteOutcome};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};

/// Identity mapping with zero overhead: logical page *i* is physical
/// page *i*, forever.
///
/// This is the paper's `NOWL` reference point in Figs. 6, 8 and Table 2's
/// "Lifetime w/o WL" column. Under any localized write pattern it dies as
/// fast as its hottest weak page allows.
///
/// # Examples
///
/// ```
/// use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
/// use twl_wl_core::{Nowl, WearLeveler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(8).mean_endurance(100).seed(0).build()?;
/// let mut device = PcmDevice::new(&config);
/// let mut nowl = Nowl::new(8);
/// let out = nowl.write(LogicalPageAddr::new(3), &mut device)?;
/// assert_eq!(out.pa.index(), 3);
/// assert_eq!(nowl.stats().device_writes, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nowl {
    pages: u64,
    stats: WlStats,
}

impl Nowl {
    /// Creates the baseline over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    #[must_use]
    pub fn new(pages: u64) -> Self {
        assert!(pages > 0, "device must have pages");
        Self {
            pages,
            stats: WlStats::new(),
        }
    }
}

impl WearLeveler for Nowl {
    fn name(&self) -> &str {
        "NOWL"
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(la.index())
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // Identity mapping, one device write per logical write: a batch
        // of `n` grows exactly one page's wear by exactly `n`.
        wear_margin.saturating_sub(1).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let pa = self.translate(la);
        device.write_page(pa)?;
        let outcome = WriteOutcome::plain(pa);
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        // NOWL has no events at all: the whole batch is one bulk write.
        let pa = self.translate(la);
        let bulk = device.write_page_n(pa, n);
        let mut batch = BatchOutcome {
            serviced: bulk.landed,
            last: None,
            failure: bulk.failure,
        };
        if bulk.landed > 0 {
            let outcome = WriteOutcome::plain(pa);
            self.stats.record_write_n(&outcome, bulk.landed);
            batch.last = Some(outcome);
        }
        batch
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome::plain(pa))
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    #[test]
    fn repeat_writes_kill_one_page() {
        let config = PcmConfig::builder()
            .pages(4)
            .mean_endurance(10)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&config);
        let mut nowl = Nowl::new(4);
        let la = LogicalPageAddr::new(1);
        for _ in 0..10 {
            nowl.write(la, &mut device).unwrap();
        }
        let err = nowl.write(la, &mut device).unwrap_err();
        assert!(matches!(err, PcmError::PageWornOut { addr, .. } if addr.index() == 1));
        assert_eq!(nowl.stats().logical_writes, 10);
        assert_eq!(nowl.stats().swaps, 0);
    }

    #[test]
    fn write_batch_matches_sequential_writes() {
        let config = PcmConfig::builder()
            .pages(4)
            .mean_endurance(10)
            .sigma_fraction(0.0)
            .build()
            .unwrap();
        let mut dev_bulk = PcmDevice::new(&config);
        let mut dev_seq = PcmDevice::new(&config);
        let mut bulk = Nowl::new(4);
        let mut seq = Nowl::new(4);
        let la = LogicalPageAddr::new(2);
        // 15 > endurance 10: the batch must stop at the failing write.
        let batch = bulk.write_batch(la, 15, &mut dev_bulk);
        let mut seq_serviced = 0;
        let seq_failure = loop {
            match seq.write(la, &mut dev_seq) {
                Ok(_) => seq_serviced += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(batch.serviced, seq_serviced);
        assert_eq!(batch.failure, Some(seq_failure));
        assert_eq!(bulk.stats(), seq.stats());
        assert_eq!(dev_bulk.wear_counters(), dev_seq.wear_counters());
        assert_eq!(
            batch.last,
            Some(WriteOutcome::plain(PhysicalPageAddr::new(2)))
        );
    }

    #[test]
    fn read_has_no_side_effects() {
        let config = PcmConfig::builder().pages(4).build().unwrap();
        let device = PcmDevice::new(&config);
        let mut nowl = Nowl::new(4);
        let r = nowl.read(LogicalPageAddr::new(2), &device).unwrap();
        assert_eq!(r.pa.index(), 2);
        assert_eq!(nowl.stats().logical_writes, 0);
    }
}
