//! The `WearLeveler` trait.

use crate::{BatchOutcome, ReadOutcome, WlStats, WriteOutcome};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};

/// A wear-leveling scheme sitting between logical addresses and a
/// [`PcmDevice`].
///
/// Implementations own their mapping state (remapping tables or keyed
/// permutations) and perform all device writes a request implies —
/// including migrations — so the wear they cause is accounted exactly
/// where the scheme decides to put it. The simulators in `twl-lifetime`
/// and `twl-memctrl` drive any `dyn WearLeveler` identically; the trait
/// is object-safe on purpose.
///
/// # Errors
///
/// `write` propagates [`PcmError::PageWornOut`] from the device; the
/// first such error defines the device's lifetime in the paper's
/// methodology. An error may surface from a *migration* write, not only
/// from the requested page — wear-out during a swap still kills the
/// device.
///
/// `Send` is a supertrait: schemes are plain tables and RNG state, and
/// services (`twl-serviced` workers, `twl-blockd` connection threads)
/// move or share `Box<dyn WearLeveler>` across threads.
pub trait WearLeveler: Send {
    /// A short human-readable scheme name (`"TWL_swp"`, `"SR"`, …).
    fn name(&self) -> &str;

    /// Number of pages the scheme manages.
    fn page_count(&self) -> u64;

    /// Current logical→physical translation (the read path of Fig. 5a).
    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr;

    /// Services a logical write, performing every device write it
    /// implies.
    ///
    /// # Errors
    ///
    /// Returns the device's [`PcmError`] on wear-out or bad addressing.
    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError>;

    /// Services `n` consecutive writes to the same logical page.
    ///
    /// This is the scheme-level hook of the event-skipping fast path.
    /// The contract is strict: for any scheme state, `write_batch(la, n)`
    /// must leave the scheme, its stats, and the device in exactly the
    /// state `n` sequential `write(la)` calls would have, and must stop
    /// at the first failing write (reporting it in
    /// [`BatchOutcome::failure`] with the completed count in
    /// [`BatchOutcome::serviced`]). The default implementation simply
    /// loops the scalar path, so every scheme is correct for free;
    /// schemes whose inter-event write path is deterministic (the TWL
    /// engine, NOWL, BWL, Start-Gap) override it to fast-forward plain
    /// stretches with bulk device writes.
    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        let mut batch = BatchOutcome::default();
        for _ in 0..n {
            match self.write(la, device) {
                Ok(outcome) => {
                    batch.serviced += 1;
                    batch.last = Some(outcome);
                }
                Err(e) => {
                    batch.failure = Some(e);
                    break;
                }
            }
        }
        batch
    }

    /// Largest batch of same-page logical writes guaranteed to grow any
    /// single physical page's wear by *strictly less than* `wear_margin`
    /// device writes.
    ///
    /// This is the pacing hook of the exact batched degradation loop:
    /// the fault simulator knows how far every page is from its next
    /// observable fault event (its *wear margin*) and asks the scheme
    /// how many logical writes it can absorb without any page crossing
    /// that margin mid-batch. Returning `1` is always safe — a single
    /// logical write is the granularity at which the per-write reference
    /// loop observes faults too, so whatever wear one write causes can
    /// never be detected "late". Schemes override this with a bound
    /// derived from their own write amplification (requests, migrations,
    /// epoch bursts) to let quiet stretches batch by the thousands.
    ///
    /// The contract is one-sided: the returned count may be
    /// conservative (smaller batches only cost speed), but it must
    /// never allow a page to gain `wear_margin` or more wear within one
    /// batch of more than one write.
    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        let _ = wear_margin;
        1
    }

    /// Services a logical read.
    ///
    /// The default implementation translates, validates against the
    /// device, and charges no engine latency; schemes whose read path
    /// touches tables (all of them, in practice) override the latency.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::AddrOutOfRange`] if the translation escapes
    /// the device.
    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome::plain(pa))
    }

    /// Accumulated accounting since construction.
    fn stats(&self) -> &WlStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nowl;

    #[test]
    fn trait_is_object_safe() {
        let scheme = Nowl::new(8);
        let obj: Box<dyn WearLeveler> = Box::new(scheme);
        assert_eq!(obj.page_count(), 8);
    }
}
