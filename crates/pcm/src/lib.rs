#![warn(missing_docs)]

//! Phase-change-memory device model for the `tossup-wl` simulator.
//!
//! This crate is the hardware substrate under every wear-leveling scheme:
//! a page-addressable PCM array whose per-page write endurance follows the
//! process-variation (PV) model of the DAC'17 paper (§5.1): a Gaussian
//! with mean 10⁸ writes and standard deviation 11 % of the mean, tested
//! and stored at page granularity.
//!
//! The device is deliberately *dumb*: it exposes page reads and writes,
//! accounts wear, and fails a page permanently once its endurance is
//! exhausted. Address remapping, swaps, and timing policy all live in
//! higher layers (`twl-wl-core`, `twl-memctrl`).
//!
//! # Examples
//!
//! ```
//! use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = PcmConfig::builder()
//!     .pages(256)
//!     .mean_endurance(1_000)
//!     .seed(7)
//!     .build()?;
//! let mut device = PcmDevice::new(&config);
//! device.write_page(PhysicalPageAddr::new(3))?;
//! assert_eq!(device.wear(PhysicalPageAddr::new(3)), 1);
//! # Ok(())
//! # }
//! ```

mod addr;
mod config;
mod dcw;
mod device;
mod endurance;
mod error;
mod stats;
mod timing;

pub use addr::{LogicalPageAddr, PhysicalPageAddr};
pub use config::{PcmConfig, PcmConfigBuilder};
pub use dcw::{DcwModel, BENIGN_BIT_FLIP_FRACTION};
pub use device::{BulkWrite, DeviceSnapshot, PcmDevice, WearPolicy};
pub use endurance::EnduranceMap;
pub use error::PcmError;
pub use stats::{wear_gini, WearStats};
pub use timing::PcmTiming;
