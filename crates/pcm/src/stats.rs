//! Wear-distribution statistics.

use crate::EnduranceMap;
use serde::{Deserialize, Serialize};

/// Aggregate wear statistics over a device snapshot.
///
/// The interesting quantity for wear leveling is not raw wear but *wear
/// ratio* — wear divided by the page's own endurance — because a PV-aware
/// scheme succeeds exactly when wear ratios are uniform ("wear-rate
/// leveling"). [`WearStats::max_wear_ratio`] hitting 1.0 is death.
///
/// # Examples
///
/// ```
/// use twl_pcm::{EnduranceMap, WearStats};
///
/// let endurance = EnduranceMap::from_values(vec![100, 200]);
/// let stats = WearStats::compute(&[50, 50], &endurance);
/// assert_eq!(stats.max_wear_ratio, 0.5);
/// assert_eq!(stats.total_writes, 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearStats {
    /// Total writes absorbed across all pages.
    pub total_writes: u64,
    /// Mean wear per page.
    pub mean_wear: f64,
    /// Highest wear counter.
    pub max_wear: u64,
    /// Highest wear / endurance ratio — 1.0 means a dead page.
    pub max_wear_ratio: f64,
    /// Mean of wear / endurance.
    pub mean_wear_ratio: f64,
    /// Gini coefficient of the wear distribution (0 = perfectly even).
    pub wear_gini: f64,
    /// Fraction of the device's total endurance consumed.
    pub capacity_consumed: f64,
}

impl WearStats {
    /// Computes statistics from raw wear counters and the endurance map.
    ///
    /// # Panics
    ///
    /// Panics if `wear` and `endurance` lengths differ or are zero.
    #[must_use]
    pub fn compute(wear: &[u64], endurance: &EnduranceMap) -> Self {
        assert_eq!(
            wear.len(),
            endurance.len(),
            "wear/endurance length mismatch"
        );
        assert!(!wear.is_empty(), "cannot compute stats of an empty device");
        let n = wear.len() as f64;
        let total_writes: u64 = wear.iter().sum();
        let max_wear = *wear.iter().max().expect("non-empty");
        let mut max_ratio = 0.0f64;
        let mut sum_ratio = 0.0f64;
        for ((_, e), &w) in endurance.iter().zip(wear.iter()) {
            let r = w as f64 / e as f64;
            sum_ratio += r;
            if r > max_ratio {
                max_ratio = r;
            }
        }
        Self {
            total_writes,
            mean_wear: total_writes as f64 / n,
            max_wear,
            max_wear_ratio: max_ratio,
            mean_wear_ratio: sum_ratio / n,
            wear_gini: wear_gini(wear),
            capacity_consumed: total_writes as f64 / endurance.total() as f64,
        }
    }
}

/// Gini coefficient of a non-negative sample (0 = all equal, →1 = all
/// mass on one element).
///
/// Exposed so multi-device aggregations (the banked lifetime runner)
/// can compute one coefficient over concatenated wear maps instead of
/// averaging per-device Ginis, which would not be the same statistic.
///
/// # Examples
///
/// ```
/// assert_eq!(twl_pcm::wear_gini(&[5, 5, 5, 5]), 0.0);
/// assert!(twl_pcm::wear_gini(&[0, 0, 0, 100]) > 0.7);
/// ```
#[must_use]
pub fn wear_gini(values: &[u64]) -> f64 {
    let n = values.len();
    let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
    if total == 0 || n < 2 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, with i from 1.
    let weighted: u128 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u128 + 1) * u128::from(v))
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_wear_has_zero_gini() {
        let endurance = EnduranceMap::from_values(vec![10; 8]);
        let stats = WearStats::compute(&[5; 8], &endurance);
        assert!(stats.wear_gini.abs() < 1e-12);
        assert_eq!(stats.max_wear, 5);
        assert!((stats.capacity_consumed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concentrated_wear_has_high_gini() {
        let endurance = EnduranceMap::from_values(vec![10; 8]);
        let mut wear = vec![0u64; 8];
        wear[0] = 80;
        let stats = WearStats::compute(&wear, &endurance);
        assert!(stats.wear_gini > 0.8, "gini = {}", stats.wear_gini);
        assert_eq!(stats.max_wear_ratio, 8.0);
    }

    #[test]
    fn wear_ratio_uses_per_page_endurance() {
        let endurance = EnduranceMap::from_values(vec![100, 10]);
        let stats = WearStats::compute(&[50, 9], &endurance);
        assert!((stats.max_wear_ratio - 0.9).abs() < 1e-12);
        assert!((stats.mean_wear_ratio - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_wear_is_all_zero() {
        let endurance = EnduranceMap::from_values(vec![10, 20]);
        let stats = WearStats::compute(&[0, 0], &endurance);
        assert_eq!(stats.total_writes, 0);
        assert_eq!(stats.wear_gini, 0.0);
        assert_eq!(stats.max_wear_ratio, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let endurance = EnduranceMap::from_values(vec![10]);
        let _ = WearStats::compute(&[1, 2], &endurance);
    }
}
