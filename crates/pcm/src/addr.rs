//! Page-address newtypes.
//!
//! Logical and physical page addresses are deliberately distinct types
//! (C-NEWTYPE): wear-leveling bugs are overwhelmingly "used an LA where a
//! PA belongs" bugs, and the type system catches every one of them.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! page_addr {
    ($(#[$doc:meta])* $name:ident, $abbr:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw page index.
            #[must_use]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// The raw page index.
            #[must_use]
            pub const fn index(self) -> u64 {
                self.0
            }

            /// The raw page index as `usize` for slice indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($abbr, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(index: u64) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

page_addr!(
    /// A logical page address: what the CPU/OS issues.
    ///
    /// # Examples
    ///
    /// ```
    /// use twl_pcm::LogicalPageAddr;
    ///
    /// let la = LogicalPageAddr::new(12);
    /// assert_eq!(la.index(), 12);
    /// assert_eq!(la.to_string(), "LA12");
    /// ```
    LogicalPageAddr,
    "LA"
);

page_addr!(
    /// A physical page address: the frame inside the PCM array.
    ///
    /// # Examples
    ///
    /// ```
    /// use twl_pcm::PhysicalPageAddr;
    ///
    /// let pa = PhysicalPageAddr::new(3);
    /// assert_eq!(pa.to_string(), "PA3");
    /// ```
    PhysicalPageAddr,
    "PA"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LogicalPageAddr::new(0).to_string(), "LA0");
        assert_eq!(PhysicalPageAddr::new(42).to_string(), "PA42");
    }

    #[test]
    fn conversions_roundtrip() {
        let la = LogicalPageAddr::from(9u64);
        assert_eq!(u64::from(la), 9);
        let pa = PhysicalPageAddr::from(10u64);
        assert_eq!(pa.as_usize(), 10);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(LogicalPageAddr::new(1) < LogicalPageAddr::new(2));
    }
}
