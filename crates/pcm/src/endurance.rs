//! Process-variation endurance map.

use crate::{PcmConfig, PhysicalPageAddr};
use serde::{Deserialize, Serialize};
use twl_rng::{GaussianSampler, Xoshiro256StarStar};

/// The per-page endurance values drawn from the process-variation model.
///
/// §5.1: *"We assume that the endurance variation follows a Gauss
/// distribution while endurance information is tested and stored at the
/// granularity of page-size. The mean endurance is 10⁸ and the standard
/// variation is 11 % of the mean."*
///
/// Manufacturers test endurance at production time, so schemes may read
/// this map freely (it is the paper's endurance table, ET). Values are
/// clipped below at 1 write.
///
/// # Examples
///
/// ```
/// use twl_pcm::{EnduranceMap, PcmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(64).mean_endurance(1000).seed(3).build()?;
/// let map = EnduranceMap::generate(&config);
/// assert_eq!(map.len(), 64);
/// assert!(map.min() <= map.max());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnduranceMap {
    values: Vec<u64>,
}

impl EnduranceMap {
    /// Draws the endurance of every page from the configured Gaussian.
    #[must_use]
    pub fn generate(config: &PcmConfig) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from(config.seed ^ 0x5043_4D5F_454E_4455);
        let sampler = GaussianSampler::new(
            config.mean_endurance as f64,
            config.sigma_fraction * config.mean_endurance as f64,
        );
        let values = (0..config.pages)
            .map(|_| sampler.sample_clipped(&mut rng, 1.0).round() as u64)
            .collect();
        Self { values }
    }

    /// Builds a map from explicit per-page values (for tests and custom
    /// variation models).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a zero.
    #[must_use]
    pub fn from_values(values: Vec<u64>) -> Self {
        assert!(!values.is_empty(), "endurance map cannot be empty");
        assert!(
            values.iter().all(|&v| v > 0),
            "endurance values must be positive"
        );
        Self { values }
    }

    /// Number of pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map is empty (never true for generated maps).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Endurance of one page.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    #[must_use]
    pub fn endurance(&self, addr: PhysicalPageAddr) -> u64 {
        self.values[addr.as_usize()]
    }

    /// Iterates over `(address, endurance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PhysicalPageAddr, u64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &e)| (PhysicalPageAddr::new(i as u64), e))
    }

    /// The weakest page's endurance.
    #[must_use]
    pub fn min(&self) -> u64 {
        *self.values.iter().min().expect("map is non-empty")
    }

    /// The strongest page's endurance.
    #[must_use]
    pub fn max(&self) -> u64 {
        *self.values.iter().max().expect("map is non-empty")
    }

    /// Sum of all pages' endurance — the device's ideal write capacity.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.values.iter().map(|&v| u128::from(v)).sum()
    }

    /// Mean endurance over the drawn map.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.total() as f64 / self.len() as f64
    }

    /// The raw per-page endurance values, indexed by physical page.
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// A map covering only the first `pages` pages.
    ///
    /// Because [`EnduranceMap::generate`] draws pages sequentially from
    /// the seeded stream, truncating a larger device's map yields
    /// exactly the map a `pages`-page device with the same seed would
    /// draw. `twl-faults` uses this to build schemes over the data
    /// region of a device provisioned with extra spare pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or exceeds the map's length.
    #[must_use]
    pub fn truncated(&self, pages: usize) -> Self {
        assert!(
            pages > 0 && pages <= self.values.len(),
            "truncation length {pages} outside 1..={}",
            self.values.len()
        );
        Self {
            values: self.values[..pages].to_vec(),
        }
    }

    /// Page addresses sorted by ascending endurance (weakest first).
    ///
    /// This is the sort the paper's Strong-Weak Pairing performs once at
    /// configuration time.
    #[must_use]
    pub fn sorted_by_endurance(&self) -> Vec<PhysicalPageAddr> {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_by_key(|&i| (self.values[i], i));
        order
            .into_iter()
            .map(|i| PhysicalPageAddr::new(i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(pages: u64, seed: u64) -> PcmConfig {
        PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100_000)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let c = small_config(512, 9);
        assert_eq!(EnduranceMap::generate(&c), EnduranceMap::generate(&c));
    }

    #[test]
    fn different_seeds_differ() {
        let a = EnduranceMap::generate(&small_config(512, 1));
        let b = EnduranceMap::generate(&small_config(512, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn statistics_match_model() {
        let c = small_config(65_536, 4);
        let map = EnduranceMap::generate(&c);
        let mean = map.mean();
        assert!((mean / 1e5 - 1.0).abs() < 0.01, "mean = {mean}");
        // Empirical min of 65k Gaussian draws sits near µ−4.4σ.
        let z_min = (1e5 - map.min() as f64) / (0.11 * 1e5);
        assert!((3.7..5.5).contains(&z_min), "z_min = {z_min}");
    }

    #[test]
    fn sorted_is_ascending_and_complete() {
        let c = small_config(128, 5);
        let map = EnduranceMap::generate(&c);
        let order = map.sorted_by_endurance();
        assert_eq!(order.len(), 128);
        for w in order.windows(2) {
            assert!(map.endurance(w[0]) <= map.endurance(w[1]));
        }
        let mut seen = [false; 128];
        for pa in &order {
            seen[pa.as_usize()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_values_accessors() {
        let map = EnduranceMap::from_values(vec![10, 20, 30]);
        assert_eq!(map.min(), 10);
        assert_eq!(map.max(), 30);
        assert_eq!(map.total(), 60);
        assert_eq!(map.endurance(PhysicalPageAddr::new(1)), 20);
        assert!(!map.is_empty());
    }

    #[test]
    #[should_panic(expected = "endurance values must be positive")]
    fn zero_endurance_rejected() {
        let _ = EnduranceMap::from_values(vec![1, 0]);
    }

    #[test]
    fn truncation_matches_smaller_generation() {
        let big = EnduranceMap::generate(&small_config(256, 7));
        let small = EnduranceMap::generate(&small_config(64, 7));
        assert_eq!(big.truncated(64), small);
        assert_eq!(big.truncated(256), big);
    }
}
