//! The PCM device: wear accounting, fail-stop pages, and the graceful-
//! degradation substrate (redirects, spare pool, write log).
//!
//! Two wear regimes are supported, selected by [`WearPolicy`]:
//!
//! * [`WearPolicy::FailStop`] (the default, the DAC'17 methodology):
//!   a page whose wear reaches its tested endurance permanently fails
//!   its next write with [`PcmError::PageWornOut`].
//! * [`WearPolicy::Unlimited`]: writes always land and wear keeps
//!   counting past the tested endurance. This is the substrate for
//!   cell-level fault modeling (`twl-faults`), where wear-out manifests
//!   as progressive stuck-at cell-group faults absorbed by an ECP-style
//!   corrector rather than a binary page death.
//!
//! For graceful degradation the device additionally separates *slots*
//! (the stable addresses wear-leveling schemes manage) from *physical
//! pages* (the frames that actually wear). Initially the mapping is the
//! identity; [`PcmDevice::retire_page`] rebinds a slot to a page from
//! the spare pool, so schemes keep issuing the same addresses while the
//! device transparently serves them from healthy frames.

use crate::{EnduranceMap, PcmConfig, PcmError, PhysicalPageAddr, WearStats};
use serde::{Deserialize, Serialize};

/// What happens when a page's wear reaches its tested endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WearPolicy {
    /// Writes past the tested endurance fail with
    /// [`PcmError::PageWornOut`] — the paper's first-wear-out lifetime
    /// methodology.
    #[default]
    FailStop,
    /// Writes always succeed and wear counts past the tested endurance;
    /// failure semantics are delegated to a cell-level fault model
    /// (see the `twl-faults` crate).
    Unlimited,
}

/// A serializable checkpoint of a device's full wear state.
///
/// Long lifetime simulations (10^8+ writes) can persist progress and
/// resume later; a snapshot restores bit-identical device behaviour.
/// The transient write log is *not* captured: a restored device starts
/// with logging disabled and an empty log.
///
/// # Examples
///
/// ```
/// use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(8).mean_endurance(100).build()?;
/// let mut device = PcmDevice::new(&config);
/// device.write_page(PhysicalPageAddr::new(1))?;
/// let snapshot = device.snapshot();
/// let restored = PcmDevice::restore(snapshot)?;
/// assert_eq!(restored.wear(PhysicalPageAddr::new(1)), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    config: PcmConfig,
    endurance: EnduranceMap,
    wear: Vec<u64>,
    total_writes: u64,
    first_failure: Option<PhysicalPageAddr>,
    policy: WearPolicy,
    forward: Vec<u64>,
    back: Vec<u64>,
    retired: Vec<bool>,
    spares: Vec<u64>,
    retired_count: u64,
}

/// Outcome of a bulk page write ([`PcmDevice::write_page_n`]).
///
/// Carries how many of the requested writes landed (wear was charged)
/// and, when the batch hit the page's endurance mid-way, the exact error
/// the `landed + 1`-th per-write call would have returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkWrite {
    /// Writes that landed before any failure (all `n` on success).
    pub landed: u64,
    /// The wear-out the batch ran into, if any. Identical to the error
    /// a sequence of [`PcmDevice::write_page`] calls would have produced
    /// on the first failing write.
    pub failure: Option<PcmError>,
}

impl BulkWrite {
    /// Whether every requested write landed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.failure.is_none()
    }
}

/// A simulated PCM array with per-page wear accounting.
///
/// Every write to a slot increments the backing physical page's wear
/// counter; under the default [`WearPolicy::FailStop`], once the counter
/// reaches the page's (process-variation-drawn) endurance the write
/// fails with [`PcmError::PageWornOut`] and the page is permanently
/// dead. The lifetime simulator treats the first such failure as
/// end-of-life, matching the paper's methodology ("until a PCM page
/// wears out", §5.1). Under [`WearPolicy::Unlimited`] the device defers
/// end-of-life to the `twl-faults` cell-fault/retirement machinery.
///
/// # Examples
///
/// ```
/// use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(16).mean_endurance(100).seed(1).build()?;
/// let mut device = PcmDevice::new(&config);
/// let pa = PhysicalPageAddr::new(0);
/// device.write_page(pa)?;
/// assert_eq!(device.remaining(pa), device.endurance(pa) - 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PcmDevice {
    config: PcmConfig,
    endurance: EnduranceMap,
    wear: Vec<u64>,
    total_writes: u64,
    first_failure: Option<PhysicalPageAddr>,
    policy: WearPolicy,
    /// Slot → physical page. Identity until retirements rebind slots.
    /// Held as `u32` so the hot translate step touches half the cache
    /// lines; snapshots widen to `u64` to keep the serialized form
    /// byte-identical across the narrowing.
    forward: Vec<u32>,
    /// Physical page → owning slot (inverse of `forward` on live pages).
    back: Vec<u32>,
    /// Physical pages permanently taken out of service.
    retired: Vec<bool>,
    /// Physical pages reserved as replacements, popped from the end.
    spares: Vec<u64>,
    retired_count: u64,
    /// When `Some`, every physical page write is appended here.
    write_log: Option<Vec<PhysicalPageAddr>>,
}

impl PcmDevice {
    /// Creates a device, drawing the endurance map from `config`.
    #[must_use]
    pub fn new(config: &PcmConfig) -> Self {
        let endurance = EnduranceMap::generate(config);
        Self::with_endurance(config, endurance)
    }

    /// Creates a device with an explicit endurance map (tests, custom PV
    /// models).
    ///
    /// # Panics
    ///
    /// Panics if the map's length differs from `config.pages`.
    #[must_use]
    pub fn with_endurance(config: &PcmConfig, endurance: EnduranceMap) -> Self {
        assert_eq!(
            endurance.len() as u64,
            config.pages,
            "endurance map size must match page count"
        );
        assert!(
            config.pages <= u64::from(u32::MAX),
            "slot maps index pages with u32"
        );
        let pages = endurance.len();
        Self {
            config: config.clone(),
            wear: vec![0; pages],
            endurance,
            total_writes: 0,
            first_failure: None,
            policy: WearPolicy::FailStop,
            forward: (0..pages as u32).collect(),
            back: (0..pages as u32).collect(),
            retired: vec![false; pages],
            spares: Vec::new(),
            retired_count: 0,
            write_log: None,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// The process-variation endurance map (the manufacturer-tested ET).
    #[must_use]
    pub fn endurance_map(&self) -> &EnduranceMap {
        &self.endurance
    }

    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.config.pages
    }

    /// The active wear policy.
    #[must_use]
    pub fn wear_policy(&self) -> WearPolicy {
        self.policy
    }

    /// Selects what happens when wear reaches the tested endurance.
    pub fn set_wear_policy(&mut self, policy: WearPolicy) {
        self.policy = policy;
    }

    /// Starts recording every physical page write into the write log.
    ///
    /// The log is how the `twl-faults` engine learns which pages changed
    /// without scanning the whole wear map; drain it with
    /// [`PcmDevice::drain_write_log`] after every serviced request.
    pub fn enable_write_log(&mut self) {
        if self.write_log.is_none() {
            self.write_log = Some(Vec::new());
        }
    }

    /// Moves all logged physical page writes into `out` (appending),
    /// leaving the log empty. A no-op when logging is disabled.
    pub fn drain_write_log(&mut self, out: &mut Vec<PhysicalPageAddr>) {
        if let Some(log) = &mut self.write_log {
            out.append(log);
        }
    }

    /// Reserves `spares` physical pages as retirement replacements.
    ///
    /// Spare pages should not be addressed by wear-leveling schemes:
    /// provision the device with `data_pages + spare_pages` pages and
    /// build schemes over the data region only (see
    /// `twl_faults::provision`). Replacements are handed out in the
    /// order given.
    ///
    /// # Panics
    ///
    /// Panics if any spare is out of range or already retired.
    pub fn set_spare_pool(&mut self, spares: Vec<PhysicalPageAddr>) {
        for &pa in &spares {
            assert!(
                pa.index() < self.config.pages,
                "spare {pa} outside the device"
            );
            assert!(!self.retired[pa.as_usize()], "spare {pa} already retired");
        }
        // Popped from the end, so store in reverse to hand out in order.
        self.spares = spares.iter().rev().map(|pa| pa.index()).collect();
    }

    /// Spare pages still available for retirement remaps.
    #[must_use]
    pub fn spares_remaining(&self) -> u64 {
        self.spares.len() as u64
    }

    /// Physical pages permanently retired so far.
    #[must_use]
    pub fn retired_pages(&self) -> u64 {
        self.retired_count
    }

    /// Whether a *physical* page has been retired.
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    #[must_use]
    pub fn is_retired(&self, phys: PhysicalPageAddr) -> bool {
        self.retired[phys.as_usize()]
    }

    /// The physical page currently backing `slot`.
    ///
    /// Identity until a retirement rebinds the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    #[must_use]
    pub fn resolve(&self, slot: PhysicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(u64::from(self.forward[slot.as_usize()]))
    }

    /// The slot a live physical page currently serves.
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    #[inline]
    #[must_use]
    pub fn owner_of(&self, phys: PhysicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(u64::from(self.back[phys.as_usize()]))
    }

    /// Retires the physical page currently backing `slot` and rebinds
    /// the slot to a page from the spare pool.
    ///
    /// The slot's logical contents migrate with the rebind: the device
    /// models the copy as one write to the replacement page (wear is
    /// charged there and the write is logged), so schemes running above
    /// observe nothing — the same slot address keeps working.
    ///
    /// # Errors
    ///
    /// * [`PcmError::AddrOutOfRange`] for an invalid slot.
    /// * [`PcmError::SparesExhausted`] when the spare pool is empty —
    ///   end of life under graceful degradation.
    pub fn retire_page(&mut self, slot: PhysicalPageAddr) -> Result<PhysicalPageAddr, PcmError> {
        self.check_addr(slot)?;
        let Some(spare) = self.spares.pop() else {
            return Err(PcmError::SparesExhausted { slot });
        };
        let old = self.forward[slot.as_usize()] as usize;
        self.retired[old] = true;
        self.retired_count += 1;
        self.forward[slot.as_usize()] = spare as u32;
        self.back[spare as usize] = slot.index() as u32;
        // Migrate the slot's contents onto the replacement.
        self.account_write(spare as usize);
        Ok(PhysicalPageAddr::new(spare))
    }

    /// Validates a slot/physical address.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::AddrOutOfRange`] if `addr` is past the end of
    /// the device.
    #[inline]
    pub fn check_addr(&self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        if addr.index() < self.config.pages {
            Ok(())
        } else {
            Err(PcmError::AddrOutOfRange {
                index: addr.index(),
                pages: self.config.pages,
            })
        }
    }

    #[inline]
    fn account_write(&mut self, phys: usize) {
        self.wear[phys] += 1;
        self.total_writes += 1;
        if let Some(log) = &mut self.write_log {
            log.push(PhysicalPageAddr::new(phys as u64));
        }
    }

    /// Writes one page, accounting wear on the backing physical page.
    ///
    /// # Errors
    ///
    /// * [`PcmError::AddrOutOfRange`] for an invalid address.
    /// * [`PcmError::PageWornOut`] under [`WearPolicy::FailStop`] when
    ///   the backing page's endurance is already exhausted. The first
    ///   failure is latched and reported by [`PcmDevice::first_failure`].
    ///   Under [`WearPolicy::Unlimited`] writes never fail this way.
    #[inline]
    pub fn write_page(&mut self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        self.check_addr(addr)?;
        let phys = self.forward[addr.as_usize()] as usize;
        if self.policy == WearPolicy::FailStop
            && self.wear[phys] >= self.endurance.endurance(PhysicalPageAddr::new(phys as u64))
        {
            if self.first_failure.is_none() {
                self.first_failure = Some(addr);
            }
            return Err(PcmError::PageWornOut {
                addr,
                writes: self.wear[phys],
            });
        }
        self.account_write(phys);
        Ok(())
    }

    /// Writes one page `n` times in O(1), the bulk backbone of the
    /// event-skipping fast path.
    ///
    /// Exactly equivalent to `n` sequential [`PcmDevice::write_page`]
    /// calls: under [`WearPolicy::FailStop`] only the writes that fit
    /// under the backing page's tested endurance land, and
    /// [`BulkWrite::failure`] then carries the error the first failing
    /// per-write call would have returned (the first-failure latch is
    /// set identically). The write log coalesces the whole stretch into
    /// a single entry — downstream fault absorption derives fault state
    /// from wear counters, not from log multiplicity — and snapshots
    /// taken after a bulk write restore exactly (wear still sums to the
    /// write total).
    ///
    /// `n == 0` is a no-op that reports zero writes landed.
    pub fn write_page_n(&mut self, addr: PhysicalPageAddr, n: u64) -> BulkWrite {
        if let Err(e) = self.check_addr(addr) {
            return BulkWrite {
                landed: 0,
                failure: Some(e),
            };
        }
        let phys = self.forward[addr.as_usize()] as usize;
        let landed = match self.policy {
            WearPolicy::Unlimited => n,
            WearPolicy::FailStop => {
                let endurance = self.endurance.endurance(PhysicalPageAddr::new(phys as u64));
                n.min(endurance.saturating_sub(self.wear[phys]))
            }
        };
        if landed > 0 {
            self.wear[phys] += landed;
            self.total_writes += landed;
            if let Some(log) = &mut self.write_log {
                log.push(PhysicalPageAddr::new(phys as u64));
            }
        }
        let failure = (landed < n).then(|| {
            if self.first_failure.is_none() {
                self.first_failure = Some(addr);
            }
            PcmError::PageWornOut {
                addr,
                writes: self.wear[phys],
            }
        });
        BulkWrite { landed, failure }
    }

    /// Reads one page. Reads do not wear PCM.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::AddrOutOfRange`] for an invalid address.
    pub fn read_page(&self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        self.check_addr(addr)
    }

    /// Wear (writes absorbed so far) of the physical page backing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    #[must_use]
    pub fn wear(&self, addr: PhysicalPageAddr) -> u64 {
        self.wear[self.forward[addr.as_usize()] as usize]
    }

    /// Tested endurance of the physical page backing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    #[must_use]
    pub fn endurance(&self, addr: PhysicalPageAddr) -> u64 {
        self.endurance.endurance(self.resolve(addr))
    }

    /// Remaining writes before the page backing `addr` reaches its
    /// tested endurance (saturating at 0 under [`WearPolicy::Unlimited`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    #[must_use]
    pub fn remaining(&self, addr: PhysicalPageAddr) -> u64 {
        self.endurance(addr).saturating_sub(self.wear(addr))
    }

    /// Fills `out` (reusing its allocation) with the remaining
    /// endurance of every slot, in slot order — `out[s]` equals
    /// `self.remaining(s)`.
    ///
    /// One fused pass over the flat slot/wear/endurance tables; schemes
    /// that rank all frames at an epoch boundary use this instead of
    /// per-frame [`PcmDevice::remaining`] calls, which would re-resolve
    /// the slot indirection on every comparison.
    pub fn remaining_table(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.forward.len());
        let endurance = self.endurance.values();
        out.extend(self.forward.iter().map(|&phys| {
            let p = phys as usize;
            endurance[p].saturating_sub(self.wear[p])
        }));
    }

    /// Whether the page backing `addr` has exhausted its tested
    /// endurance.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn is_worn_out(&self, addr: PhysicalPageAddr) -> bool {
        self.remaining(addr) == 0
    }

    /// Total successful page writes absorbed by the device.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// The slot whose write first failed with
    /// [`PcmError::PageWornOut`], if any.
    ///
    /// This latches the first *failing write* under
    /// [`WearPolicy::FailStop`] — i.e. the paper's end-of-life event. It
    /// is `None` while every write has succeeded, even if some page is
    /// already at its endurance limit but has not been written since
    /// (contrast [`PcmDevice::any_page_exhausted`]), and always `None`
    /// under [`WearPolicy::Unlimited`], where wear-out is expressed as
    /// cell faults instead of failed writes.
    #[must_use]
    pub fn first_failure(&self) -> Option<PhysicalPageAddr> {
        self.first_failure
    }

    /// Whether any physical page's wear has reached its tested
    /// endurance — the page is *worn*.
    ///
    /// "Worn" is not "dead": under [`WearPolicy::FailStop`] a worn page
    /// fails its *next* write (so this predicate flags imminent death
    /// before [`PcmDevice::first_failure`] latches anything), while
    /// under [`WearPolicy::Unlimited`] a worn page keeps absorbing
    /// writes and only dies when the cell-fault layer retires it. This
    /// scans live wear state, including retired pages (which are by
    /// construction worn or dead).
    #[must_use]
    pub fn any_page_exhausted(&self) -> bool {
        self.wear
            .iter()
            .zip(self.endurance.iter())
            .any(|(&w, (_, e))| w >= e)
    }

    /// Snapshot of wear statistics.
    #[must_use]
    pub fn wear_stats(&self) -> WearStats {
        WearStats::compute(&self.wear, &self.endurance)
    }

    /// Per-physical-page wear counters (indexed by physical page).
    #[must_use]
    pub fn wear_counters(&self) -> &[u64] {
        &self.wear
    }

    /// Captures the full device state for later [`PcmDevice::restore`].
    #[must_use]
    pub fn snapshot(&self) -> DeviceSnapshot {
        DeviceSnapshot {
            config: self.config.clone(),
            endurance: self.endurance.clone(),
            wear: self.wear.clone(),
            total_writes: self.total_writes,
            first_failure: self.first_failure,
            policy: self.policy,
            forward: self.forward.iter().map(|&v| u64::from(v)).collect(),
            back: self.back.iter().map(|&v| u64::from(v)).collect(),
            retired: self.retired.clone(),
            spares: self.spares.clone(),
            retired_count: self.retired_count,
        }
    }

    /// Rebuilds a device from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::InvalidConfig`] if the snapshot is internally
    /// inconsistent (mismatched lengths, wear totals, wear exceeding
    /// endurance under [`WearPolicy::FailStop`], or a broken slot map).
    pub fn restore(snapshot: DeviceSnapshot) -> Result<Self, PcmError> {
        let pages = snapshot.config.pages as usize;
        if snapshot.endurance.len() != pages
            || snapshot.wear.len() != pages
            || snapshot.forward.len() != pages
            || snapshot.back.len() != pages
            || snapshot.retired.len() != pages
        {
            return Err(PcmError::InvalidConfig(
                "snapshot table sizes do not match its config".into(),
            ));
        }
        if snapshot.wear.iter().sum::<u64>() != snapshot.total_writes {
            return Err(PcmError::InvalidConfig(
                "snapshot wear counters do not sum to its write total".into(),
            ));
        }
        if snapshot.policy == WearPolicy::FailStop {
            for ((_, e), &w) in snapshot.endurance.iter().zip(snapshot.wear.iter()) {
                if w > e {
                    return Err(PcmError::InvalidConfig(
                        "snapshot wear exceeds page endurance".into(),
                    ));
                }
            }
        }
        if snapshot.config.pages > u64::from(u32::MAX) {
            return Err(PcmError::InvalidConfig(
                "slot maps index pages with u32".into(),
            ));
        }
        for (slot, &phys) in snapshot.forward.iter().enumerate() {
            if phys as usize >= pages {
                return Err(PcmError::InvalidConfig(
                    "snapshot slot map points outside the device".into(),
                ));
            }
            // A consumed spare's own slot keeps a stale identity entry
            // (spare slots are never addressed); any other
            // non-inverting pair is a corrupt map.
            if snapshot.back[phys as usize] != slot as u64 && phys as usize != slot {
                return Err(PcmError::InvalidConfig(
                    "snapshot slot map is not invertible".into(),
                ));
            }
        }
        for &slot in &snapshot.back {
            if slot as usize >= pages {
                return Err(PcmError::InvalidConfig(
                    "snapshot slot map points outside the device".into(),
                ));
            }
        }
        Ok(Self {
            config: snapshot.config,
            endurance: snapshot.endurance,
            wear: snapshot.wear,
            total_writes: snapshot.total_writes,
            first_failure: snapshot.first_failure,
            policy: snapshot.policy,
            forward: snapshot.forward.iter().map(|&v| v as u32).collect(),
            back: snapshot.back.iter().map(|&v| v as u32).collect(),
            retired: snapshot.retired,
            spares: snapshot.spares,
            retired_count: snapshot.retired_count,
            write_log: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(pages: u64, endurance: u64) -> PcmDevice {
        let config = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .sigma_fraction(0.0)
            .seed(0)
            .build()
            .unwrap();
        PcmDevice::new(&config)
    }

    #[test]
    fn wear_accumulates_until_failure() {
        let mut dev = device(4, 3);
        let pa = PhysicalPageAddr::new(2);
        for i in 1..=3 {
            dev.write_page(pa).unwrap();
            assert_eq!(dev.wear(pa), i);
        }
        let err = dev.write_page(pa).unwrap_err();
        assert_eq!(
            err,
            PcmError::PageWornOut {
                addr: pa,
                writes: 3
            }
        );
        assert_eq!(dev.first_failure(), Some(pa));
        assert!(dev.is_worn_out(pa));
        assert_eq!(dev.total_writes(), 3);
    }

    #[test]
    fn bulk_write_matches_sequential_writes() {
        let mut bulk = device(4, 10);
        let mut seq = device(4, 10);
        let pa = PhysicalPageAddr::new(1);
        let out = bulk.write_page_n(pa, 7);
        assert_eq!(
            out,
            BulkWrite {
                landed: 7,
                failure: None
            }
        );
        assert!(out.complete());
        for _ in 0..7 {
            seq.write_page(pa).unwrap();
        }
        assert_eq!(bulk.wear(pa), seq.wear(pa));
        assert_eq!(bulk.total_writes(), seq.total_writes());
    }

    #[test]
    fn bulk_write_detects_mid_batch_wear_out() {
        let mut dev = device(4, 5);
        let pa = PhysicalPageAddr::new(0);
        dev.write_page(pa).unwrap();
        let out = dev.write_page_n(pa, 10);
        assert_eq!(out.landed, 4, "exactly the writes under endurance land");
        assert_eq!(
            out.failure,
            Some(PcmError::PageWornOut {
                addr: pa,
                writes: 5
            })
        );
        assert_eq!(dev.first_failure(), Some(pa));
        assert_eq!(dev.wear(pa), 5);
        assert_eq!(dev.total_writes(), 5);
    }

    #[test]
    fn bulk_write_on_worn_page_lands_nothing() {
        let mut dev = device(4, 2);
        let pa = PhysicalPageAddr::new(3);
        dev.write_page_n(pa, 2);
        let out = dev.write_page_n(pa, 3);
        assert_eq!(out.landed, 0);
        assert_eq!(
            out.failure,
            Some(PcmError::PageWornOut {
                addr: pa,
                writes: 2
            })
        );
        assert_eq!(dev.total_writes(), 2);
    }

    #[test]
    fn bulk_write_zero_is_a_noop() {
        let mut dev = device(4, 2);
        let pa = PhysicalPageAddr::new(0);
        let out = dev.write_page_n(pa, 0);
        assert_eq!(
            out,
            BulkWrite {
                landed: 0,
                failure: None
            }
        );
        assert_eq!(dev.total_writes(), 0);
        assert_eq!(dev.first_failure(), None);
    }

    #[test]
    fn bulk_write_unlimited_never_fails() {
        let mut dev = device(4, 2);
        dev.set_wear_policy(WearPolicy::Unlimited);
        let pa = PhysicalPageAddr::new(1);
        let out = dev.write_page_n(pa, 100);
        assert_eq!(out.landed, 100);
        assert!(out.complete());
        assert_eq!(dev.wear(pa), 100);
        assert_eq!(dev.first_failure(), None);
    }

    #[test]
    fn bulk_write_out_of_range_is_reported() {
        let mut dev = device(4, 10);
        let out = dev.write_page_n(PhysicalPageAddr::new(4), 3);
        assert_eq!(out.landed, 0);
        assert!(matches!(
            out.failure,
            Some(PcmError::AddrOutOfRange { index: 4, pages: 4 })
        ));
        assert_eq!(dev.first_failure(), None, "range errors are not wear-out");
    }

    #[test]
    fn bulk_write_coalesces_one_log_entry() {
        let mut dev = device(4, 10);
        dev.enable_write_log();
        dev.write_page_n(PhysicalPageAddr::new(2), 5);
        let mut log = Vec::new();
        dev.drain_write_log(&mut log);
        assert_eq!(log, vec![PhysicalPageAddr::new(2)]);
    }

    #[test]
    fn bulk_write_snapshot_roundtrips() {
        let mut dev = device(8, 50);
        dev.write_page_n(PhysicalPageAddr::new(3), 17);
        let restored = PcmDevice::restore(dev.snapshot()).unwrap();
        assert_eq!(restored.wear(PhysicalPageAddr::new(3)), 17);
        assert_eq!(restored.total_writes(), 17);
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut dev = device(4, 10);
        let err = dev.write_page(PhysicalPageAddr::new(4)).unwrap_err();
        assert!(matches!(
            err,
            PcmError::AddrOutOfRange { index: 4, pages: 4 }
        ));
        assert!(dev.read_page(PhysicalPageAddr::new(9)).is_err());
    }

    #[test]
    fn reads_do_not_wear() {
        let dev = device(4, 10);
        dev.read_page(PhysicalPageAddr::new(1)).unwrap();
        assert_eq!(dev.wear(PhysicalPageAddr::new(1)), 0);
    }

    #[test]
    fn first_failure_latches_earliest() {
        let mut dev = device(4, 1);
        let a = PhysicalPageAddr::new(0);
        let b = PhysicalPageAddr::new(1);
        dev.write_page(a).unwrap();
        dev.write_page(b).unwrap();
        let _ = dev.write_page(b);
        let _ = dev.write_page(a);
        assert_eq!(dev.first_failure(), Some(b));
    }

    #[test]
    fn any_page_exhausted_scans_state() {
        let mut dev = device(4, 2);
        assert!(!dev.any_page_exhausted());
        let pa = PhysicalPageAddr::new(0);
        dev.write_page(pa).unwrap();
        dev.write_page(pa).unwrap();
        assert!(dev.any_page_exhausted());
        assert!(
            dev.first_failure().is_none(),
            "no failing write happened yet"
        );
    }

    #[test]
    fn unlimited_policy_wears_past_endurance() {
        let mut dev = device(4, 2);
        dev.set_wear_policy(WearPolicy::Unlimited);
        let pa = PhysicalPageAddr::new(1);
        for _ in 0..5 {
            dev.write_page(pa).unwrap();
        }
        assert_eq!(dev.wear(pa), 5);
        assert_eq!(dev.remaining(pa), 0, "remaining saturates");
        assert!(dev.any_page_exhausted(), "page is worn");
        assert_eq!(dev.first_failure(), None, "but no write ever failed");
    }

    #[test]
    fn write_log_records_resolved_pages() {
        let mut dev = device(4, 10);
        dev.enable_write_log();
        dev.write_page(PhysicalPageAddr::new(3)).unwrap();
        dev.write_page(PhysicalPageAddr::new(0)).unwrap();
        let mut log = Vec::new();
        dev.drain_write_log(&mut log);
        assert_eq!(
            log,
            vec![PhysicalPageAddr::new(3), PhysicalPageAddr::new(0)]
        );
        log.clear();
        dev.drain_write_log(&mut log);
        assert!(log.is_empty(), "drain empties the log");
    }

    #[test]
    fn retirement_rebinds_slot_to_spare() {
        let mut dev = device(6, 10);
        dev.enable_write_log();
        // Pages 4 and 5 are spares; slots 0..4 are the data region.
        dev.set_spare_pool(vec![PhysicalPageAddr::new(4), PhysicalPageAddr::new(5)]);
        let slot = PhysicalPageAddr::new(2);
        dev.write_page(slot).unwrap();
        let spare = dev.retire_page(slot).unwrap();
        assert_eq!(spare, PhysicalPageAddr::new(4));
        assert_eq!(dev.resolve(slot), spare);
        assert_eq!(dev.owner_of(spare), slot);
        assert!(dev.is_retired(PhysicalPageAddr::new(2)));
        assert_eq!(dev.retired_pages(), 1);
        assert_eq!(dev.spares_remaining(), 1);
        // The migration copy was charged to the spare and logged.
        assert_eq!(dev.wear(slot), 1, "slot wear now reads the spare's");
        let mut log = Vec::new();
        dev.drain_write_log(&mut log);
        assert_eq!(log, vec![PhysicalPageAddr::new(2), spare]);
        // Subsequent writes to the slot wear the spare.
        dev.write_page(slot).unwrap();
        assert_eq!(dev.wear_counters()[4], 2);
        assert_eq!(dev.wear_counters()[2], 1, "retired page wears no more");
    }

    #[test]
    fn spare_exhaustion_is_reported() {
        let mut dev = device(4, 10);
        dev.set_spare_pool(vec![PhysicalPageAddr::new(3)]);
        let slot = PhysicalPageAddr::new(0);
        dev.retire_page(slot).unwrap();
        let err = dev.retire_page(slot).unwrap_err();
        assert_eq!(err, PcmError::SparesExhausted { slot });
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let mut dev = device(8, 5);
        let pa = PhysicalPageAddr::new(2);
        for _ in 0..3 {
            dev.write_page(pa).unwrap();
        }
        let mut restored = PcmDevice::restore(dev.snapshot()).unwrap();
        assert_eq!(restored.wear(pa), 3);
        assert_eq!(restored.total_writes(), 3);
        // Two more writes exhaust the page in both.
        for _ in 0..2 {
            dev.write_page(pa).unwrap();
            restored.write_page(pa).unwrap();
        }
        assert_eq!(
            dev.write_page(pa).unwrap_err(),
            restored.write_page(pa).unwrap_err()
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_retirements() {
        let mut dev = device(6, 4);
        dev.set_wear_policy(WearPolicy::Unlimited);
        dev.set_spare_pool(vec![PhysicalPageAddr::new(4), PhysicalPageAddr::new(5)]);
        let slot = PhysicalPageAddr::new(1);
        for _ in 0..6 {
            dev.write_page(slot).unwrap();
        }
        dev.retire_page(slot).unwrap();
        let restored = PcmDevice::restore(dev.snapshot()).unwrap();
        assert_eq!(restored.wear_policy(), WearPolicy::Unlimited);
        assert_eq!(restored.resolve(slot), PhysicalPageAddr::new(4));
        assert_eq!(restored.owner_of(PhysicalPageAddr::new(4)), slot);
        assert!(restored.is_retired(PhysicalPageAddr::new(1)));
        assert_eq!(restored.spares_remaining(), 1);
        assert_eq!(restored.retired_pages(), 1);
    }

    #[test]
    fn tampered_snapshot_is_rejected() {
        let mut dev = device(4, 5);
        dev.write_page(PhysicalPageAddr::new(0)).unwrap();
        let mut snap = dev.snapshot();
        // Inflate the write total without touching the counters.
        snap.total_writes += 1;
        assert!(matches!(
            PcmDevice::restore(snap),
            Err(PcmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_endurance_size_mismatch_panics() {
        let config = PcmConfig::builder().pages(4).build().unwrap();
        let map = EnduranceMap::from_values(vec![1, 2]);
        let result = std::panic::catch_unwind(|| PcmDevice::with_endurance(&config, map));
        assert!(result.is_err());
    }
}
