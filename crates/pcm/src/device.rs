//! The PCM device: wear accounting and fail-stop pages.

use crate::{EnduranceMap, PcmConfig, PcmError, PhysicalPageAddr, WearStats};
use serde::{Deserialize, Serialize};

/// A serializable checkpoint of a device's full wear state.
///
/// Long lifetime simulations (10^8+ writes) can persist progress and
/// resume later; a snapshot restores bit-identical device behaviour.
///
/// # Examples
///
/// ```
/// use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(8).mean_endurance(100).build()?;
/// let mut device = PcmDevice::new(&config);
/// device.write_page(PhysicalPageAddr::new(1))?;
/// let snapshot = device.snapshot();
/// let restored = PcmDevice::restore(snapshot)?;
/// assert_eq!(restored.wear(PhysicalPageAddr::new(1)), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    config: PcmConfig,
    endurance: EnduranceMap,
    wear: Vec<u64>,
    total_writes: u64,
    first_failure: Option<PhysicalPageAddr>,
}

/// A simulated PCM array with per-page wear accounting.
///
/// Every write to a physical page increments that page's wear counter;
/// when the counter reaches the page's (process-variation-drawn)
/// endurance, the write fails with [`PcmError::PageWornOut`] and the page
/// is permanently dead. The lifetime simulator treats the first such
/// failure as end-of-life, matching the paper's methodology ("until a
/// PCM page wears out", §5.1).
///
/// # Examples
///
/// ```
/// use twl_pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder().pages(16).mean_endurance(100).seed(1).build()?;
/// let mut device = PcmDevice::new(&config);
/// let pa = PhysicalPageAddr::new(0);
/// device.write_page(pa)?;
/// assert_eq!(device.remaining(pa), device.endurance(pa) - 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PcmDevice {
    config: PcmConfig,
    endurance: EnduranceMap,
    wear: Vec<u64>,
    total_writes: u64,
    first_failure: Option<PhysicalPageAddr>,
}

impl PcmDevice {
    /// Creates a device, drawing the endurance map from `config`.
    #[must_use]
    pub fn new(config: &PcmConfig) -> Self {
        let endurance = EnduranceMap::generate(config);
        Self::with_endurance(config, endurance)
    }

    /// Creates a device with an explicit endurance map (tests, custom PV
    /// models).
    ///
    /// # Panics
    ///
    /// Panics if the map's length differs from `config.pages`.
    #[must_use]
    pub fn with_endurance(config: &PcmConfig, endurance: EnduranceMap) -> Self {
        assert_eq!(
            endurance.len() as u64,
            config.pages,
            "endurance map size must match page count"
        );
        Self {
            config: config.clone(),
            wear: vec![0; endurance.len()],
            endurance,
            total_writes: 0,
            first_failure: None,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// The process-variation endurance map (the manufacturer-tested ET).
    #[must_use]
    pub fn endurance_map(&self) -> &EnduranceMap {
        &self.endurance
    }

    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.config.pages
    }

    /// Validates a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::AddrOutOfRange`] if `addr` is past the end of
    /// the device.
    pub fn check_addr(&self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        if addr.index() < self.config.pages {
            Ok(())
        } else {
            Err(PcmError::AddrOutOfRange {
                index: addr.index(),
                pages: self.config.pages,
            })
        }
    }

    /// Writes one page, accounting wear.
    ///
    /// # Errors
    ///
    /// * [`PcmError::AddrOutOfRange`] for an invalid address.
    /// * [`PcmError::PageWornOut`] when the page's endurance is already
    ///   exhausted. The first failure is latched and reported by
    ///   [`PcmDevice::first_failure`].
    pub fn write_page(&mut self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        self.check_addr(addr)?;
        let i = addr.as_usize();
        if self.wear[i] >= self.endurance.endurance(addr) {
            if self.first_failure.is_none() {
                self.first_failure = Some(addr);
            }
            return Err(PcmError::PageWornOut {
                addr,
                writes: self.wear[i],
            });
        }
        self.wear[i] += 1;
        self.total_writes += 1;
        Ok(())
    }

    /// Reads one page. Reads do not wear PCM.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::AddrOutOfRange`] for an invalid address.
    pub fn read_page(&self, addr: PhysicalPageAddr) -> Result<(), PcmError> {
        self.check_addr(addr)
    }

    /// Wear (writes absorbed so far) of one page.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn wear(&self, addr: PhysicalPageAddr) -> u64 {
        self.wear[addr.as_usize()]
    }

    /// Tested endurance of one page.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn endurance(&self, addr: PhysicalPageAddr) -> u64 {
        self.endurance.endurance(addr)
    }

    /// Remaining writes before the page dies.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn remaining(&self, addr: PhysicalPageAddr) -> u64 {
        self.endurance(addr).saturating_sub(self.wear(addr))
    }

    /// Whether the page has exhausted its endurance.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn is_worn_out(&self, addr: PhysicalPageAddr) -> bool {
        self.remaining(addr) == 0
    }

    /// Total successful page writes absorbed by the device.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// The first page that failed a write, if any.
    #[must_use]
    pub fn first_failure(&self) -> Option<PhysicalPageAddr> {
        self.first_failure
    }

    /// Whether any page would fail its next write.
    ///
    /// Unlike [`PcmDevice::first_failure`], this scans live wear state,
    /// so it flags pages that are exhausted but have not yet been written
    /// past their limit.
    #[must_use]
    pub fn any_page_exhausted(&self) -> bool {
        self.wear
            .iter()
            .zip(self.endurance.iter())
            .any(|(&w, (_, e))| w >= e)
    }

    /// Snapshot of wear statistics.
    #[must_use]
    pub fn wear_stats(&self) -> WearStats {
        WearStats::compute(&self.wear, &self.endurance)
    }

    /// Per-page wear counters (weakly ordered with addresses).
    #[must_use]
    pub fn wear_counters(&self) -> &[u64] {
        &self.wear
    }

    /// Captures the full device state for later [`PcmDevice::restore`].
    #[must_use]
    pub fn snapshot(&self) -> DeviceSnapshot {
        DeviceSnapshot {
            config: self.config.clone(),
            endurance: self.endurance.clone(),
            wear: self.wear.clone(),
            total_writes: self.total_writes,
            first_failure: self.first_failure,
        }
    }

    /// Rebuilds a device from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::InvalidConfig`] if the snapshot is internally
    /// inconsistent (mismatched lengths, wear totals, or wear exceeding
    /// endurance beyond the at-limit state).
    pub fn restore(snapshot: DeviceSnapshot) -> Result<Self, PcmError> {
        let pages = snapshot.config.pages as usize;
        if snapshot.endurance.len() != pages || snapshot.wear.len() != pages {
            return Err(PcmError::InvalidConfig(
                "snapshot table sizes do not match its config".into(),
            ));
        }
        if snapshot.wear.iter().sum::<u64>() != snapshot.total_writes {
            return Err(PcmError::InvalidConfig(
                "snapshot wear counters do not sum to its write total".into(),
            ));
        }
        for ((_, e), &w) in snapshot.endurance.iter().zip(snapshot.wear.iter()) {
            if w > e {
                return Err(PcmError::InvalidConfig(
                    "snapshot wear exceeds page endurance".into(),
                ));
            }
        }
        Ok(Self {
            config: snapshot.config,
            endurance: snapshot.endurance,
            wear: snapshot.wear,
            total_writes: snapshot.total_writes,
            first_failure: snapshot.first_failure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(pages: u64, endurance: u64) -> PcmDevice {
        let config = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .sigma_fraction(0.0)
            .seed(0)
            .build()
            .unwrap();
        PcmDevice::new(&config)
    }

    #[test]
    fn wear_accumulates_until_failure() {
        let mut dev = device(4, 3);
        let pa = PhysicalPageAddr::new(2);
        for i in 1..=3 {
            dev.write_page(pa).unwrap();
            assert_eq!(dev.wear(pa), i);
        }
        let err = dev.write_page(pa).unwrap_err();
        assert_eq!(
            err,
            PcmError::PageWornOut {
                addr: pa,
                writes: 3
            }
        );
        assert_eq!(dev.first_failure(), Some(pa));
        assert!(dev.is_worn_out(pa));
        assert_eq!(dev.total_writes(), 3);
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut dev = device(4, 10);
        let err = dev.write_page(PhysicalPageAddr::new(4)).unwrap_err();
        assert!(matches!(
            err,
            PcmError::AddrOutOfRange { index: 4, pages: 4 }
        ));
        assert!(dev.read_page(PhysicalPageAddr::new(9)).is_err());
    }

    #[test]
    fn reads_do_not_wear() {
        let dev = device(4, 10);
        dev.read_page(PhysicalPageAddr::new(1)).unwrap();
        assert_eq!(dev.wear(PhysicalPageAddr::new(1)), 0);
    }

    #[test]
    fn first_failure_latches_earliest() {
        let mut dev = device(4, 1);
        let a = PhysicalPageAddr::new(0);
        let b = PhysicalPageAddr::new(1);
        dev.write_page(a).unwrap();
        dev.write_page(b).unwrap();
        let _ = dev.write_page(b);
        let _ = dev.write_page(a);
        assert_eq!(dev.first_failure(), Some(b));
    }

    #[test]
    fn any_page_exhausted_scans_state() {
        let mut dev = device(4, 2);
        assert!(!dev.any_page_exhausted());
        let pa = PhysicalPageAddr::new(0);
        dev.write_page(pa).unwrap();
        dev.write_page(pa).unwrap();
        assert!(dev.any_page_exhausted());
        assert!(
            dev.first_failure().is_none(),
            "no failing write happened yet"
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let mut dev = device(8, 5);
        let pa = PhysicalPageAddr::new(2);
        for _ in 0..3 {
            dev.write_page(pa).unwrap();
        }
        let mut restored = PcmDevice::restore(dev.snapshot()).unwrap();
        assert_eq!(restored.wear(pa), 3);
        assert_eq!(restored.total_writes(), 3);
        // Two more writes exhaust the page in both.
        for _ in 0..2 {
            dev.write_page(pa).unwrap();
            restored.write_page(pa).unwrap();
        }
        assert_eq!(
            dev.write_page(pa).unwrap_err(),
            restored.write_page(pa).unwrap_err()
        );
    }

    #[test]
    fn tampered_snapshot_is_rejected() {
        let mut dev = device(4, 5);
        dev.write_page(PhysicalPageAddr::new(0)).unwrap();
        let mut snap = dev.snapshot();
        // Inflate the write total without touching the counters.
        snap.total_writes += 1;
        assert!(matches!(
            PcmDevice::restore(snap),
            Err(PcmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_endurance_size_mismatch_panics() {
        let config = PcmConfig::builder().pages(4).build().unwrap();
        let map = EnduranceMap::from_values(vec![1, 2]);
        let result = std::panic::catch_unwind(|| PcmDevice::with_endurance(&config, map));
        assert!(result.is_err());
    }
}
