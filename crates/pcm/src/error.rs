//! Error types for the PCM device model.

use crate::PhysicalPageAddr;
use std::error::Error;
use std::fmt;

/// Errors produced by the PCM device and its configuration.
///
/// The only runtime error a healthy simulation sees is
/// [`PcmError::PageWornOut`], which is also the *signal that defines
/// lifetime*: the lifetime simulator runs a workload until the device
/// returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PcmError {
    /// A write targeted a page whose endurance is exhausted.
    PageWornOut {
        /// The failed physical page.
        addr: PhysicalPageAddr,
        /// Total writes the page absorbed before failing.
        writes: u64,
    },
    /// An address outside the device's page range was used.
    AddrOutOfRange {
        /// The offending physical page index.
        index: u64,
        /// Number of pages in the device.
        pages: u64,
    },
    /// A page retirement found the spare pool empty — end of life under
    /// graceful degradation.
    SparesExhausted {
        /// The slot whose backing page could not be replaced.
        slot: PhysicalPageAddr,
    },
    /// The device configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for PcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PageWornOut { addr, writes } => {
                write!(f, "page {addr} worn out after {writes} writes")
            }
            Self::AddrOutOfRange { index, pages } => {
                write!(
                    f,
                    "physical page index {index} outside device of {pages} pages"
                )
            }
            Self::SparesExhausted { slot } => {
                write!(f, "no spare page left to replace the page backing {slot}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid PCM configuration: {msg}"),
        }
    }
}

impl Error for PcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PcmError::PageWornOut {
            addr: PhysicalPageAddr::new(5),
            writes: 100,
        };
        assert_eq!(e.to_string(), "page PA5 worn out after 100 writes");
        let e = PcmError::AddrOutOfRange {
            index: 10,
            pages: 8,
        };
        assert!(e.to_string().contains("10"));
        let e = PcmError::InvalidConfig("pages must be even".into());
        assert!(e.to_string().contains("pages must be even"));
        let e = PcmError::SparesExhausted {
            slot: PhysicalPageAddr::new(3),
        };
        assert!(e.to_string().contains("PA3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PcmError>();
    }
}
