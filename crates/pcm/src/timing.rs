//! Device timing parameters (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// PCM access latencies in CPU cycles, per Table 1 of the paper:
/// `read/set/reset latency: 250/2000/250-cycle` at 2 GHz.
///
/// A full page write is dominated by SET pulses; the memory-controller
/// model charges [`PcmTiming::write_latency`] per page-sized write and
/// [`PcmTiming::read_latency`] per read.
///
/// # Examples
///
/// ```
/// use twl_pcm::PcmTiming;
///
/// let t = PcmTiming::dac17();
/// assert_eq!(t.read_latency, 250);
/// assert_eq!(t.write_latency(), 2000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PcmTiming {
    /// Cycles to read a line/page from the array.
    pub read_latency: u64,
    /// Cycles for a SET pulse (the slow crystallization write).
    pub set_latency: u64,
    /// Cycles for a RESET pulse (fast amorphization).
    pub reset_latency: u64,
}

impl PcmTiming {
    /// The DAC'17 Table 1 configuration: 250/2000/250 cycles.
    #[must_use]
    pub const fn dac17() -> Self {
        Self {
            read_latency: 250,
            set_latency: 2000,
            reset_latency: 250,
        }
    }

    /// Effective latency of a write, bounded by the slower SET pulse.
    ///
    /// SET and RESET pulses to different bits of a line overlap in the
    /// array, so a write completes when the slowest pulse does.
    #[must_use]
    pub const fn write_latency(&self) -> u64 {
        if self.set_latency > self.reset_latency {
            self.set_latency
        } else {
            self.reset_latency
        }
    }

    /// Cycles to migrate one page to another frame: a read of the source
    /// followed by a write of the destination.
    #[must_use]
    pub const fn migrate_latency(&self) -> u64 {
        self.read_latency + self.write_latency()
    }
}

impl Default for PcmTiming {
    fn default() -> Self {
        Self::dac17()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac17_values() {
        let t = PcmTiming::dac17();
        assert_eq!(t.set_latency, 2000);
        assert_eq!(t.reset_latency, 250);
        assert_eq!(t.write_latency(), 2000);
        assert_eq!(t.migrate_latency(), 2250);
    }

    #[test]
    fn default_is_dac17() {
        assert_eq!(PcmTiming::default(), PcmTiming::dac17());
    }

    #[test]
    fn write_latency_uses_max_pulse() {
        let t = PcmTiming {
            read_latency: 1,
            set_latency: 5,
            reset_latency: 9,
        };
        assert_eq!(t.write_latency(), 9);
    }
}
