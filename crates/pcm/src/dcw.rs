//! Data-comparison-write (DCW) analysis model.
//!
//! §4.4 of the paper assumes *"data comparison write is employed
//! \[16\]"* (Zhou et al., ISCA 2009): before writing a line, PCM reads
//! the old contents and programs only the cells that actually change.
//! At the page-wear accounting granularity this repository uses, DCW is
//! a constant scale factor on wear per page write — it cancels out of
//! every normalized result and is folded into the years calibration
//! (`DESIGN.md` §3). This module makes the factor explicit and
//! computable, so absolute-wear analyses can reason about it.
//!
//! The model: a page write changes each line independently with
//! probability `dirty_line_fraction`, and within a dirty line each bit
//! flips with probability `bit_flip_fraction`. Zhou et al. report ~15 %
//! of bits changing for typical workloads; a wear-out attacker writes
//! adversarial data that flips everything.

use serde::{Deserialize, Serialize};

/// Fraction of bits a typical (benign) page write flips, per the DCW
/// paper's characterization.
pub const BENIGN_BIT_FLIP_FRACTION: f64 = 0.15;

/// The DCW wear model.
///
/// # Examples
///
/// ```
/// use twl_pcm::DcwModel;
///
/// let benign = DcwModel::benign();
/// // A benign page write wears cells at ~15% of a full write.
/// assert!((benign.cell_wear_fraction() - 0.15).abs() < 1e-9);
/// // An attacker gets no discount.
/// assert_eq!(DcwModel::adversarial().cell_wear_fraction(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcwModel {
    /// Probability a line of the page is touched at all by a write.
    pub dirty_line_fraction: f64,
    /// Probability a bit within a touched line flips.
    pub bit_flip_fraction: f64,
}

impl DcwModel {
    /// A model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    #[must_use]
    pub fn new(dirty_line_fraction: f64, bit_flip_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dirty_line_fraction) && (0.0..=1.0).contains(&bit_flip_fraction),
            "fractions must be probabilities"
        );
        Self {
            dirty_line_fraction,
            bit_flip_fraction,
        }
    }

    /// Typical benign traffic: every line of the written page touched,
    /// ~15 % of bits flipped (Zhou+ ISCA'09).
    #[must_use]
    pub fn benign() -> Self {
        Self::new(1.0, BENIGN_BIT_FLIP_FRACTION)
    }

    /// A wear-out attacker alternating inverted data: every cell flips
    /// on every write — DCW gives no protection.
    #[must_use]
    pub fn adversarial() -> Self {
        Self::new(1.0, 1.0)
    }

    /// Expected fraction of the page's cells worn per page write
    /// (1.0 = a full non-DCW write).
    #[must_use]
    pub fn cell_wear_fraction(&self) -> f64 {
        self.dirty_line_fraction * self.bit_flip_fraction
    }

    /// Expected lifetime multiplier DCW buys over non-DCW writes, under
    /// the (optimistic) assumption that flipped bits are uniformly
    /// spread so cell-level wear stays even.
    ///
    /// # Panics
    ///
    /// Panics if the model never wears anything (both fractions zero).
    #[must_use]
    pub fn lifetime_multiplier(&self) -> f64 {
        let f = self.cell_wear_fraction();
        assert!(
            f > 0.0,
            "a write that changes nothing has no lifetime meaning"
        );
        1.0 / f
    }

    /// Wear-out-attack advantage: the ratio between an adversary's and
    /// this model's per-write wear. The gap is one more reason the
    /// paper's attacker is so effective: crafted data wears cells
    /// ~6.7x faster than benign traffic even before any remapping
    /// games.
    #[must_use]
    pub fn adversarial_advantage(&self) -> f64 {
        Self::adversarial().cell_wear_fraction() / self.cell_wear_fraction()
    }
}

impl Default for DcwModel {
    fn default() -> Self {
        Self::benign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_matches_dcw_paper() {
        let m = DcwModel::benign();
        assert!((m.lifetime_multiplier() - 1.0 / 0.15).abs() < 1e-9);
    }

    #[test]
    fn adversary_gets_no_discount() {
        let m = DcwModel::adversarial();
        assert_eq!(m.lifetime_multiplier(), 1.0);
        assert_eq!(m.adversarial_advantage(), 1.0);
    }

    #[test]
    fn benign_adversary_gap_is_large() {
        let gap = DcwModel::benign().adversarial_advantage();
        assert!((gap - 1.0 / 0.15).abs() < 1e-9, "gap = {gap}");
    }

    #[test]
    fn partial_dirtiness_compounds() {
        let m = DcwModel::new(0.5, 0.2);
        assert!((m.cell_wear_fraction() - 0.1).abs() < 1e-12);
        assert!((m.lifetime_multiplier() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fractions must be probabilities")]
    fn out_of_range_rejected() {
        let _ = DcwModel::new(1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "no lifetime meaning")]
    fn zero_wear_lifetime_panics() {
        let _ = DcwModel::new(0.0, 0.0).lifetime_multiplier();
    }
}
