//! Device configuration and builder.

use crate::{PcmError, PcmTiming};
use serde::{Deserialize, Serialize};

/// Configuration of a simulated PCM device.
///
/// The paper's nominal device (Table 1) is 32 GB with 4 KB pages —
/// 8 388 608 pages of mean endurance 10⁸. Simulating wear at that scale
/// needs ~10¹⁵ writes, so experiments run a *scaled* device (fewer pages,
/// lower endurance) and convert results back to nominal years; all scheme
/// behaviour is invariant under the joint scaling (see `DESIGN.md` §3).
///
/// Construct via [`PcmConfig::builder`] or the presets.
///
/// # Examples
///
/// ```
/// use twl_pcm::PcmConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = PcmConfig::builder()
///     .pages(4096)
///     .mean_endurance(100_000)
///     .sigma_fraction(0.11)
///     .seed(1)
///     .build()?;
/// assert_eq!(config.pages, 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmConfig {
    /// Number of pages in the device. Must be ≥ 2 and even (pairing
    /// schemes bond pages two by two).
    pub pages: u64,
    /// Page size in bytes (nominal: 4096).
    pub page_size_bytes: u64,
    /// Line size in bytes (nominal: 128; a page holds 32 lines).
    pub line_size_bytes: u64,
    /// Mean of the Gaussian endurance distribution (nominal: 10⁸).
    pub mean_endurance: u64,
    /// Standard deviation of endurance as a fraction of the mean
    /// (paper: 0.11).
    pub sigma_fraction: f64,
    /// Seed of the process-variation draw.
    pub seed: u64,
    /// Number of banks (Table 1: 32) — used by the timing model.
    pub banks: u32,
    /// Access latencies.
    pub timing: PcmTiming,
}

impl PcmConfig {
    /// Starts building a configuration from the scaled defaults.
    #[must_use]
    pub fn builder() -> PcmConfigBuilder {
        PcmConfigBuilder::new()
    }

    /// The paper's nominal (unscaled) device: 32 GB, 4 KB pages, mean
    /// endurance 10⁸, σ = 11 %.
    ///
    /// This configuration is what the years calibration refers to; do not
    /// run wear simulations against it directly.
    #[must_use]
    pub fn nominal_dac17() -> Self {
        Self {
            pages: 32 * 1024 * 1024 * 1024 / 4096,
            page_size_bytes: 4096,
            line_size_bytes: 128,
            mean_endurance: 100_000_000,
            sigma_fraction: 0.11,
            seed: 0,
            banks: 32,
            timing: PcmTiming::dac17(),
        }
    }

    /// A scaled device suitable for lifetime simulation: same page
    /// geometry and σ as nominal, with the given page count and mean
    /// endurance.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`PcmConfigBuilder::build`]).
    #[must_use]
    pub fn scaled(pages: u64, mean_endurance: u64, seed: u64) -> Self {
        Self::builder()
            .pages(pages)
            .mean_endurance(mean_endurance)
            .seed(seed)
            .build()
            .expect("scaled preset parameters are valid")
    }

    /// Device capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.pages * self.page_size_bytes
    }

    /// Lines per page.
    #[must_use]
    pub fn lines_per_page(&self) -> u64 {
        self.page_size_bytes / self.line_size_bytes
    }

    /// Scale factor between this device's total endurance and the
    /// nominal DAC'17 device's, used by the years calibration.
    #[must_use]
    pub fn endurance_scale_vs_nominal(&self) -> f64 {
        let nominal = Self::nominal_dac17();
        (nominal.pages as f64 * nominal.mean_endurance as f64)
            / (self.pages as f64 * self.mean_endurance as f64)
    }
}

impl Default for PcmConfig {
    fn default() -> Self {
        Self::scaled(8192, 100_000, 0)
    }
}

/// Builder for [`PcmConfig`].
///
/// Defaults to the scaled simulation device: 8192 pages, 4 KB pages,
/// mean endurance 10⁵, σ = 11 %, DAC'17 timing.
#[derive(Debug, Clone)]
pub struct PcmConfigBuilder {
    config: PcmConfig,
}

impl PcmConfigBuilder {
    /// Creates a builder with scaled-simulation defaults.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: PcmConfig {
                pages: 8192,
                page_size_bytes: 4096,
                line_size_bytes: 128,
                mean_endurance: 100_000,
                sigma_fraction: 0.11,
                seed: 0,
                banks: 32,
                timing: PcmTiming::dac17(),
            },
        }
    }

    /// Sets the number of pages.
    pub fn pages(&mut self, pages: u64) -> &mut Self {
        self.config.pages = pages;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_size_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.page_size_bytes = bytes;
        self
    }

    /// Sets the line size in bytes.
    pub fn line_size_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.line_size_bytes = bytes;
        self
    }

    /// Sets the mean endurance.
    pub fn mean_endurance(&mut self, writes: u64) -> &mut Self {
        self.config.mean_endurance = writes;
        self
    }

    /// Sets the endurance standard deviation as a fraction of the mean.
    pub fn sigma_fraction(&mut self, fraction: f64) -> &mut Self {
        self.config.sigma_fraction = fraction;
        self
    }

    /// Sets the process-variation seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the bank count.
    pub fn banks(&mut self, banks: u32) -> &mut Self {
        self.config.banks = banks;
        self
    }

    /// Sets the timing parameters.
    pub fn timing(&mut self, timing: PcmTiming) -> &mut Self {
        self.config.timing = timing;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::InvalidConfig`] if any of the following hold:
    /// fewer than 2 pages, odd page count, zero page/line size, line size
    /// not dividing page size, zero mean endurance, σ fraction outside
    /// `[0, 1)`, or zero banks.
    pub fn build(&self) -> Result<PcmConfig, PcmError> {
        let c = &self.config;
        if c.pages < 2 {
            return Err(PcmError::InvalidConfig(
                "device needs at least 2 pages".into(),
            ));
        }
        if !c.pages.is_multiple_of(2) {
            return Err(PcmError::InvalidConfig(
                "page count must be even so pairing schemes can bond all pages".into(),
            ));
        }
        if c.page_size_bytes == 0 || c.line_size_bytes == 0 {
            return Err(PcmError::InvalidConfig(
                "page and line sizes must be positive".into(),
            ));
        }
        if !c.page_size_bytes.is_multiple_of(c.line_size_bytes) {
            return Err(PcmError::InvalidConfig(
                "line size must divide page size".into(),
            ));
        }
        if c.mean_endurance == 0 {
            return Err(PcmError::InvalidConfig(
                "mean endurance must be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&c.sigma_fraction) {
            return Err(PcmError::InvalidConfig(
                "sigma fraction must lie in [0, 1)".into(),
            ));
        }
        if c.banks == 0 {
            return Err(PcmError::InvalidConfig(
                "bank count must be positive".into(),
            ));
        }
        Ok(c.clone())
    }
}

impl Default for PcmConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_table1() {
        let c = PcmConfig::nominal_dac17();
        assert_eq!(c.capacity_bytes(), 32 * 1024 * 1024 * 1024);
        assert_eq!(c.pages, 8_388_608);
        assert_eq!(c.lines_per_page(), 32);
        assert_eq!(c.mean_endurance, 100_000_000);
        assert_eq!(c.banks, 32);
    }

    #[test]
    fn builder_validates() {
        assert!(PcmConfig::builder().pages(1).build().is_err());
        assert!(PcmConfig::builder().pages(3).build().is_err());
        assert!(PcmConfig::builder().mean_endurance(0).build().is_err());
        assert!(PcmConfig::builder().sigma_fraction(1.5).build().is_err());
        assert!(PcmConfig::builder().sigma_fraction(-0.1).build().is_err());
        assert!(PcmConfig::builder().line_size_bytes(100).build().is_err());
        assert!(PcmConfig::builder().banks(0).build().is_err());
        assert!(PcmConfig::builder().build().is_ok());
    }

    #[test]
    fn endurance_scale_vs_nominal_is_consistent() {
        let scaled = PcmConfig::scaled(8192, 100_000, 0);
        let f = scaled.endurance_scale_vs_nominal();
        let expected = (8_388_608.0 * 1e8) / (8192.0 * 1e5);
        assert!((f / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_valid() {
        let c = PcmConfig::default();
        assert!(c.pages >= 2);
    }
}
