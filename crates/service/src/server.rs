//! The `twl-serviced` daemon: accept loop, connection handlers, and
//! the worker pool that executes jobs.
//!
//! Concurrency model: within a job, cells run sequentially (that is
//! the checkpointable unit); parallelism comes from the worker pool
//! running different jobs on different threads, sized exactly like the
//! in-process matrix helpers via
//! [`twl_lifetime::pool::configured_parallelism`] (so `TWL_THREADS`
//! is honored in one place for the whole workspace).
//!
//! Robustness contract: a malformed, truncated, or oversized frame
//! earns a best-effort `error` response and closes *that connection
//! only* — the accept loop and every other connection keep serving.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use twl_lifetime::pool;
use twl_telemetry::prom::{render_exposition, PromWriter};
use twl_telemetry::{counter, gauge, histogram, ScopeGuard};

use crate::checkpoint::{Checkpoint, CheckpointDir};
use crate::framing::{read_frame, write_frame, FrameError};
use crate::job::encode_result;
use crate::queue::{ClaimedJob, JobQueue, JobStatus};
use crate::wire::{Request, Response, PROTOCOL};

/// Test hook: when this environment variable holds `N`, the daemon
/// calls `process::exit` right after writing its `N`-th mid-run
/// checkpoint — a deterministic stand-in for `kill -9` that the
/// kill-and-resume integration test uses.
pub const EXIT_AFTER_CHECKPOINTS_ENV: &str = "TWL_SERVICED_EXIT_AFTER_CHECKPOINTS";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Maximum queued (not yet running) jobs before submits are
    /// rejected.
    pub queue_capacity: usize,
    /// Worker threads; 0 means [`pool::configured_parallelism`].
    pub workers: usize,
    /// Where to persist job checkpoints; `None` disables durability.
    pub checkpoint_dir: Option<PathBuf>,
    /// Device writes a running job accumulates between checkpoints.
    pub checkpoint_interval_writes: u64,
    /// Retry hint handed to rejected submitters.
    pub retry_after_ms: u64,
    /// How long a connection may sit idle between requests before the
    /// daemon closes it (so a stalled or half-open peer cannot pin a
    /// connection thread forever); 0 disables the timeout.
    pub idle_timeout_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7781".to_owned(),
            queue_capacity: 32,
            workers: 0,
            checkpoint_dir: None,
            checkpoint_interval_writes: 50_000_000,
            retry_after_ms: 500,
            idle_timeout_ms: 300_000,
        }
    }
}

/// A bound, not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    queue: Arc<JobQueue>,
    checkpoints: Option<Arc<CheckpointDir>>,
    workers: usize,
    checkpoint_interval_writes: u64,
    idle_timeout: Option<Duration>,
}

impl Server {
    /// Binds the listener, opens the checkpoint directory, and restores
    /// any persisted jobs (interrupted ones re-enter the queue).
    ///
    /// # Errors
    ///
    /// Propagates bind and checkpoint-directory failures.
    pub fn bind(config: &ServiceConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let queue = Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms));
        let checkpoints = match &config.checkpoint_dir {
            Some(dir) => {
                let dir = CheckpointDir::open(dir)?;
                for cp in dir.load_all()? {
                    let status = JobStatus::parse(&cp.status).unwrap_or(JobStatus::Queued);
                    queue.restore(
                        cp.job_id,
                        cp.spec,
                        status,
                        cp.completed_cells,
                        cp.result,
                        cp.error,
                    );
                }
                Some(Arc::new(dir))
            }
            None => None,
        };
        let workers = if config.workers == 0 {
            pool::configured_parallelism()
        } else {
            config.workers
        };
        Ok(Self {
            listener,
            queue,
            checkpoints,
            workers,
            checkpoint_interval_writes: config.checkpoint_interval_writes.max(1),
            idle_timeout: crate::net::idle_deadline(config.idle_timeout_ms),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a `shutdown` request completes its drain:
    /// in-flight jobs finish, queued jobs stay persisted, sinks flush.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures.
    pub fn run(self) -> io::Result<()> {
        let local_addr = self.local_addr()?;
        gauge!("twl.service.workers.total").set(i64::try_from(self.workers).unwrap_or(i64::MAX));
        let worker_handles: Vec<_> = (0..self.workers)
            .map(|_| {
                let queue = Arc::clone(&self.queue);
                let checkpoints = self.checkpoints.clone();
                let interval = self.checkpoint_interval_writes;
                thread::spawn(move || {
                    while let Some(job) = queue.claim() {
                        gauge!("twl.service.workers.busy").add(1);
                        execute_job(&queue, checkpoints.as_deref(), interval, job);
                        gauge!("twl.service.workers.busy").add(-1);
                    }
                })
            })
            .collect();

        let remote_inflight = Arc::new(AtomicUsize::new(0));
        for stream in self.listener.incoming() {
            if self.queue.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            counter!("twl.service.connections").inc();
            // An idle peer (including a half-open one that sent a
            // partial frame and stalled) is cut loose after the idle
            // timeout, costing that connection only.
            crate::net::apply_idle_timeout(&stream, self.idle_timeout);
            let queue = Arc::clone(&self.queue);
            let checkpoints = self.checkpoints.clone();
            let ctx = ConnCtx {
                slots: self.workers,
                remote_inflight: Arc::clone(&remote_inflight),
                local_addr,
            };
            thread::spawn(move || handle_connection(&stream, &queue, checkpoints.as_deref(), &ctx));
        }

        for handle in worker_handles {
            let _ = handle.join();
        }
        twl_telemetry::flush_sinks();
        Ok(())
    }
}

/// Persists a job's current state, best-effort (an unwritable disk
/// degrades durability, not availability).
fn save_checkpoint(
    dir: &CheckpointDir,
    job_id: u64,
    spec: &crate::job::JobSpec,
    status: JobStatus,
    completed_cells: &BTreeMap<u64, twl_telemetry::json::Json>,
    result: Option<twl_telemetry::json::Json>,
    error: Option<String>,
) {
    let cp = Checkpoint {
        job_id,
        spec: spec.clone(),
        status: status.label().to_owned(),
        completed_cells: completed_cells.clone(),
        result,
        error,
    };
    if let Err(e) = dir.save(&cp) {
        eprintln!("twl-serviced: cannot checkpoint job {job_id}: {e}");
    }
}

/// Simulated-crash test hook (see [`EXIT_AFTER_CHECKPOINTS_ENV`]).
fn maybe_exit_after_checkpoint() {
    static WRITTEN: AtomicU64 = AtomicU64::new(0);
    let Some(limit) = std::env::var(EXIT_AFTER_CHECKPOINTS_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return;
    };
    let written = WRITTEN.fetch_add(1, Ordering::SeqCst) + 1;
    if written >= limit {
        // Die abruptly, like a kill: no drain, no flush.
        std::process::exit(83);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked".to_owned()
    }
}

/// Runs one claimed job to a terminal state, checkpointing along the
/// way. Cells already present in `job.completed_cells` (a resumed
/// checkpoint) are skipped; everything else re-runs, so the assembled
/// result is bit-identical to an uninterrupted run.
fn execute_job(queue: &JobQueue, dir: Option<&CheckpointDir>, interval: u64, job: ClaimedJob) {
    let job_label = format!("job-{}", job.job_id);
    let _scope = ScopeGuard::new(job_label.clone());
    let queue_wait_us = u64::try_from(job.queued_for.as_micros()).unwrap_or(u64::MAX);
    histogram!("twl.service.job.queue_wait_ms").record(queue_wait_us / 1_000);
    // The wait ended before execution began, so it is recorded as a
    // sibling of the job span, not a child (emitted before the guard
    // opens, while this thread's span stack is empty).
    twl_telemetry::emit_measured("job.queue_wait", job_label.clone(), queue_wait_us, 1);
    let job_span = twl_telemetry::span!("job", job_label.clone());
    let started = Instant::now();
    queue.mark_running(job.job_id);
    if let Some(dir) = dir {
        let _cp_span = twl_telemetry::span!("job.checkpoint", job_label.clone());
        save_checkpoint(
            dir,
            job.job_id,
            &job.spec,
            JobStatus::Running,
            &job.completed_cells,
            None,
            None,
        );
    }

    let total = job.spec.cell_count();
    let mut completed = job.completed_cells;
    let mut writes_since_checkpoint = 0u64;
    let mut failure: Option<String> = None;
    let mut cancelled = false;

    for index in 0..total {
        if job.cancel.load(Ordering::Relaxed) {
            cancelled = true;
            break;
        }
        let cell = index as u64;
        if completed.contains_key(&cell) {
            continue;
        }
        match panic::catch_unwind(AssertUnwindSafe(|| job.spec.run_cell(index))) {
            Ok((report, device_writes)) => {
                let (scheme, workload) = job.spec.describe_cell(index);
                completed.insert(cell, report.clone());
                queue.record_cell(job.job_id, cell, report, scheme, workload, device_writes);
                writes_since_checkpoint += device_writes;
                if let Some(dir) = dir {
                    if writes_since_checkpoint >= interval {
                        let _cp_span = twl_telemetry::span!("job.checkpoint", job_label.clone());
                        save_checkpoint(
                            dir,
                            job.job_id,
                            &job.spec,
                            JobStatus::Running,
                            &completed,
                            None,
                            None,
                        );
                        writes_since_checkpoint = 0;
                        queue.record_checkpoint(job.job_id, completed.len() as u64);
                        maybe_exit_after_checkpoint();
                    }
                }
            }
            Err(payload) => {
                failure = Some(panic_message(payload.as_ref()));
                break;
            }
        }
    }

    let (status, result, error) = if cancelled {
        (JobStatus::Cancelled, None, Some("job cancelled".to_owned()))
    } else if let Some(message) = failure {
        (JobStatus::Failed, None, Some(message))
    } else {
        let reports = (0..total)
            .map(|i| completed.get(&(i as u64)).expect("all cells ran").clone())
            .collect();
        (
            JobStatus::Completed,
            Some(encode_result(job.spec.kind, reports)),
            None,
        )
    };
    if let Some(dir) = dir {
        let _cp_span = twl_telemetry::span!("job.checkpoint", job_label.clone());
        save_checkpoint(
            dir,
            job.job_id,
            &job.spec,
            status,
            &completed,
            result.clone(),
            error.clone(),
        );
    }
    let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    histogram!("twl.service.job.wall_ms").record(wall_ms);
    // Close the job span and flush before publishing the result, so a
    // client that saw the terminal event immediately finds a complete
    // wall-time histogram and a complete, durable job trace.
    drop(job_span);
    twl_telemetry::flush_sinks();
    queue.finish(job.job_id, status, result, error);
}

/// Renders the full scrape page: the global registry (counters, gauges,
/// histograms from every subsystem), then one gauge family per per-job
/// progress dimension, labeled `job="<id>"`. Public so the fleet
/// coordinator serves the identical page shape for its own jobs.
pub fn render_metrics_page(queue: &JobQueue) -> String {
    let mut page = render_exposition(&twl_telemetry::global().snapshot());
    let jobs = queue.snapshot(None);
    if jobs.is_empty() {
        return page;
    }
    let ids: Vec<String> = jobs.iter().map(|j| j.job_id.to_string()).collect();
    let mut info = Vec::new();
    let mut cells_done = Vec::new();
    let mut cells_total = Vec::new();
    let mut writes_done = Vec::new();
    let mut rate_wps = Vec::new();
    let mut eta_ms = Vec::new();
    #[allow(clippy::cast_precision_loss)]
    for (job, id) in jobs.iter().zip(&ids) {
        let label = [("job", id.as_str())];
        info.push((
            vec![
                ("job", id.as_str()),
                ("kind", job.kind.as_str()),
                ("status", job.status.as_str()),
            ],
            1.0,
        ));
        cells_done.push((label, job.cells_done as f64));
        cells_total.push((label, job.cells_total as f64));
        if let Some(w) = job.writes_done {
            writes_done.push((label, w as f64));
        }
        if let Some(r) = job.rate_wps {
            rate_wps.push((label, r));
        }
        if let Some(e) = job.eta_ms {
            eta_ms.push((label, e as f64));
        }
    }
    let mut w = PromWriter::new();
    let info: Vec<(&[(&str, &str)], f64)> = info.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
    w.gauge_family("twl_service_job_info", &info);
    job_gauge_family(&mut w, "twl_service_job_cells_done", &cells_done);
    job_gauge_family(&mut w, "twl_service_job_cells_total", &cells_total);
    job_gauge_family(&mut w, "twl_service_job_writes_done", &writes_done);
    job_gauge_family(&mut w, "twl_service_job_rate_wps", &rate_wps);
    job_gauge_family(&mut w, "twl_service_job_eta_ms", &eta_ms);
    page.push_str(&w.finish());
    page
}

/// Writes one single-label (`job="<id>"`) gauge family, skipping
/// families with no live samples so the page carries no empty `# TYPE`
/// stanzas.
fn job_gauge_family(w: &mut PromWriter, name: &str, samples: &[([(&str, &str); 1], f64)]) {
    if samples.is_empty() {
        return;
    }
    let flat: Vec<(&[(&str, &str)], f64)> =
        samples.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
    w.gauge_family(name, &flat);
}

fn send(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    write_frame(&mut stream, &response.to_json())
}

/// Per-connection context shared by the accept loop.
struct ConnCtx {
    /// The daemon's worker-pool size, advertised in `hello_ok` and the
    /// cap on concurrent `run_cell` executions.
    slots: usize,
    /// `run_cell` requests currently executing across all connections.
    remote_inflight: Arc<AtomicUsize>,
    local_addr: SocketAddr,
}

/// Serves one connection until it closes, violates the protocol, or
/// sits idle past the configured timeout.
fn handle_connection(
    stream: &TcpStream,
    queue: &JobQueue,
    checkpoints: Option<&CheckpointDir>,
    ctx: &ConnCtx,
) {
    let mut reader = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(
                e @ (FrameError::Truncated
                | FrameError::Oversized { .. }
                | FrameError::Utf8
                | FrameError::Json(_)),
            ) => {
                counter!("twl.service.protocol_errors").inc();
                let _ = send(
                    stream,
                    &Response::Error {
                        message: format!("protocol error: {e}"),
                    },
                );
                return;
            }
            Err(FrameError::Io(e)) => {
                if crate::net::is_idle_timeout(&e) {
                    counter!("twl.service.idle_timeouts").inc();
                    let _ = send(
                        stream,
                        &Response::Error {
                            message: "idle timeout: closing connection".to_owned(),
                        },
                    );
                }
                return;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(message) => {
                counter!("twl.service.protocol_errors").inc();
                let _ = send(
                    stream,
                    &Response::Error {
                        message: format!("bad request: {message}"),
                    },
                );
                return;
            }
        };
        match request {
            Request::Hello { proto } => {
                if proto == PROTOCOL {
                    if send(
                        stream,
                        &Response::HelloOk {
                            proto: PROTOCOL.to_owned(),
                            slots: Some(ctx.slots as u64),
                        },
                    )
                    .is_err()
                    {
                        return;
                    }
                } else {
                    counter!("twl.service.protocol_errors").inc();
                    let _ = send(
                        stream,
                        &Response::Error {
                            message: format!(
                                "protocol version mismatch: daemon speaks {PROTOCOL}, client spoke {proto}"
                            ),
                        },
                    );
                    return;
                }
            }
            Request::Submit { spec } => {
                let response = match spec.validate() {
                    Err(message) => Response::Error {
                        message: format!("invalid spec: {message}"),
                    },
                    Ok(()) => match queue.submit(spec) {
                        Ok(job_id) => {
                            // Persist at submit time so queued jobs
                            // survive a restart or a graceful drain.
                            if let Some(dir) = checkpoints {
                                if let Some((spec, status, result, error)) = queue.job_state(job_id)
                                {
                                    save_checkpoint(
                                        dir,
                                        job_id,
                                        &spec,
                                        status,
                                        &BTreeMap::new(),
                                        result,
                                        error,
                                    );
                                }
                            }
                            Response::Submitted { job_id }
                        }
                        Err(rejection) => Response::Rejected {
                            reason: rejection.reason,
                            retry_after_ms: rejection.retry_after_ms,
                        },
                    },
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Status { job_id } => {
                let jobs = queue.snapshot(job_id);
                if send(stream, &Response::StatusOk { jobs }).is_err() {
                    return;
                }
            }
            Request::Stream { job_id } => {
                if !stream_job(stream, queue, job_id) {
                    return;
                }
            }
            Request::Cancel { job_id } => {
                let response = match queue.cancel(job_id) {
                    None => Response::Error {
                        message: format!("unknown job {job_id}"),
                    },
                    Some(cancelled) => {
                        // A queued job cancelled here never reaches the
                        // executor, so persist its terminal state now.
                        if let (Some(dir), Some((spec, status, result, error))) =
                            (checkpoints, queue.job_state(job_id))
                        {
                            if status.is_terminal() {
                                save_checkpoint(
                                    dir,
                                    job_id,
                                    &spec,
                                    status,
                                    &BTreeMap::new(),
                                    result,
                                    error,
                                );
                            }
                        }
                        Response::CancelOk { job_id, cancelled }
                    }
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Metrics => {
                let text = render_metrics_page(queue);
                if send(stream, &Response::MetricsOk { text }).is_err() {
                    return;
                }
            }
            Request::RunCell { spec, cell } => {
                let response = run_remote_cell(ctx, queue, &spec, cell);
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::RegisterWorker { .. } => {
                // Not a protocol violation — a fleet-aware client probed
                // a plain daemon; tell it so and keep serving.
                let response = Response::Error {
                    message: "register_worker is only served by a twl-coordinator".to_owned(),
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                queue.begin_shutdown();
                let _ = send(stream, &Response::ShutdownOk);
                // Wake the accept loop so it observes the drain flag.
                let _ = TcpStream::connect(ctx.local_addr);
                return;
            }
        }
    }
}

/// Streams one job's events and final frame. Returns `false` when the
/// connection died mid-stream. Public so the fleet coordinator serves
/// the identical stream shape for its own jobs.
pub fn stream_job(stream: &TcpStream, queue: &JobQueue, job_id: u64) -> bool {
    let mut cursor = 0;
    loop {
        let Some((events, next_cursor, done)) = queue.next_events(job_id, cursor) else {
            return send(
                stream,
                &Response::Error {
                    message: format!("unknown job {job_id}"),
                },
            )
            .is_ok();
        };
        cursor = next_cursor;
        for event in events {
            if send(stream, &Response::Event { job_id, event }).is_err() {
                return false;
            }
        }
        if let Some(finished) = done {
            let final_frame = match finished.result {
                Some(result) => Response::JobResult { job_id, result },
                None => Response::JobFailed {
                    job_id,
                    error: finished
                        .error
                        .unwrap_or_else(|| finished.status.label().to_owned()),
                },
            };
            return send(stream, &final_frame).is_ok();
        }
    }
}

/// Executes one `run_cell` request inline on the connection thread.
/// Concurrency is capped at the worker-pool size across all
/// connections, so a fleet coordinator cannot oversubscribe the daemon
/// beyond the parallelism it advertised in `hello_ok`.
fn run_remote_cell(
    ctx: &ConnCtx,
    queue: &JobQueue,
    spec: &crate::job::JobSpec,
    cell: u64,
) -> Response {
    if queue.is_shutting_down() {
        return Response::Rejected {
            reason: "daemon is shutting down".to_owned(),
            retry_after_ms: queue.retry_after_ms(),
        };
    }
    if let Err(message) = spec.validate() {
        return Response::Error {
            message: format!("invalid spec: {message}"),
        };
    }
    let total = spec.cell_count() as u64;
    if cell >= total {
        return Response::Error {
            message: format!("cell {cell} out of range (job has {total} cells)"),
        };
    }
    let previous = ctx.remote_inflight.fetch_add(1, Ordering::SeqCst);
    if previous >= ctx.slots {
        ctx.remote_inflight.fetch_sub(1, Ordering::SeqCst);
        counter!("twl.service.cells.rejected").inc();
        return Response::Rejected {
            reason: format!("all {} cell slots busy", ctx.slots),
            retry_after_ms: queue.retry_after_ms(),
        };
    }
    gauge!("twl.service.cells.inflight").add(1);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| spec.run_cell(cell as usize)));
    gauge!("twl.service.cells.inflight").add(-1);
    ctx.remote_inflight.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok((report, device_writes)) => {
            counter!("twl.service.cells.served").inc();
            Response::CellOk {
                cell,
                report,
                device_writes,
            }
        }
        Err(payload) => Response::Error {
            message: format!("cell {cell} failed: {}", panic_message(payload.as_ref())),
        },
    }
}

/// Prints the canonical "listening" line (parsed by tests and scripts
/// to discover a port-0 bind) and flushes stdout.
pub fn announce(addr: SocketAddr) {
    println!("twl-serviced listening on {addr}");
    let _ = io::stdout().flush();
}
