#![warn(missing_docs)]

//! `twl-service`: simulation-as-a-service for the tossup-wl workspace.
//!
//! Two binaries and the library behind them:
//!
//! * **`twl-serviced`** — a std-only, multi-threaded TCP daemon that
//!   queues lifetime-simulation jobs (attack/workload/degradation
//!   matrices and single runs), executes them on a worker pool sized
//!   like the in-process sweeps (`TWL_THREADS` honored via
//!   [`twl_lifetime::pool`]), streams per-job progress, and checkpoints
//!   long jobs to disk so a killed daemon resumes with bit-identical
//!   results.
//! * **`twl-ctl`** — the client CLI: submit, watch, cancel, inspect,
//!   and shut down, with table or JSON output.
//!
//! The pieces, bottom-up:
//!
//! * [`framing`] — length-prefixed JSON frames with explicit
//!   closed/truncated/oversized error taxonomy.
//! * [`wire`] — the `twl-wire/v1` request/response schema.
//! * [`job`] — job specs, per-cell execution, and the report codecs
//!   whose `f64` fields round-trip bit-exactly (the foundation of the
//!   resume-equals-rerun guarantee).
//! * [`checkpoint`] — atomic per-job JSON files storing completed
//!   cells.
//! * [`queue`] — the bounded job queue with reject-based backpressure.
//! * [`server`] / [`client`] — the daemon and its client.
//!
//! Telemetry: the daemon publishes `twl.service.*` counters (jobs
//! queued/completed/failed/cancelled/rejected, connections, protocol
//! errors), a queue-depth gauge, and a per-job wall-time histogram
//! through `twl-telemetry`; with `--trace-dir` each job's simulation
//! records land in their own `job-<id>.trace.jsonl` via the
//! scope-routed sink.

pub mod checkpoint;
pub mod client;
pub mod framing;
pub mod job;
pub mod net;
pub mod queue;
pub mod server;
pub mod wire;

pub use checkpoint::{Checkpoint, CheckpointDir, CHECKPOINT_SCHEMA};
pub use client::{CellOutcome, Client, ClientError, SubmitOutcome, BACKOFF_CAP_MS};
pub use framing::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use job::{decode_result, encode_result, JobKind, JobReports, JobSpec};
pub use net::{apply_idle_timeout, guard_frame_len, idle_deadline, is_idle_timeout};
pub use queue::{JobQueue, JobStatus, SubmitRejection};
pub use server::{
    render_metrics_page, stream_job, Server, ServiceConfig, EXIT_AFTER_CHECKPOINTS_ENV,
};
pub use wire::{JobEvent, JobSnapshot, Request, Response, PROTOCOL};
