//! Job specifications and the JSON codecs for specs and reports.
//!
//! A job is a matrix of independent *cells* (see
//! `twl_lifetime::sweep`): scheme × attack, scheme × benchmark, or a
//! single lifetime run. Each cell is a pure function of the spec and
//! the cell index, which is what makes jobs checkpointable — a resumed
//! daemon re-runs only the missing cells and the assembled result is
//! bit-identical to an uninterrupted run.
//!
//! All floating-point fields ride the wire through
//! [`twl_telemetry::json::Json`], whose writer emits the shortest
//! round-tripping decimal form — decoding recovers the exact `f64`
//! bits, so reports compare equal (`==`) across a network or
//! checkpoint round trip.

use std::collections::BTreeMap;

use twl_faults::{CorrectionPolicy, FaultConfig};
use twl_lifetime::{
    run_degradation_cell, run_lifetime_cell, DegradationEnd, DegradationPoint, DegradationReport,
    LifetimeReport, SchemeKind, SchemeSpec, SimLimits,
};
use twl_pcm::{PcmConfig, PhysicalPageAddr};
use twl_telemetry::json::{int, num, str, Json};
use twl_workloads::WorkloadSpec;

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Scheme × attack lifetime grid (Fig. 6).
    AttackMatrix,
    /// Scheme × PARSEC-benchmark lifetime grid (Fig. 8).
    WorkloadMatrix,
    /// Scheme × attack graceful-degradation grid.
    DegradationMatrix,
    /// A single scheme-under-attack lifetime run.
    LifetimeRun,
}

impl JobKind {
    /// Wire label (`"attack_matrix"`, …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::AttackMatrix => "attack_matrix",
            Self::WorkloadMatrix => "workload_matrix",
            Self::DegradationMatrix => "degradation_matrix",
            Self::LifetimeRun => "lifetime_run",
        }
    }

    /// Parses a wire label.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown label.
    pub fn parse(label: &str) -> Result<Self, String> {
        match label {
            "attack_matrix" => Ok(Self::AttackMatrix),
            "workload_matrix" => Ok(Self::WorkloadMatrix),
            "degradation_matrix" => Ok(Self::DegradationMatrix),
            "lifetime_run" => Ok(Self::LifetimeRun),
            other => Err(format!("unknown job kind `{other}`")),
        }
    }
}

/// Parses a scheme kind by its paper label (case-insensitive); a thin
/// alias for [`SchemeKind`]'s `FromStr`.
///
/// # Errors
///
/// Returns a message listing the valid labels.
pub fn parse_scheme(label: &str) -> Result<SchemeKind, String> {
    label.parse()
}

/// A complete, self-contained description of one job.
///
/// Timing always stays at the DAC'17 default — the wire schema carries
/// only the fields that affect wear behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// The scaled device every cell draws from.
    pub pcm: PcmConfig,
    /// Per-cell safety limits.
    pub limits: SimLimits,
    /// Scheme configurations, in matrix-major order. Bare kinds are
    /// default-params specs; parameter studies carry overrides.
    pub schemes: Vec<SchemeSpec>,
    /// Workloads for attack/degradation matrices and lifetime runs
    /// (the wire's `attacks` list) — attack modes by default, but any
    /// [`WorkloadSpec`] (including `TRACE[path=...]` replays) is a
    /// valid cell coordinate.
    pub attacks: Vec<WorkloadSpec>,
    /// Workloads for workload matrices (the wire's `benchmarks` list).
    pub benchmarks: Vec<WorkloadSpec>,
    /// Fault model for degradation matrices; `None` means
    /// [`FaultConfig::default`].
    pub fault: Option<FaultConfig>,
}

impl JobSpec {
    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.schemes.is_empty() {
            return Err("spec needs at least one scheme".into());
        }
        for scheme in &self.schemes {
            scheme.validate().map_err(|e| e.to_string())?;
        }
        for workload in self.attacks.iter().chain(&self.benchmarks) {
            workload.validate().map_err(|e| e.to_string())?;
        }
        match self.kind {
            JobKind::AttackMatrix | JobKind::DegradationMatrix => {
                if self.attacks.is_empty() {
                    return Err("spec needs at least one attack".into());
                }
            }
            JobKind::WorkloadMatrix => {
                if self.benchmarks.is_empty() {
                    return Err("spec needs at least one benchmark".into());
                }
            }
            JobKind::LifetimeRun => {
                if self.schemes.len() != 1 || self.attacks.len() != 1 {
                    return Err("a lifetime_run takes exactly one scheme and one attack".into());
                }
            }
        }
        if self.kind == JobKind::DegradationMatrix {
            self.fault_config().validate()?;
        }
        Ok(())
    }

    /// The effective fault configuration.
    #[must_use]
    pub fn fault_config(&self) -> FaultConfig {
        self.fault.clone().unwrap_or_default()
    }

    /// The workload axis this job's kind sweeps: `benchmarks` for a
    /// workload matrix, `attacks` for everything else.
    #[must_use]
    pub fn workload_axis(&self) -> &[WorkloadSpec] {
        match self.kind {
            JobKind::WorkloadMatrix => &self.benchmarks,
            _ => &self.attacks,
        }
    }

    /// Cells in this job's matrix.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.schemes.len() * self.workload_axis().len()
    }

    /// `(scheme label, workload label)` of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cell_count()`.
    #[must_use]
    pub fn describe_cell(&self, index: usize) -> (String, String) {
        assert!(index < self.cell_count(), "cell index out of range");
        let axis = self.workload_axis();
        let scheme = self.schemes[index / axis.len()];
        let workload = &axis[index % axis.len()];
        (scheme.label(), workload.label())
    }

    /// Runs cell `index` and returns its encoded report plus the device
    /// writes it absorbed (the unit the checkpoint interval counts).
    ///
    /// Deterministic: depends only on the spec and the index, exactly
    /// like the matrix helpers in `twl_lifetime::sweep`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the scheme/workload cannot
    /// be built for the device geometry (the executor catches the
    /// latter and fails the job instead of the daemon).
    #[must_use]
    pub fn run_cell(&self, index: usize) -> (Json, u64) {
        assert!(index < self.cell_count(), "cell index out of range");
        let axis = self.workload_axis();
        let scheme = self.schemes[index / axis.len()];
        let workload = &axis[index % axis.len()];
        if self.kind == JobKind::DegradationMatrix {
            let report = run_degradation_cell(
                &self.pcm,
                &self.fault_config(),
                scheme,
                workload,
                &self.limits,
            );
            let writes = report.device_writes;
            (degradation_report_to_json(&report), writes)
        } else {
            let report = run_lifetime_cell(&self.pcm, scheme, workload, &self.limits);
            let writes = report.device_writes;
            (lifetime_report_to_json(&report), writes)
        }
    }

    /// Encodes the spec for the wire and the checkpoint file.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", str(self.kind.label())),
            ("pcm", pcm_to_json(&self.pcm)),
            (
                "limits",
                Json::obj([("max_logical_writes", int(self.limits.max_logical_writes))]),
            ),
            (
                "schemes",
                Json::Arr(self.schemes.iter().map(SchemeSpec::to_json).collect()),
            ),
            (
                "attacks",
                Json::Arr(self.attacks.iter().map(WorkloadSpec::to_json).collect()),
            ),
            (
                "benchmarks",
                Json::Arr(self.benchmarks.iter().map(WorkloadSpec::to_json).collect()),
            ),
        ];
        if let Some(fault) = &self.fault {
            pairs.push(("fault", fault_to_json(fault)));
        }
        Json::obj(pairs)
    }

    /// Decodes a spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or invalid field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let kind = JobKind::parse(req_str(v, "kind")?)?;
        let pcm = pcm_from_json(v.get("pcm").ok_or("spec is missing `pcm`")?)?;
        let limits = match v.get("limits") {
            Some(limits) => SimLimits {
                max_logical_writes: req_u64(limits, "max_logical_writes")?,
            },
            None => SimLimits::default(),
        };
        let schemes = v
            .get("schemes")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array `schemes`")?
            .iter()
            .map(SchemeSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let attacks = workload_list(v, "attacks")?;
        let benchmarks = workload_list(v, "benchmarks")?;
        let fault = match v.get("fault") {
            Some(f) => Some(fault_from_json(f)?),
            None => None,
        };
        Ok(Self {
            kind,
            pcm,
            limits,
            schemes,
            attacks,
            benchmarks,
            fault,
        })
    }
}

/// The reports a finished job carries, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum JobReports {
    /// Lifetime reports (attack/workload matrices, lifetime runs).
    Lifetime(Vec<LifetimeReport>),
    /// Degradation reports (degradation matrices).
    Degradation(Vec<DegradationReport>),
}

/// Assembles a job result document from per-cell reports in index
/// order: `{"kind": ..., "reports": [...]}`.
#[must_use]
pub fn encode_result(kind: JobKind, reports: Vec<Json>) -> Json {
    Json::obj([("kind", str(kind.label())), ("reports", Json::Arr(reports))])
}

/// Decodes a job result document back into typed reports.
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn decode_result(v: &Json) -> Result<JobReports, String> {
    let kind = JobKind::parse(req_str(v, "kind")?)?;
    let reports = v
        .get("reports")
        .and_then(Json::as_arr)
        .ok_or("result is missing `reports`")?;
    match kind {
        JobKind::DegradationMatrix => reports
            .iter()
            .map(degradation_report_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(JobReports::Degradation),
        _ => reports
            .iter()
            .map(lifetime_report_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map(JobReports::Lifetime),
    }
}

/// Encodes a [`LifetimeReport`] with exact numeric round-tripping.
#[must_use]
pub fn lifetime_report_to_json(r: &LifetimeReport) -> Json {
    Json::obj([
        ("scheme", str(&r.scheme)),
        ("workload", str(&r.workload)),
        ("logical_writes", int(r.logical_writes)),
        ("device_writes", int(r.device_writes)),
        (
            "failed_page",
            r.failed_page.map_or(Json::Null, |p| int(p.index())),
        ),
        ("completed", Json::Bool(r.completed)),
        ("capacity_fraction", num(r.capacity_fraction)),
        ("years", num(r.years)),
        ("swap_per_write", num(r.swap_per_write)),
        ("extra_write_ratio", num(r.extra_write_ratio)),
        ("wear_gini", num(r.wear_gini)),
    ])
}

/// Decodes a [`LifetimeReport`].
///
/// # Errors
///
/// Returns a message naming the first missing or invalid field.
pub fn lifetime_report_from_json(v: &Json) -> Result<LifetimeReport, String> {
    Ok(LifetimeReport {
        scheme: req_str(v, "scheme")?.to_owned(),
        workload: req_str(v, "workload")?.to_owned(),
        logical_writes: req_u64(v, "logical_writes")?,
        device_writes: req_u64(v, "device_writes")?,
        failed_page: opt_u64(v, "failed_page")?.map(PhysicalPageAddr::new),
        completed: req_bool(v, "completed")?,
        capacity_fraction: req_f64(v, "capacity_fraction")?,
        years: req_f64(v, "years")?,
        swap_per_write: req_f64(v, "swap_per_write")?,
        extra_write_ratio: req_f64(v, "extra_write_ratio")?,
        wear_gini: req_f64(v, "wear_gini")?,
    })
}

/// Encodes a [`DegradationReport`] with exact numeric round-tripping.
#[must_use]
pub fn degradation_report_to_json(r: &DegradationReport) -> Json {
    let point = |p: &DegradationPoint| {
        Json::obj([
            ("logical_writes", int(p.logical_writes)),
            ("device_writes", int(p.device_writes)),
            ("corrected_groups", int(p.corrected_groups)),
            ("retired_pages", int(p.retired_pages)),
            ("spares_remaining", int(p.spares_remaining)),
        ])
    };
    let opt = |v: Option<u64>| v.map_or(Json::Null, int);
    Json::obj([
        ("scheme", str(&r.scheme)),
        ("workload", str(&r.workload)),
        ("data_pages", int(r.data_pages)),
        ("spare_pages", int(r.spare_pages)),
        ("logical_writes", int(r.logical_writes)),
        ("device_writes", int(r.device_writes)),
        ("corrected_groups", int(r.corrected_groups)),
        ("retired_pages", int(r.retired_pages)),
        (
            "first_fault_device_writes",
            opt(r.first_fault_device_writes),
        ),
        (
            "first_retirement_device_writes",
            opt(r.first_retirement_device_writes),
        ),
        (
            "spare_exhausted_device_writes",
            opt(r.spare_exhausted_device_writes),
        ),
        (
            "end",
            str(match r.end {
                DegradationEnd::SpareExhausted => "spare_exhausted",
                DegradationEnd::WriteBudget => "write_budget",
            }),
        ),
        ("capacity_fraction", num(r.capacity_fraction)),
        ("years", num(r.years)),
        ("wear_gini", num(r.wear_gini)),
        ("curve", Json::Arr(r.curve.iter().map(point).collect())),
    ])
}

/// Decodes a [`DegradationReport`].
///
/// # Errors
///
/// Returns a message naming the first missing or invalid field.
pub fn degradation_report_from_json(v: &Json) -> Result<DegradationReport, String> {
    let end = match req_str(v, "end")? {
        "spare_exhausted" => DegradationEnd::SpareExhausted,
        "write_budget" => DegradationEnd::WriteBudget,
        other => return Err(format!("unknown degradation end `{other}`")),
    };
    let curve = v
        .get("curve")
        .and_then(Json::as_arr)
        .ok_or("degradation report is missing `curve`")?
        .iter()
        .map(|p| {
            Ok(DegradationPoint {
                logical_writes: req_u64(p, "logical_writes")?,
                device_writes: req_u64(p, "device_writes")?,
                corrected_groups: req_u64(p, "corrected_groups")?,
                retired_pages: req_u64(p, "retired_pages")?,
                spares_remaining: req_u64(p, "spares_remaining")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(DegradationReport {
        scheme: req_str(v, "scheme")?.to_owned(),
        workload: req_str(v, "workload")?.to_owned(),
        data_pages: req_u64(v, "data_pages")?,
        spare_pages: req_u64(v, "spare_pages")?,
        logical_writes: req_u64(v, "logical_writes")?,
        device_writes: req_u64(v, "device_writes")?,
        corrected_groups: req_u64(v, "corrected_groups")?,
        retired_pages: req_u64(v, "retired_pages")?,
        first_fault_device_writes: opt_u64(v, "first_fault_device_writes")?,
        first_retirement_device_writes: opt_u64(v, "first_retirement_device_writes")?,
        spare_exhausted_device_writes: opt_u64(v, "spare_exhausted_device_writes")?,
        end,
        capacity_fraction: req_f64(v, "capacity_fraction")?,
        years: req_f64(v, "years")?,
        wear_gini: req_f64(v, "wear_gini")?,
        curve,
    })
}

fn pcm_to_json(c: &PcmConfig) -> Json {
    Json::obj([
        ("pages", int(c.pages)),
        ("page_size_bytes", int(c.page_size_bytes)),
        ("line_size_bytes", int(c.line_size_bytes)),
        ("mean_endurance", int(c.mean_endurance)),
        ("sigma_fraction", num(c.sigma_fraction)),
        ("seed", int(c.seed)),
        ("banks", int(u64::from(c.banks))),
    ])
}

fn pcm_from_json(v: &Json) -> Result<PcmConfig, String> {
    let mut builder = PcmConfig::builder();
    builder
        .pages(req_u64(v, "pages")?)
        .mean_endurance(req_u64(v, "mean_endurance")?)
        .seed(req_u64(v, "seed")?);
    if let Some(f) = v.get("sigma_fraction") {
        builder.sigma_fraction(f.as_f64().ok_or("`sigma_fraction` must be a number")?);
    }
    if let Some(n) = v.get("page_size_bytes") {
        builder.page_size_bytes(n.as_u64().ok_or("`page_size_bytes` must be an integer")?);
    }
    if let Some(n) = v.get("line_size_bytes") {
        builder.line_size_bytes(n.as_u64().ok_or("`line_size_bytes` must be an integer")?);
    }
    if let Some(n) = v.get("banks") {
        let banks = n.as_u64().ok_or("`banks` must be an integer")?;
        builder.banks(u32::try_from(banks).map_err(|_| "`banks` is out of range")?);
    }
    builder.build().map_err(|e| e.to_string())
}

fn fault_to_json(f: &FaultConfig) -> Json {
    Json::obj([
        (
            "cell_groups_per_page",
            int(u64::from(f.cell_groups_per_page)),
        ),
        ("group_sigma_fraction", num(f.group_sigma_fraction)),
        ("policy", str(&f.policy.label())),
        ("spare_fraction", num(f.spare_fraction)),
        ("seed", int(f.seed)),
    ])
}

fn fault_from_json(v: &Json) -> Result<FaultConfig, String> {
    let policy_label = req_str(v, "policy")?;
    let policy = parse_policy(policy_label)?;
    let groups = req_u64(v, "cell_groups_per_page")?;
    Ok(FaultConfig {
        cell_groups_per_page: u32::try_from(groups)
            .map_err(|_| "`cell_groups_per_page` is out of range")?,
        group_sigma_fraction: req_f64(v, "group_sigma_fraction")?,
        policy,
        spare_fraction: req_f64(v, "spare_fraction")?,
        seed: req_u64(v, "seed")?,
    })
}

/// Parses a correction-policy label (`"ECP6"`, `"SAFER8"`).
fn parse_policy(label: &str) -> Result<CorrectionPolicy, String> {
    let bad = || format!("unknown correction policy `{label}` (expected ECP<n> or SAFER<n>)");
    if let Some(n) = label.strip_prefix("ECP") {
        let entries = n.parse().map_err(|_| bad())?;
        Ok(CorrectionPolicy::Ecp { entries })
    } else if let Some(n) = label.strip_prefix("SAFER") {
        let groups = n.parse().map_err(|_| bad())?;
        Ok(CorrectionPolicy::Safer { groups })
    } else {
        Err(bad())
    }
}

/// Encodes a completed-cells map with string keys (JSON object keys).
#[must_use]
pub fn cells_to_json(cells: &BTreeMap<u64, Json>) -> Json {
    Json::Obj(
        cells
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Decodes a completed-cells map.
///
/// # Errors
///
/// Returns a message on a non-object value or a non-numeric key.
pub fn cells_from_json(v: &Json) -> Result<BTreeMap<u64, Json>, String> {
    match v {
        Json::Obj(map) => map
            .iter()
            .map(|(k, v)| {
                let index = k
                    .parse::<u64>()
                    .map_err(|_| format!("bad cell index `{k}`"))?;
                Ok((index, v.clone()))
            })
            .collect(),
        _ => Err("completed cells must be an object".into()),
    }
}

/// Decodes a workload-spec list: each entry a bare label string
/// (pre-`WorkloadSpec` frames) or a `{"kind", "params"}` object.
fn workload_list(v: &Json, key: &str) -> Result<Vec<WorkloadSpec>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array `{key}`"))?;
    arr.iter().map(WorkloadSpec::from_json).collect()
}

pub(crate) fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

pub(crate) fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

pub(crate) fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer `{key}`")),
    }
}

pub(crate) fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric `{key}`"))
}

pub(crate) fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(128, 2_000, 8),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
            attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
            benchmarks: vec![],
            fault: None,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let original = spec();
        let back = JobSpec::from_json(&original.to_json()).unwrap();
        assert_eq!(back, original);

        let degradation = JobSpec {
            kind: JobKind::DegradationMatrix,
            fault: Some(FaultConfig {
                cell_groups_per_page: 8,
                group_sigma_fraction: 0.15,
                policy: CorrectionPolicy::Safer { groups: 3 },
                spare_fraction: 0.05,
                seed: 4,
            }),
            ..spec()
        };
        let back = JobSpec::from_json(&degradation.to_json()).unwrap();
        assert_eq!(back, degradation);
    }

    #[test]
    fn spec_json_survives_the_text_form() {
        let original = spec();
        let text = original.to_json().to_compact();
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn validation_names_problems() {
        let mut s = spec();
        s.schemes.clear();
        assert!(s.validate().unwrap_err().contains("scheme"));

        let mut s = spec();
        s.kind = JobKind::WorkloadMatrix;
        assert!(s.validate().unwrap_err().contains("benchmark"));

        let mut s = spec();
        s.kind = JobKind::LifetimeRun;
        assert!(s.validate().unwrap_err().contains("exactly one"));

        assert!(spec().validate().is_ok());
    }

    #[test]
    fn cells_run_in_matrix_order_and_reports_round_trip() {
        let s = JobSpec {
            pcm: PcmConfig::scaled(64, 500, 3),
            ..spec()
        };
        assert_eq!(s.cell_count(), 4);
        assert_eq!(s.describe_cell(0), ("NOWL".to_owned(), "repeat".to_owned()));
        assert_eq!(
            s.describe_cell(3),
            ("TWL_swp".to_owned(), "scan".to_owned())
        );
        let (encoded, writes) = s.run_cell(1);
        let report = lifetime_report_from_json(&encoded).unwrap();
        assert_eq!(report.scheme, "NOWL");
        assert_eq!(report.workload, "scan");
        assert_eq!(report.device_writes, writes);
        // The text form (what actually crosses the wire) is bit-exact.
        let text = encoded.to_compact();
        let back = lifetime_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn degradation_reports_round_trip_bit_exactly() {
        let s = JobSpec {
            kind: JobKind::DegradationMatrix,
            pcm: PcmConfig::scaled(64, 500, 3),
            schemes: vec![SchemeKind::Nowl.into()],
            attacks: vec![AttackKind::Repeat.into()],
            fault: Some(FaultConfig {
                cell_groups_per_page: 8,
                group_sigma_fraction: 0.15,
                policy: CorrectionPolicy::Ecp { entries: 2 },
                spare_fraction: 0.05,
                seed: 4,
            }),
            ..spec()
        };
        let (encoded, _) = s.run_cell(0);
        let text = encoded.to_compact();
        let report = degradation_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        let direct = twl_lifetime::run_degradation_cell(
            &s.pcm,
            &s.fault_config(),
            SchemeKind::Nowl,
            AttackKind::Repeat,
            &s.limits,
        );
        assert_eq!(report, direct);
    }

    #[test]
    fn result_document_round_trips() {
        let s = JobSpec {
            pcm: PcmConfig::scaled(64, 500, 3),
            schemes: vec![SchemeKind::Nowl.into()],
            attacks: vec![AttackKind::Repeat.into()],
            ..spec()
        };
        let (cell, _) = s.run_cell(0);
        let result = encode_result(s.kind, vec![cell]);
        match decode_result(&result).unwrap() {
            JobReports::Lifetime(reports) => {
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].scheme, "NOWL");
            }
            JobReports::Degradation(_) => panic!("wrong report type"),
        }
    }

    #[test]
    fn label_parsers_reject_unknowns() {
        assert!(parse_scheme("twl_swp").is_ok());
        assert!(parse_scheme("bogus").is_err());
        assert!("REPEAT".parse::<WorkloadSpec>().is_ok());
        assert!("bogus".parse::<WorkloadSpec>().is_err());
        assert!("Vips".parse::<WorkloadSpec>().is_ok());
        assert!(parse_policy("ECP6").is_ok());
        assert!(parse_policy("SAFER8").is_ok());
        assert!(parse_policy("RAID5").is_err());
    }

    #[test]
    fn trace_and_parameterized_workloads_round_trip_the_spec_codec() {
        let s = JobSpec {
            attacks: vec![
                "inconsistent[group=4,stride=8]".parse().unwrap(),
                "TRACE[path=/tmp/x.trace,seed=3]".parse().unwrap(),
            ],
            ..spec()
        };
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let text = s.to_json().to_compact();
        assert!(text.contains("\"kind\":\"TRACE\""));
        assert!(text.contains("\"path\":\"/tmp/x.trace\""));
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.describe_cell(1).1, "TRACE[path=/tmp/x.trace,seed=3]");
    }

    #[test]
    fn cells_map_round_trips() {
        let mut cells = BTreeMap::new();
        cells.insert(0u64, int(1));
        cells.insert(7u64, str("x"));
        let back = cells_from_json(&cells_to_json(&cells)).unwrap();
        assert_eq!(back, cells);
        assert!(cells_from_json(&int(3)).is_err());
    }
}
