//! The `twl-wire/v1` client used by `twl-ctl`, the fleet coordinator,
//! and the integration tests.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime};

use twl_telemetry::json::Json;

use crate::framing::{read_frame, write_frame, FrameError};
use crate::job::JobSpec;
use crate::wire::{JobEvent, JobSnapshot, Request, Response, PROTOCOL};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the daemon.
    Io(io::Error),
    /// The daemon's frame could not be read.
    Frame(FrameError),
    /// The daemon answered with the wrong frame type.
    Protocol(String),
    /// The daemon reported an error.
    Remote(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Frame(e) => write!(f, "bad frame from daemon: {e}"),
            Self::Protocol(m) => write!(f, "unexpected response: {m}"),
            Self::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// Ceiling on one backoff sleep; past this the window stops doubling.
pub const BACKOFF_CAP_MS: u64 = 30_000;

/// A non-zero seed for the backoff jitter, decorrelated across
/// processes by mixing the clock with the process id.
fn jitter_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0x9e37_79b9, |d| d.subsec_nanos());
    (u64::from(nanos) << 17) ^ u64::from(std::process::id()) | 1
}

/// The sleep before retry `attempt` (0-based): never below the
/// server's `retry-after` hint, jittered uniformly up to an
/// exponentially growing ceiling (`hint * 2^attempt`, capped at
/// [`BACKOFF_CAP_MS`]) via a xorshift step of `seed`.
fn backoff_delay(attempt: u32, retry_after_ms: u64, seed: &mut u64) -> Duration {
    let hint = retry_after_ms.clamp(1, BACKOFF_CAP_MS);
    let ceiling = hint
        .saturating_mul(1u64 << attempt.min(16))
        .min(BACKOFF_CAP_MS)
        .max(hint);
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    Duration::from_millis(hint + *seed % (ceiling - hint + 1))
}

/// What a submit produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job was queued under this id.
    Accepted(u64),
    /// Backpressure: try again after the hint.
    Rejected {
        /// Why the job was refused.
        reason: String,
        /// Suggested wait before retrying.
        retry_after_ms: u64,
    },
}

/// What one `run_cell` dispatch produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell ran; here is its encoded report and write count.
    Done {
        /// The encoded cell report.
        report: Json,
        /// Device writes the cell absorbed.
        device_writes: u64,
    },
    /// Every cell slot on the daemon is busy; try again later.
    Saturated {
        /// Suggested wait before retrying.
        retry_after_ms: u64,
    },
}

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    slots: Option<u64>,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, a protocol-version mismatch, or a
    /// non-handshake reply.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with_timeouts(addr, None, None)
    }

    /// Connects with explicit connect and read deadlines, so a client
    /// survives a dead coordinator or worker instead of hanging. A
    /// `None` timeout blocks indefinitely (the pre-fleet behaviour).
    ///
    /// # Errors
    ///
    /// Fails on connection errors (including a connect-timeout expiry),
    /// a protocol-version mismatch, or a non-handshake reply.
    pub fn connect_with_timeouts(
        addr: &str,
        connect_timeout: Option<Duration>,
        read_timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let stream = match connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                // connect_timeout needs a resolved SocketAddr; try each
                // resolution until one answers within the deadline.
                let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved");
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = e,
                    }
                }
                connected.ok_or(last)?
            }
        };
        stream.set_read_timeout(read_timeout)?;
        let mut client = Self {
            stream,
            slots: None,
        };
        client.send(&Request::Hello {
            proto: PROTOCOL.to_owned(),
        })?;
        match client.recv()? {
            Response::HelloOk { slots, .. } => {
                client.slots = slots;
                Ok(client)
            }
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// The `run_cell` parallelism the daemon advertised in its
    /// handshake; `None` from daemons that predate the fleet protocol.
    #[must_use]
    pub fn slots(&self) -> Option<u64> {
        self.slots
    }

    /// Replaces the read deadline mid-session — e.g. disable it before
    /// a long [`Client::wait`] stream, or tighten it around a
    /// `run_cell` lease.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure.
    pub fn set_read_timeout(&self, read_timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(read_timeout)?;
        Ok(())
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.stream)?;
        Response::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Submits a job; backpressure comes back as
    /// [`SubmitOutcome::Rejected`], not an error.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an invalid spec, or an unexpected
    /// reply.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.send(&Request::Submit { spec: spec.clone() })?;
        match self.recv()? {
            Response::Submitted { job_id } => Ok(SubmitOutcome::Accepted(job_id)),
            Response::Rejected {
                reason,
                retry_after_ms,
            } => Ok(SubmitOutcome::Rejected {
                reason,
                retry_after_ms,
            }),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Submits with bounded retries under backpressure, sleeping a
    /// jittered exponential backoff between attempts: the floor of each
    /// wait is the daemon's `retry-after` hint, the window doubles per
    /// attempt up to [`BACKOFF_CAP_MS`], and the actual sleep lands
    /// uniformly in the upper half of the window so a herd of rejected
    /// clients does not retry in lockstep.
    ///
    /// # Errors
    ///
    /// Fails like [`Client::submit`], or with [`ClientError::Remote`]
    /// once `max_attempts` rejections have been absorbed.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_attempts: u32,
    ) -> Result<u64, ClientError> {
        let mut last_reason = String::new();
        let mut jitter = jitter_seed();
        for attempt in 0..max_attempts.max(1) {
            match self.submit(spec)? {
                SubmitOutcome::Accepted(job_id) => return Ok(job_id),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    last_reason = reason;
                    std::thread::sleep(backoff_delay(attempt, retry_after_ms, &mut jitter));
                }
            }
        }
        Err(ClientError::Remote(format!(
            "submit still rejected after {max_attempts} attempts: {last_reason}"
        )))
    }

    /// Dispatches exactly one matrix cell to the daemon and waits for
    /// its report — the fleet coordinator's worker call. Saturation
    /// (`rejected`) is an outcome, not an error; a read-timeout expiry
    /// surfaces as [`ClientError::Frame`] so the caller can treat the
    /// lease as broken.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an invalid spec or cell index, or an
    /// unexpected reply.
    pub fn run_cell(&mut self, spec: &JobSpec, cell: u64) -> Result<CellOutcome, ClientError> {
        self.send(&Request::RunCell {
            spec: spec.clone(),
            cell,
        })?;
        match self.recv()? {
            Response::CellOk {
                cell: done,
                report,
                device_writes,
            } => {
                if done == cell {
                    Ok(CellOutcome::Done {
                        report,
                        device_writes,
                    })
                } else {
                    Err(ClientError::Protocol(format!(
                        "asked for cell {cell}, daemon ran cell {done}"
                    )))
                }
            }
            Response::Rejected { retry_after_ms, .. } => {
                Ok(CellOutcome::Saturated { retry_after_ms })
            }
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Registers a worker daemon with the coordinator this client is
    /// connected to; returns the registered address and the worker's
    /// advertised slot count.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a daemon that is not a coordinator,
    /// or an unexpected reply.
    pub fn register_worker(&mut self, addr: &str) -> Result<(String, u64), ClientError> {
        self.send(&Request::RegisterWorker {
            addr: addr.to_owned(),
        })?;
        match self.recv()? {
            Response::WorkerOk { addr, slots } => Ok((addr, slots)),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Snapshots one job (or all jobs).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn status(&mut self, job_id: Option<u64>) -> Result<Vec<JobSnapshot>, ClientError> {
        self.send(&Request::Status { job_id })?;
        match self.recv()? {
            Response::StatusOk { jobs } => Ok(jobs),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Streams a job to completion, feeding each progress event to
    /// `on_event`, and returns the result document.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unknown job, or with
    /// [`ClientError::Remote`] when the job failed or was cancelled.
    pub fn wait(
        &mut self,
        job_id: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<Json, ClientError> {
        self.send(&Request::Stream { job_id })?;
        loop {
            match self.recv()? {
                Response::Event { event, .. } => on_event(&event),
                Response::JobResult { result, .. } => return Ok(result),
                Response::JobFailed { error, .. } => return Err(ClientError::Remote(error)),
                Response::Error { message } => return Err(ClientError::Remote(message)),
                other => return Err(ClientError::Protocol(format!("{other:?}"))),
            }
        }
    }

    /// Fetches the daemon's Prometheus text-format metrics page
    /// (registry counters/gauges/histograms plus per-job progress
    /// gauges).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::MetricsOk { text } => Ok(text),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to cancel a job; `false` means it had already
    /// finished.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unknown job, or an unexpected
    /// reply.
    pub fn cancel(&mut self, job_id: u64) -> Result<bool, ClientError> {
        self.send(&Request::Cancel { job_id })?;
        match self.recv()? {
            Response::CancelOk { cancelled, .. } => Ok(cancelled),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownOk => Ok(()),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_never_undercuts_the_hint_and_caps_out() {
        let mut seed = 0xdead_beefu64;
        for attempt in 0..24 {
            let hint = 500u64;
            let ceiling = hint
                .saturating_mul(1u64 << attempt.min(16))
                .min(BACKOFF_CAP_MS);
            let ms = u64::try_from(backoff_delay(attempt, hint, &mut seed).as_millis()).unwrap();
            assert!(ms >= hint, "attempt {attempt}: {ms}ms under the hint");
            assert!(
                ms <= ceiling.max(hint),
                "attempt {attempt}: {ms}ms over the {ceiling}ms ceiling"
            );
        }
    }

    #[test]
    fn backoff_jitter_actually_varies() {
        let mut seed = jitter_seed();
        let samples: Vec<u64> = (0..32)
            .map(|_| u64::try_from(backoff_delay(4, 100, &mut seed).as_millis()).unwrap())
            .collect();
        assert!(
            samples.windows(2).any(|w| w[0] != w[1]),
            "32 identical jittered delays: {samples:?}"
        );
    }

    #[test]
    fn zero_hint_still_sleeps_a_positive_bounded_time() {
        let mut seed = 7;
        let d = backoff_delay(0, 0, &mut seed);
        assert!(d >= Duration::from_millis(1));
        assert!(d <= Duration::from_millis(BACKOFF_CAP_MS));
    }
}
