//! The `twl-wire/v1` client used by `twl-ctl` and the integration
//! tests.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

use twl_telemetry::json::Json;

use crate::framing::{read_frame, write_frame, FrameError};
use crate::job::JobSpec;
use crate::wire::{JobEvent, JobSnapshot, Request, Response, PROTOCOL};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the daemon.
    Io(io::Error),
    /// The daemon's frame could not be read.
    Frame(FrameError),
    /// The daemon answered with the wrong frame type.
    Protocol(String),
    /// The daemon reported an error.
    Remote(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Frame(e) => write!(f, "bad frame from daemon: {e}"),
            Self::Protocol(m) => write!(f, "unexpected response: {m}"),
            Self::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// What a submit produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job was queued under this id.
    Accepted(u64),
    /// Backpressure: try again after the hint.
    Rejected {
        /// Why the job was refused.
        reason: String,
        /// Suggested wait before retrying.
        retry_after_ms: u64,
    },
}

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, a protocol-version mismatch, or a
    /// non-handshake reply.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Self { stream };
        client.send(&Request::Hello {
            proto: PROTOCOL.to_owned(),
        })?;
        match client.recv()? {
            Response::HelloOk { .. } => Ok(client),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.stream)?;
        Response::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Submits a job; backpressure comes back as
    /// [`SubmitOutcome::Rejected`], not an error.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an invalid spec, or an unexpected
    /// reply.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.send(&Request::Submit { spec: spec.clone() })?;
        match self.recv()? {
            Response::Submitted { job_id } => Ok(SubmitOutcome::Accepted(job_id)),
            Response::Rejected {
                reason,
                retry_after_ms,
            } => Ok(SubmitOutcome::Rejected {
                reason,
                retry_after_ms,
            }),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Submits with bounded retries, honoring the daemon's
    /// retry-after hint between attempts.
    ///
    /// # Errors
    ///
    /// Fails like [`Client::submit`], or with [`ClientError::Remote`]
    /// once `max_attempts` rejections have been absorbed.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_attempts: u32,
    ) -> Result<u64, ClientError> {
        let mut last_reason = String::new();
        for _ in 0..max_attempts.max(1) {
            match self.submit(spec)? {
                SubmitOutcome::Accepted(job_id) => return Ok(job_id),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    last_reason = reason;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
            }
        }
        Err(ClientError::Remote(format!(
            "submit still rejected after {max_attempts} attempts: {last_reason}"
        )))
    }

    /// Snapshots one job (or all jobs).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn status(&mut self, job_id: Option<u64>) -> Result<Vec<JobSnapshot>, ClientError> {
        self.send(&Request::Status { job_id })?;
        match self.recv()? {
            Response::StatusOk { jobs } => Ok(jobs),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Streams a job to completion, feeding each progress event to
    /// `on_event`, and returns the result document.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unknown job, or with
    /// [`ClientError::Remote`] when the job failed or was cancelled.
    pub fn wait(
        &mut self,
        job_id: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<Json, ClientError> {
        self.send(&Request::Stream { job_id })?;
        loop {
            match self.recv()? {
                Response::Event { event, .. } => on_event(&event),
                Response::JobResult { result, .. } => return Ok(result),
                Response::JobFailed { error, .. } => return Err(ClientError::Remote(error)),
                Response::Error { message } => return Err(ClientError::Remote(message)),
                other => return Err(ClientError::Protocol(format!("{other:?}"))),
            }
        }
    }

    /// Fetches the daemon's Prometheus text-format metrics page
    /// (registry counters/gauges/histograms plus per-job progress
    /// gauges).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::MetricsOk { text } => Ok(text),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to cancel a job; `false` means it had already
    /// finished.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, an unknown job, or an unexpected
    /// reply.
    pub fn cancel(&mut self, job_id: u64) -> Result<bool, ClientError> {
        self.send(&Request::Cancel { job_id })?;
        match self.recv()? {
            Response::CancelOk { cancelled, .. } => Ok(cancelled),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownOk => Ok(()),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }
}
