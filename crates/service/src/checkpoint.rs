//! Durable job state: one JSON document per job, written atomically.
//!
//! The daemon persists every job to its checkpoint directory — at
//! submit time (so queued jobs survive a restart), every time the
//! running job crosses the configured device-write interval, and at
//! each terminal transition. A checkpoint stores the *completed cells*
//! of the job's matrix; because each cell is a pure function of the
//! spec and its index (see [`crate::job::JobSpec::run_cell`]), a
//! resumed daemon re-runs only the missing cells and the assembled
//! result is bit-identical to an uninterrupted run.
//!
//! Files are written to `job-<id>.json.tmp` and renamed into place, so
//! a crash mid-write never corrupts an existing checkpoint.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use twl_telemetry::json::{int, str, Json};

use crate::job::{cells_from_json, cells_to_json, req_str, req_u64, JobSpec};

/// Schema tag stamped on every checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = "twl-service/v1";

/// The durable state of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The daemon-assigned job id.
    pub job_id: u64,
    /// The full job spec — a checkpoint is self-contained.
    pub spec: JobSpec,
    /// Status label at save time (`queued`, `running`, `completed`,
    /// `failed`, `cancelled`).
    pub status: String,
    /// Encoded reports of the cells finished so far, by cell index.
    pub completed_cells: BTreeMap<u64, Json>,
    /// The assembled result document, once the job completed.
    pub result: Option<Json>,
    /// The failure message, if the job failed.
    pub error: Option<String>,
}

impl Checkpoint {
    /// Encodes the checkpoint document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", str(CHECKPOINT_SCHEMA)),
            ("job_id", int(self.job_id)),
            ("spec", self.spec.to_json()),
            ("status", str(&self.status)),
            ("completed_cells", cells_to_json(&self.completed_cells)),
            ("result", self.result.clone().unwrap_or(Json::Null)),
            ("error", self.error.as_deref().map_or(Json::Null, str)),
        ])
    }

    /// Decodes a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a message on a schema mismatch or a malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = req_str(v, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "checkpoint schema `{schema}` is not `{CHECKPOINT_SCHEMA}`"
            ));
        }
        Ok(Self {
            job_id: req_u64(v, "job_id")?,
            spec: JobSpec::from_json(v.get("spec").ok_or("checkpoint is missing `spec`")?)?,
            status: req_str(v, "status")?.to_owned(),
            completed_cells: cells_from_json(
                v.get("completed_cells")
                    .ok_or("checkpoint is missing `completed_cells`")?,
            )?,
            result: match v.get("result") {
                None | Some(Json::Null) => None,
                Some(r) => Some(r.clone()),
            },
            error: match v.get("error") {
                None | Some(Json::Null) => None,
                Some(e) => Some(e.as_str().ok_or("non-string `error`")?.to_owned()),
            },
        })
    }
}

/// A directory of per-job checkpoint files.
#[derive(Debug)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The file a job's checkpoint lives in.
    #[must_use]
    pub fn path_for(&self, job_id: u64) -> PathBuf {
        self.dir.join(format!("job-{job_id}.json"))
    }

    /// Atomically writes `cp` (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, cp: &Checkpoint) -> io::Result<()> {
        let path = self.path_for(cp.job_id);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, cp.to_json().to_compact())?;
        fs::rename(&tmp, &path)
    }

    /// Loads every parseable checkpoint, sorted by job id. Unparseable
    /// files are skipped with a warning on stderr — a half-written temp
    /// file or a schema from the future must not brick the daemon.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn load_all(&self) -> io::Result<Vec<Checkpoint>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if !is_checkpoint_file(&path) {
                continue;
            }
            match load_one(&path) {
                Ok(cp) => out.push(cp),
                Err(e) => eprintln!("twl-serviced: skipping checkpoint {}: {e}", path.display()),
            }
        }
        out.sort_by_key(|cp| cp.job_id);
        Ok(out)
    }
}

fn is_checkpoint_file(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    name.starts_with("job-") && name.ends_with(".json")
}

fn load_one(path: &Path) -> Result<Checkpoint, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    Checkpoint::from_json(&Json::parse(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;
    use twl_lifetime::{SchemeKind, SimLimits};
    use twl_pcm::PcmConfig;

    fn spec() -> JobSpec {
        JobSpec {
            kind: crate::job::JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(128, 2_000, 8),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::Nowl.into()],
            attacks: vec![AttackKind::Repeat.into()],
            benchmarks: vec![],
            fault: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("twl_service_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoints_round_trip_on_disk() {
        let dirpath = temp_dir("roundtrip");
        let dir = CheckpointDir::open(&dirpath).unwrap();
        let mut completed_cells = BTreeMap::new();
        completed_cells.insert(0u64, Json::obj([("years", twl_telemetry::json::num(4.25))]));
        let cp = Checkpoint {
            job_id: 7,
            spec: spec(),
            status: "running".to_owned(),
            completed_cells,
            result: None,
            error: None,
        };
        dir.save(&cp).unwrap();
        let loaded = dir.load_all().unwrap();
        assert_eq!(loaded, vec![cp]);
        fs::remove_dir_all(&dirpath).ok();
    }

    #[test]
    fn unparseable_files_are_skipped() {
        let dirpath = temp_dir("skip");
        let dir = CheckpointDir::open(&dirpath).unwrap();
        fs::write(dir.path_for(1), "{not json").unwrap();
        fs::write(dirpath.join("notes.txt"), "ignore me").unwrap();
        let cp = Checkpoint {
            job_id: 2,
            spec: spec(),
            status: "queued".to_owned(),
            completed_cells: BTreeMap::new(),
            result: None,
            error: None,
        };
        dir.save(&cp).unwrap();
        let loaded = dir.load_all().unwrap();
        assert_eq!(loaded, vec![cp]);
        fs::remove_dir_all(&dirpath).ok();
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let mut v = Checkpoint {
            job_id: 1,
            spec: spec(),
            status: "queued".to_owned(),
            completed_cells: BTreeMap::new(),
            result: None,
            error: None,
        }
        .to_json();
        if let Json::Obj(map) = &mut v {
            map.insert("schema".to_owned(), str("twl-service/v999"));
        }
        assert!(Checkpoint::from_json(&v).unwrap_err().contains("schema"));
    }
}
