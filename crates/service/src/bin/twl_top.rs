//! `twl-top`: a live terminal dashboard for a `twl-serviced` daemon.
//!
//! ```text
//! twl-top [--addr HOST:PORT] [--interval SECS] [--once]
//! ```
//!
//! Each refresh polls the daemon twice over `twl-wire/v1` — a `status`
//! snapshot for the job table and a `metrics` scrape for the
//! daemon-wide counters — and redraws a single screen: a header with
//! queue depth, worker utilization, and lifetime job totals, then one
//! row per job with a progress bar, throughput, and ETA (the optional
//! `JobSnapshot` progress fields, shown blank until a job reports
//! them).
//!
//! Pointed at a `twl-coordinator` (same protocol), the scrape carries
//! the `twl_fleet_*` families and the dashboard adds a fleet section:
//! cache hit ratio, in-flight/stolen/retried/failed cell counters, and
//! one row per registered worker with its slots, in-flight cells,
//! served total, and dispatch failures.
//!
//! Pointed at a `twl-blockd` (same protocol again), the scrape carries
//! the `twl_blockdev_*` families instead and the dashboard shows the
//! block-device section: export size, op counters, the wear pipeline's
//! logical/device write totals, retirement and spare-pool state, and
//! the capture length — with an END OF LIFE banner once the spare pool
//! is exhausted.
//!
//! `--once` renders a single frame without clearing the screen and
//! exits — what the CI smoke job and scripts use. The default address
//! is `$TWL_SERVICE_ADDR` or `127.0.0.1:7781`.

use std::process::ExitCode;
use std::time::Duration;

use twl_service::wire::JobSnapshot;
use twl_service::Client;
use twl_telemetry::prom::{parse_exposition, scalar_samples, PromSample};

const USAGE: &str = "usage: twl-top [--addr HOST:PORT] [--interval SECS] [--once]";

/// Daemon-wide numbers pulled out of one metrics scrape.
#[derive(Debug, Default)]
struct DaemonStats {
    queue_depth: f64,
    workers_busy: f64,
    workers_total: f64,
    completed: f64,
    failed: f64,
    cancelled: f64,
}

/// One registered worker's `twl_fleet_worker_*` row.
#[derive(Debug)]
struct FleetWorker {
    addr: String,
    slots: f64,
    inflight: f64,
    served: f64,
    failures: f64,
}

/// Coordinator-only numbers; `None` when the scrape carries no
/// `twl_fleet_*` families (a plain `twl-serviced`).
#[derive(Debug)]
struct FleetStats {
    cache_hits: f64,
    cache_misses: f64,
    inflight: f64,
    stolen: f64,
    retried: f64,
    failed: f64,
    workers: Vec<FleetWorker>,
}

fn fleet_stats(samples: &[PromSample], flat: &impl Fn(&str) -> f64) -> Option<FleetStats> {
    let mut workers: Vec<FleetWorker> = Vec::new();
    for s in samples {
        let Some(addr) = s.label("worker") else {
            continue;
        };
        let i = match workers.iter().position(|w| w.addr == addr) {
            Some(i) => i,
            None => {
                workers.push(FleetWorker {
                    addr: addr.to_owned(),
                    slots: 0.0,
                    inflight: 0.0,
                    served: 0.0,
                    failures: 0.0,
                });
                workers.len() - 1
            }
        };
        match s.name.as_str() {
            "twl_fleet_worker_slots" => workers[i].slots = s.value,
            "twl_fleet_worker_inflight" => workers[i].inflight = s.value,
            "twl_fleet_worker_cells_served" => workers[i].served = s.value,
            "twl_fleet_worker_failures" => workers[i].failures = s.value,
            _ => {}
        }
    }
    let any_fleet_counter = samples.iter().any(|s| s.name.starts_with("twl_fleet_"));
    if workers.is_empty() && !any_fleet_counter {
        return None;
    }
    Some(FleetStats {
        cache_hits: flat("twl_fleet_cache_hits"),
        cache_misses: flat("twl_fleet_cache_misses"),
        inflight: flat("twl_fleet_cells_inflight"),
        stolen: flat("twl_fleet_cells_stolen"),
        retried: flat("twl_fleet_cells_retried"),
        failed: flat("twl_fleet_cells_failed"),
        workers,
    })
}

/// Block-daemon numbers; `None` when the scrape carries no
/// `twl_blockdev_*` families (not a `twl-blockd`).
#[derive(Debug)]
struct BlockdevStats {
    export_bytes: f64,
    reads: f64,
    writes: f64,
    trims: f64,
    flushes: f64,
    bytes_written: f64,
    logical_writes: f64,
    device_writes: f64,
    pages_retired: f64,
    spares_remaining: f64,
    capture_cmds: f64,
    end_of_life: bool,
}

fn blockdev_stats(samples: &[PromSample], flat: &impl Fn(&str) -> f64) -> Option<BlockdevStats> {
    if !samples.iter().any(|s| s.name.starts_with("twl_blockdev_")) {
        return None;
    }
    Some(BlockdevStats {
        export_bytes: flat("twl_blockdev_export_bytes"),
        reads: flat("twl_blockdev_reads"),
        writes: flat("twl_blockdev_writes"),
        trims: flat("twl_blockdev_trims"),
        flushes: flat("twl_blockdev_flushes"),
        bytes_written: flat("twl_blockdev_bytes_written"),
        logical_writes: flat("twl_blockdev_wear_logical_writes"),
        device_writes: flat("twl_blockdev_wear_device_writes"),
        pages_retired: flat("twl_blockdev_pages_retired"),
        spares_remaining: flat("twl_blockdev_spares_remaining"),
        capture_cmds: flat("twl_blockdev_capture_cmds"),
        end_of_life: flat("twl_blockdev_end_of_life") > 0.0,
    })
}

type Scrape = (DaemonStats, Option<FleetStats>, Option<BlockdevStats>);

fn scrape(client: &mut Client) -> Result<Scrape, String> {
    let text = client.metrics().map_err(|e| e.to_string())?;
    let samples = parse_exposition(&text).map_err(|e| format!("bad metrics page: {e}"))?;
    let flat = scalar_samples(&samples);
    let get = |name: &str| flat.get(name).copied().unwrap_or(0.0);
    let stats = DaemonStats {
        queue_depth: get("twl_service_queue_depth"),
        workers_busy: get("twl_service_workers_busy"),
        workers_total: get("twl_service_workers_total"),
        completed: get("twl_service_jobs_completed"),
        failed: get("twl_service_jobs_failed"),
        cancelled: get("twl_service_jobs_cancelled"),
    };
    let fleet = fleet_stats(&samples, &get);
    let blockdev = blockdev_stats(&samples, &get);
    Ok((stats, fleet, blockdev))
}

fn progress_bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        (done as usize).saturating_mul(width) / (total as usize).max(1)
    };
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for i in 0..width {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar.push(']');
    bar
}

#[allow(clippy::cast_precision_loss)]
fn job_row(job: &JobSnapshot) -> Vec<String> {
    let percent = (job.cells_done * 100)
        .checked_div(job.cells_total)
        .unwrap_or(100);
    vec![
        job.job_id.to_string(),
        job.kind.clone(),
        job.status.clone(),
        format!(
            "{} {percent:>3}%",
            progress_bar(job.cells_done, job.cells_total, 16)
        ),
        format!("{}/{}", job.cells_done, job.cells_total),
        job.writes_done.map_or_else(String::new, |w| w.to_string()),
        job.rate_wps.map_or_else(String::new, |r| format!("{r:.0}")),
        job.eta_ms
            .map_or_else(String::new, |e| format!("{:.1}s", e as f64 / 1e3)),
        job.error.clone().unwrap_or_default(),
    ]
}

fn render_fleet(fleet: &FleetStats) -> String {
    let lookups = fleet.cache_hits + fleet.cache_misses;
    let hit_ratio = if lookups > 0.0 {
        format!("{:.1}%", 100.0 * fleet.cache_hits / lookups)
    } else {
        "n/a".to_owned()
    };
    let mut out = format!(
        "fleet — cache hit ratio {hit_ratio} ({:.0}/{:.0}), cells {:.0} in flight, \
         {:.0} stolen / {:.0} retried / {:.0} failed\n",
        fleet.cache_hits, lookups, fleet.inflight, fleet.stolen, fleet.retried, fleet.failed,
    );
    if fleet.workers.is_empty() {
        out.push_str("no workers registered\n\n");
        return out;
    }
    let rows: Vec<Vec<String>> = fleet
        .workers
        .iter()
        .map(|w| {
            vec![
                w.addr.clone(),
                format!("{:.0}", w.slots),
                format!("{:.0}", w.inflight),
                format!("{:.0}", w.served),
                format!("{:.0}", w.failures),
            ]
        })
        .collect();
    out.push_str(&twl_bench::format_table(
        &["worker", "slots", "inflight", "served", "failures"],
        &rows,
    ));
    out.push('\n');
    out
}

/// `4096 B` / `1.5 KiB` / `2.0 GiB` — export sizes are round numbers,
/// one decimal is plenty.
fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 4] = ["KiB", "MiB", "GiB", "TiB"];
    if bytes < 1024.0 {
        return format!("{bytes:.0} B");
    }
    let mut value = bytes;
    let mut unit = "B";
    for next in UNITS {
        if value < 1024.0 {
            break;
        }
        value /= 1024.0;
        unit = next;
    }
    format!("{value:.1} {unit}")
}

fn render_blockdev(blk: &BlockdevStats) -> String {
    let amplification = if blk.logical_writes > 0.0 {
        format!("{:.3}x", blk.device_writes / blk.logical_writes)
    } else {
        "n/a".to_owned()
    };
    let mut out = format!(
        "blockdev — export {}, ops {:.0} wr / {:.0} rd / {:.0} trim / {:.0} flush \
         ({} written)\n\
         wear — {:.0} logical -> {:.0} device writes (amp {amplification}), \
         {:.0} pages retired, {:.0} spares left, capture {:.0} cmds\n",
        human_bytes(blk.export_bytes),
        blk.writes,
        blk.reads,
        blk.trims,
        blk.flushes,
        human_bytes(blk.bytes_written),
        blk.logical_writes,
        blk.device_writes,
        blk.pages_retired,
        blk.spares_remaining,
        blk.capture_cmds,
    );
    if blk.end_of_life {
        out.push_str("*** END OF LIFE: spare pool exhausted, writes return ENOSPC ***\n");
    }
    out.push('\n');
    out
}

fn render_frame(
    addr: &str,
    stats: &DaemonStats,
    fleet: Option<&FleetStats>,
    blockdev: Option<&BlockdevStats>,
    jobs: &[JobSnapshot],
) -> String {
    let daemon = if blockdev.is_some() {
        "twl-blockd"
    } else if fleet.is_some() {
        "twl-coordinator"
    } else {
        "twl-serviced"
    };
    let mut out = format!(
        "{daemon} {addr} — queue depth {:.0}, workers {:.0}/{:.0} busy, \
         jobs {:.0} completed / {:.0} failed / {:.0} cancelled\n\n",
        stats.queue_depth,
        stats.workers_busy,
        stats.workers_total,
        stats.completed,
        stats.failed,
        stats.cancelled,
    );
    if let Some(fleet) = fleet {
        out.push_str(&render_fleet(fleet));
    }
    if let Some(blockdev) = blockdev {
        out.push_str(&render_blockdev(blockdev));
    }
    if jobs.is_empty() {
        out.push_str("no jobs\n");
        return out;
    }
    let rows: Vec<Vec<String>> = jobs.iter().map(job_row).collect();
    out.push_str(&twl_bench::format_table(
        &[
            "job", "kind", "status", "progress", "cells", "writes", "wr/s", "eta", "error",
        ],
        &rows,
    ));
    out
}

fn poll(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let jobs = client.status(None).map_err(|e| e.to_string())?;
    let (stats, fleet, blockdev) = scrape(&mut client)?;
    Ok(render_frame(
        addr,
        &stats,
        fleet.as_ref(),
        blockdev.as_ref(),
        &jobs,
    ))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr =
        std::env::var("TWL_SERVICE_ADDR").unwrap_or_else(|_| "127.0.0.1:7781".to_owned());
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => addr = iter.next().ok_or("--addr needs a value")?.clone(),
            "--interval" => {
                let secs: f64 = iter
                    .next()
                    .ok_or("--interval needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval: {e}"))?;
                if secs <= 0.0 || secs.is_nan() {
                    return Err("--interval must be positive".into());
                }
                interval = Duration::from_secs_f64(secs);
            }
            "--once" => once = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if once {
        print!("{}", poll(&addr)?);
        return Ok(ExitCode::SUCCESS);
    }
    loop {
        match poll(&addr) {
            // ESC[2J clears the screen, ESC[H homes the cursor: a full
            // redraw per frame, no terminal library needed.
            Ok(frame) => print!("\x1b[2J\x1b[H{frame}"),
            // A daemon restart shouldn't kill the dashboard; show the
            // error and keep polling.
            Err(e) => println!("\x1b[2J\x1b[H{addr}: {e}"),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
