//! `twl-serviced`: the simulation-as-a-service daemon.
//!
//! ```text
//! twl-serviced [--addr HOST:PORT] [--queue-depth N] [--workers N]
//!              [--checkpoint-dir DIR] [--checkpoint-interval-writes N]
//!              [--trace-dir DIR] [--retry-after-ms N] [--idle-timeout-ms N]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:7781`; port 0 picks a free port.
//!   The daemon prints `twl-serviced listening on <addr>` once bound.
//! * `--queue-depth` bounds *pending* jobs; submits beyond it are
//!   rejected with a retry-after hint (explicit backpressure).
//! * `--workers` sizes the job worker pool (default: `TWL_THREADS` or
//!   the machine's parallelism, like every in-process sweep).
//! * `--checkpoint-dir` enables durability: jobs are persisted at
//!   submit time, every `--checkpoint-interval-writes` device writes
//!   while running, and at each terminal transition; a restarted
//!   daemon resumes interrupted jobs with bit-identical results.
//! * `--trace-dir` routes each job's simulation telemetry into its own
//!   `job-<id>.trace.jsonl` (inspect with `twl-stats`).
//! * `--idle-timeout-ms` closes connections that sit idle between
//!   requests (default 300000; 0 disables), so a stalled or half-open
//!   peer cannot pin a connection thread indefinitely.

use std::path::PathBuf;
use std::process::ExitCode;

use twl_service::{Server, ServiceConfig};
use twl_telemetry::RoutingJsonlSink;

const USAGE: &str = "usage: twl-serviced [--addr HOST:PORT] [--queue-depth N] [--workers N] \
[--checkpoint-dir DIR] [--checkpoint-interval-writes N] [--trace-dir DIR] [--retry-after-ms N] \
[--idle-timeout-ms N]";

fn parse_args(args: &[String]) -> Result<(ServiceConfig, Option<PathBuf>), String> {
    let mut config = ServiceConfig::default();
    let mut trace_dir = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_owned(),
            "--queue-depth" => {
                config.queue_capacity = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?));
            }
            "--checkpoint-interval-writes" => {
                config.checkpoint_interval_writes = value("--checkpoint-interval-writes")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-interval-writes: {e}"))?;
            }
            "--trace-dir" => trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--retry-after-ms" => {
                config.retry_after_ms = value("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("bad --retry-after-ms: {e}"))?;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --idle-timeout-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((config, trace_dir))
}

fn run(args: &[String]) -> Result<(), String> {
    let (config, trace_dir) = parse_args(args)?;
    if let Some(dir) = trace_dir {
        let sink = RoutingJsonlSink::create(&dir)
            .map_err(|e| format!("cannot open trace dir {}: {e}", dir.display()))?;
        twl_telemetry::install_sink(sink);
        eprintln!("telemetry: per-job traces under {}", dir.display());
    }
    let server = Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    twl_service::server::announce(addr);
    server.run().map_err(|e| format!("daemon failed: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
