//! `twl-ctl`: the client CLI for `twl-serviced`.
//!
//! ```text
//! twl-ctl [connection flags] ping
//! twl-ctl [connection flags] submit [spec flags] [--wait] [--format table|json]
//! twl-ctl [connection flags] status [JOB_ID] [--format table|json]
//! twl-ctl [connection flags] wait JOB_ID [--format table|json]
//! twl-ctl [connection flags] cancel JOB_ID
//! twl-ctl [connection flags] metrics [--lint]
//! twl-ctl [connection flags] register-worker WORKER_ADDR
//! twl-ctl [connection flags] shutdown
//! twl-ctl run-local [spec flags] [--format table|json]
//! ```
//!
//! Every command works unchanged against a `twl-coordinator` — the
//! fleet daemon speaks the same `twl-wire/v1` protocol.
//! `register-worker` joins a running `twl-serviced` to a coordinator's
//! fleet (a plain daemon answers it with an explanatory error), and
//! `ping` reports the advertised cell-slot count, which for a
//! coordinator is the whole fleet's total.
//!
//! Connection flags: `--addr HOST:PORT`, `--connect-timeout-ms N`
//! (default 10000), and `--timeout-ms N` (per-reply read deadline,
//! default 30000; 0 disables either). The read deadline is lifted
//! automatically while streaming a job with `wait` or `submit --wait`,
//! so long simulations never trip it — it exists to keep the CLI from
//! hanging on a dead daemon, coordinator, or network.
//!
//! Spec flags: `--kind K` (attack_matrix, workload_matrix,
//! degradation_matrix, lifetime_run), `--pages N`, `--endurance N`,
//! `--seed N`, `--sigma F`, `--schemes A,B`, `--workloads A,B` (or its
//! alias `--attacks`), `--benchmarks A,B`, `--max-writes N`,
//! `--retries N` (submit retries under backpressure), or `--spec FILE`
//! to submit a raw JSON spec.
//!
//! `--schemes` takes full spec labels (`TWL_swp[ti=8,pair=rnd:7],BWL`),
//! and a repeatable `--scheme-param k=v` applies one override to every
//! scheme in the list — so a parameter study is one flag away from the
//! default matrix:
//!
//! ```text
//! twl-ctl submit --schemes "TWL_swp[ti=8],TWL_swp[ti=64]" --attacks scan --wait
//! ```
//!
//! The workload axis is specs too: `--workloads` takes any
//! `twl_workloads::WorkloadSpec` labels — attack modes, PARSEC
//! generators, or `TRACE[path=...]` capture replays — and a repeatable
//! `--workload-param k=v` applies one override to every workload on
//! the job's active axis:
//!
//! ```text
//! twl-ctl submit --workloads "TRACE[path=capture.trace,seed=3]" --wait
//! twl-ctl submit --workloads inconsistent --workload-param group=8 --wait
//! ```
//!
//! `run-local` takes the same spec flags but runs every cell in this
//! process (no daemon) and prints the same result document `submit
//! --wait` would — the seam CI uses to diff a serviced sweep against a
//! direct in-process run.
//!
//! The default address is `$TWL_SERVICE_ADDR` or `127.0.0.1:7781`.
//! Progress events go to stderr; results go to stdout — `--format
//! json` emits the result document verbatim for scripting, the default
//! table matches the twl-bench binaries.

use std::process::ExitCode;

use twl_service::job::{encode_result, JobKind, JobReports, JobSpec};
use twl_service::wire::{JobEvent, JobSnapshot};
use twl_service::{decode_result, Client, SubmitOutcome};
use twl_telemetry::json::{int, num, str, Json};

use twl_lifetime::{
    parse_spec_list, DegradationReport, LifetimeReport, SchemeKind, SchemeSpec, SimLimits,
};
use twl_pcm::PcmConfig;
use twl_workloads::{parse_workload_list, WorkloadSpec};

const USAGE: &str = "usage: twl-ctl [--addr HOST:PORT] [--connect-timeout-ms N] [--timeout-ms N] \
<ping|submit|status|wait|cancel|metrics|register-worker|shutdown|run-local> [...]
run `twl-ctl` with no command for the full flag list";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
}

fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "table" => Ok(Format::Table),
        "json" => Ok(Format::Json),
        other => Err(format!("unknown format `{other}` (expected table or json)")),
    }
}

struct SpecFlags {
    kind: JobKind,
    pages: u64,
    endurance: u64,
    seed: u64,
    sigma: Option<f64>,
    schemes: Vec<SchemeSpec>,
    attacks: Vec<WorkloadSpec>,
    benchmarks: Vec<WorkloadSpec>,
    max_writes: Option<u64>,
    spec_file: Option<String>,
    scheme_params: Vec<(String, String)>,
    workload_params: Vec<(String, String)>,
}

impl Default for SpecFlags {
    fn default() -> Self {
        Self {
            kind: JobKind::AttackMatrix,
            pages: 4096,
            endurance: 50_000,
            seed: 42,
            sigma: None,
            schemes: SchemeKind::FIG6.iter().map(|&k| k.into()).collect(),
            attacks: twl_attacks::AttackKind::ALL
                .map(WorkloadSpec::from)
                .to_vec(),
            benchmarks: twl_workloads::ParsecBenchmark::ALL
                .map(WorkloadSpec::from)
                .to_vec(),
            max_writes: None,
            spec_file: None,
            scheme_params: Vec::new(),
            workload_params: Vec::new(),
        }
    }
}

impl SpecFlags {
    /// Consumes one spec flag (with its value drawn from `value`);
    /// returns `Ok(false)` if `flag` is not a spec flag.
    fn consume(
        &mut self,
        flag: &str,
        value: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        match flag {
            "--kind" => self.kind = JobKind::parse(&value("--kind")?)?,
            "--pages" => {
                self.pages = value("--pages")?
                    .parse()
                    .map_err(|e| format!("bad --pages: {e}"))?;
            }
            "--endurance" => {
                self.endurance = value("--endurance")?
                    .parse()
                    .map_err(|e| format!("bad --endurance: {e}"))?;
            }
            "--seed" => {
                self.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--sigma" => {
                self.sigma = Some(
                    value("--sigma")?
                        .parse()
                        .map_err(|e| format!("bad --sigma: {e}"))?,
                );
            }
            "--schemes" => self.schemes = parse_spec_list(&value("--schemes")?)?,
            "--scheme-param" => {
                let kv = value("--scheme-param")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--scheme-param `{kv}` is not key=value"))?;
                self.scheme_params
                    .push((k.trim().to_owned(), v.trim().to_owned()));
            }
            "--workloads" | "--attacks" => {
                self.attacks = parse_workload_list(&value(flag)?)?;
            }
            "--workload-param" => {
                let kv = value("--workload-param")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--workload-param `{kv}` is not key=value"))?;
                self.workload_params
                    .push((k.trim().to_owned(), v.trim().to_owned()));
            }
            "--benchmarks" => {
                self.benchmarks = parse_workload_list(&value("--benchmarks")?)?;
            }
            "--max-writes" => {
                self.max_writes = Some(
                    value("--max-writes")?
                        .parse()
                        .map_err(|e| format!("bad --max-writes: {e}"))?,
                );
            }
            "--spec" => self.spec_file = Some(value("--spec")?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn build(mut self) -> Result<JobSpec, String> {
        if let Some(path) = &self.spec_file {
            if !self.scheme_params.is_empty() {
                return Err("--scheme-param does not combine with --spec (put the overrides in the spec file)".into());
            }
            if !self.workload_params.is_empty() {
                return Err("--workload-param does not combine with --spec (put the overrides in the spec file)".into());
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec file {path}: {e}"))?;
            let spec = JobSpec::from_json(&Json::parse(&text)?)?;
            spec.validate()?;
            return Ok(spec);
        }
        for scheme in &mut self.schemes {
            for (key, value) in &self.scheme_params {
                scheme
                    .set_param(key, value)
                    .map_err(|e| format!("bad --scheme-param for {}: {e}", scheme.kind))?;
            }
            scheme.validate().map_err(|e| e.to_string())?;
            *scheme = scheme.canonical();
        }
        // Workload overrides apply to the axis the job kind sweeps, so
        // an attack matrix's defaults-filled `benchmarks` list never
        // rejects an attack-only key (and vice versa).
        let axis = if self.kind == JobKind::WorkloadMatrix {
            &mut self.benchmarks
        } else {
            &mut self.attacks
        };
        for workload in axis.iter_mut() {
            for (key, value) in &self.workload_params {
                workload
                    .set_param(key, value)
                    .map_err(|e| format!("bad --workload-param for {}: {e}", workload.kind))?;
            }
            workload.validate().map_err(|e| e.to_string())?;
            *workload = workload.clone().canonical();
        }
        let mut builder = PcmConfig::builder();
        builder
            .pages(self.pages)
            .mean_endurance(self.endurance)
            .seed(self.seed);
        if let Some(sigma) = self.sigma {
            builder.sigma_fraction(sigma);
        }
        let pcm = builder.build().map_err(|e| e.to_string())?;
        let limits = self
            .max_writes
            .map_or_else(SimLimits::default, |n| SimLimits {
                max_logical_writes: n,
            });
        let spec = JobSpec {
            kind: self.kind,
            pcm,
            limits,
            schemes: self.schemes,
            attacks: self.attacks,
            benchmarks: self.benchmarks,
            fault: None,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn addr_default() -> String {
    std::env::var("TWL_SERVICE_ADDR").unwrap_or_else(|_| "127.0.0.1:7781".to_owned())
}

fn print_event(event: &JobEvent) {
    match event {
        JobEvent::Queued => eprintln!("job queued"),
        JobEvent::Started => eprintln!("job started"),
        JobEvent::CellDone {
            cell,
            total,
            scheme,
            workload,
            rate_wps,
            eta_ms,
            ..
        } => {
            #[allow(clippy::cast_precision_loss)]
            let progress = match (rate_wps, eta_ms) {
                (Some(r), Some(e)) => format!(" [{r:.0} wr/s, eta {:.1}s]", *e as f64 / 1e3),
                (Some(r), None) => format!(" [{r:.0} wr/s]"),
                _ => String::new(),
            };
            eprintln!(
                "cell {}/{total} done: {scheme} under {workload}{progress}",
                cell + 1
            );
        }
        JobEvent::Checkpointed { cells_done } => {
            eprintln!("checkpointed ({cells_done} cells persisted)");
        }
        JobEvent::Finished { status } => eprintln!("job finished: {status}"),
    }
}

fn lifetime_rows(reports: &[LifetimeReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.workload.clone(),
                r.logical_writes.to_string(),
                r.device_writes.to_string(),
                format!("{:.4}", r.capacity_fraction),
                format!("{:.3}", r.years),
                format!("{:.4}", r.swap_per_write),
                format!("{:.4}", r.wear_gini),
            ]
        })
        .collect()
}

fn degradation_rows(reports: &[DegradationReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.workload.clone(),
                r.device_writes.to_string(),
                r.corrected_groups.to_string(),
                r.retired_pages.to_string(),
                format!("{:?}", r.end),
                format!("{:.3}", r.years),
            ]
        })
        .collect()
}

fn print_result(result: &Json, format: Format) -> Result<(), String> {
    match format {
        Format::Json => {
            println!("{}", result.to_compact());
            Ok(())
        }
        Format::Table => match decode_result(result)? {
            JobReports::Lifetime(reports) => {
                print!(
                    "{}",
                    twl_bench::format_table(
                        &[
                            "scheme",
                            "workload",
                            "logical_wr",
                            "device_wr",
                            "capacity",
                            "years",
                            "swap/wr",
                            "gini"
                        ],
                        &lifetime_rows(&reports),
                    )
                );
                Ok(())
            }
            JobReports::Degradation(reports) => {
                print!(
                    "{}",
                    twl_bench::format_table(
                        &[
                            "scheme",
                            "workload",
                            "device_wr",
                            "corrected",
                            "retired",
                            "end",
                            "years"
                        ],
                        &degradation_rows(&reports),
                    )
                );
                Ok(())
            }
        },
    }
}

fn print_status(jobs: &[JobSnapshot], format: Format) {
    match format {
        Format::Json => {
            let arr = Json::Arr(
                jobs.iter()
                    .map(|j| {
                        let mut obj = Json::obj([
                            ("job_id", int(j.job_id)),
                            ("kind", str(&j.kind)),
                            ("status", str(&j.status)),
                            ("cells_done", int(j.cells_done)),
                            ("cells_total", int(j.cells_total)),
                            ("error", j.error.as_deref().map_or(Json::Null, str)),
                        ]);
                        if let Json::Obj(map) = &mut obj {
                            if let Some(w) = j.writes_done {
                                map.insert("writes_done".to_owned(), int(w));
                            }
                            if let Some(r) = j.rate_wps {
                                map.insert("rate_wps".to_owned(), num(r));
                            }
                            if let Some(e) = j.eta_ms {
                                map.insert("eta_ms".to_owned(), int(e));
                            }
                        }
                        obj
                    })
                    .collect(),
            );
            println!("{}", arr.to_compact());
        }
        Format::Table => {
            #[allow(clippy::cast_precision_loss)]
            let rows: Vec<Vec<String>> = jobs
                .iter()
                .map(|j| {
                    vec![
                        j.job_id.to_string(),
                        j.kind.clone(),
                        j.status.clone(),
                        format!("{}/{}", j.cells_done, j.cells_total),
                        j.rate_wps.map_or_else(String::new, |r| format!("{r:.0}")),
                        j.eta_ms
                            .map_or_else(String::new, |e| format!("{:.1}s", e as f64 / 1e3)),
                        j.error.clone().unwrap_or_default(),
                    ]
                })
                .collect();
            print!(
                "{}",
                twl_bench::format_table(
                    &["job", "kind", "status", "cells", "wr/s", "eta", "error"],
                    &rows
                )
            );
        }
    }
}

/// Turns a `--*-timeout-ms` value into a deadline; `0` disables it.
fn parse_timeout(flag: &str, value: &str) -> Result<Option<std::time::Duration>, String> {
    let ms: u64 = value.parse().map_err(|e| format!("bad {flag}: {e}"))?;
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

#[allow(clippy::too_many_lines)]
fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = addr_default();
    let mut connect_timeout = Some(std::time::Duration::from_millis(10_000));
    let mut read_timeout = Some(std::time::Duration::from_millis(30_000));
    let mut rest = args;
    while let [flag, value, tail @ ..] = rest {
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--connect-timeout-ms" => {
                connect_timeout = parse_timeout("--connect-timeout-ms", value)?;
            }
            "--timeout-ms" => read_timeout = parse_timeout("--timeout-ms", value)?,
            _ => break,
        }
        rest = tail;
    }
    let connect = || {
        Client::connect_with_timeouts(&addr, connect_timeout, read_timeout).map_err(|e| {
            format!("cannot reach daemon at {addr}: {e} (connection flags tune the deadlines)")
        })
    };
    let [command, command_args @ ..] = rest else {
        return Err(USAGE.to_owned());
    };

    match command.as_str() {
        "ping" => {
            let client = connect()?;
            match client.slots() {
                Some(slots) => println!(
                    "ok: daemon at {addr} speaks {} ({slots} cell slots)",
                    twl_service::PROTOCOL
                ),
                None => println!("ok: daemon at {addr} speaks {}", twl_service::PROTOCOL),
            }
            Ok(ExitCode::SUCCESS)
        }
        "register-worker" => {
            let [worker] = command_args else {
                return Err("register-worker needs exactly one WORKER_ADDR".to_owned());
            };
            let mut client = connect()?;
            let (echoed, slots) = client.register_worker(worker).map_err(|e| e.to_string())?;
            println!("registered worker {echoed} ({slots} slots)");
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            let mut flags = SpecFlags::default();
            let mut wait = false;
            let mut format = Format::Table;
            let mut retries = 1u32;
            let mut iter = command_args.iter();
            while let Some(flag) = iter.next() {
                let mut value = |name: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--retries" => {
                        retries = value("--retries")?
                            .parse()
                            .map_err(|e| format!("bad --retries: {e}"))?;
                    }
                    "--wait" => wait = true,
                    "--format" => format = parse_format(&value("--format")?)?,
                    other => {
                        if !flags.consume(other, &mut value)? {
                            return Err(format!("unknown submit flag {other}"));
                        }
                    }
                }
            }
            let spec = flags.build()?;
            let mut client = connect()?;
            if retries > 1 {
                let job_id = client
                    .submit_with_retry(&spec, retries)
                    .map_err(|e| e.to_string())?;
                eprintln!("submitted job {job_id}");
                if wait {
                    client.set_read_timeout(None).map_err(|e| e.to_string())?;
                    let result = client
                        .wait(job_id, print_event)
                        .map_err(|e| e.to_string())?;
                    print_result(&result, format)?;
                } else {
                    println!("{job_id}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            match client.submit(&spec).map_err(|e| e.to_string())? {
                SubmitOutcome::Accepted(job_id) => {
                    eprintln!("submitted job {job_id}");
                    if wait {
                        client.set_read_timeout(None).map_err(|e| e.to_string())?;
                        let result = client
                            .wait(job_id, print_event)
                            .map_err(|e| e.to_string())?;
                        print_result(&result, format)?;
                    } else {
                        println!("{job_id}");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    eprintln!("rejected: {reason} (retry after {retry_after_ms} ms)");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "status" => {
            let mut job_id = None;
            let mut format = Format::Table;
            let mut iter = command_args.iter();
            while let Some(arg) = iter.next() {
                if arg == "--format" {
                    let value = iter.next().ok_or("--format needs a value")?;
                    format = parse_format(value)?;
                } else {
                    job_id = Some(
                        arg.parse()
                            .map_err(|e| format!("bad job id `{arg}`: {e}"))?,
                    );
                }
            }
            let mut client = connect()?;
            let jobs = client.status(job_id).map_err(|e| e.to_string())?;
            print_status(&jobs, format);
            Ok(ExitCode::SUCCESS)
        }
        "wait" => {
            let mut job_id = None;
            let mut format = Format::Table;
            let mut iter = command_args.iter();
            while let Some(arg) = iter.next() {
                if arg == "--format" {
                    let value = iter.next().ok_or("--format needs a value")?;
                    format = parse_format(value)?;
                } else {
                    job_id = Some(
                        arg.parse()
                            .map_err(|e| format!("bad job id `{arg}`: {e}"))?,
                    );
                }
            }
            let job_id = job_id.ok_or("wait needs a JOB_ID")?;
            let mut client = connect()?;
            client.set_read_timeout(None).map_err(|e| e.to_string())?;
            let result = client
                .wait(job_id, print_event)
                .map_err(|e| e.to_string())?;
            print_result(&result, format)?;
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            let [job_id] = command_args else {
                return Err("cancel needs exactly one JOB_ID".to_owned());
            };
            let job_id = job_id
                .parse()
                .map_err(|e| format!("bad job id `{job_id}`: {e}"))?;
            let mut client = connect()?;
            let cancelled = client.cancel(job_id).map_err(|e| e.to_string())?;
            println!(
                "{}",
                if cancelled {
                    "cancelled"
                } else {
                    "already finished"
                }
            );
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let mut lint = false;
            for arg in command_args {
                match arg.as_str() {
                    "--lint" => lint = true,
                    other => return Err(format!("unknown metrics flag {other}")),
                }
            }
            let mut client = connect()?;
            let text = client.metrics().map_err(|e| e.to_string())?;
            if lint {
                let samples = twl_telemetry::prom::parse_exposition(&text)
                    .map_err(|e| format!("exposition lint failed: {e}"))?;
                eprintln!("lint ok: {} samples", samples.len());
            }
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            let mut client = connect()?;
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon draining");
            Ok(ExitCode::SUCCESS)
        }
        "run-local" => {
            let mut flags = SpecFlags::default();
            let mut format = Format::Table;
            let mut iter = command_args.iter();
            while let Some(flag) = iter.next() {
                let mut value = |name: &str| {
                    iter.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--format" => format = parse_format(&value("--format")?)?,
                    other => {
                        if !flags.consume(other, &mut value)? {
                            return Err(format!("unknown run-local flag {other}"));
                        }
                    }
                }
            }
            let spec = flags.build()?;
            let total = spec.cell_count();
            let reports: Vec<Json> = (0..total)
                .map(|index| {
                    let (scheme, workload) = spec.describe_cell(index);
                    let (report, _) = spec.run_cell(index);
                    eprintln!("cell {}/{total} done: {scheme} under {workload}", index + 1);
                    report
                })
                .collect();
            let result = encode_result(spec.kind, reports);
            print_result(&result, format)?;
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
