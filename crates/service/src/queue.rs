//! The bounded job queue and job registry.
//!
//! One `Mutex<State>` guards everything; two condvars split the
//! wake-ups: `takers` wakes workers waiting for a job, `watchers` wakes
//! stream connections waiting for a job's next event. Backpressure is
//! explicit — a submit against a full queue is *rejected* with a
//! retry-after hint rather than blocking the connection, so a client
//! always learns the queue state in bounded time.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use twl_telemetry::json::Json;
use twl_telemetry::{counter, gauge};

use crate::job::JobSpec;
use crate::wire::{JobEvent, JobSnapshot};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing cells.
    Running,
    /// All cells finished; the result is available.
    Completed,
    /// A cell panicked (e.g. incompatible geometry) or execution hit an
    /// internal error.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// The wire/checkpoint label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }

    /// Parses a wire/checkpoint label.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown label.
    pub fn parse(label: &str) -> Result<Self, String> {
        match label {
            "queued" => Ok(Self::Queued),
            "running" => Ok(Self::Running),
            "completed" => Ok(Self::Completed),
            "failed" => Ok(Self::Failed),
            "cancelled" => Ok(Self::Cancelled),
            other => Err(format!("unknown job status `{other}`")),
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Completed | Self::Failed | Self::Cancelled)
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRejection {
    /// Human-readable reason (`queue full`, `daemon is shutting down`).
    pub reason: String,
    /// Suggested wait before retrying.
    pub retry_after_ms: u64,
}

/// Everything a worker needs to execute one claimed job.
#[derive(Debug)]
pub struct ClaimedJob {
    /// The job id.
    pub job_id: u64,
    /// The spec to run.
    pub spec: JobSpec,
    /// Cells already finished (non-empty when resuming from a
    /// checkpoint).
    pub completed_cells: BTreeMap<u64, Json>,
    /// Set by [`JobQueue::cancel`]; the executor checks it between
    /// cells.
    pub cancel: Arc<AtomicBool>,
    /// How long the job sat queued before this claim (for the
    /// queue-wait span and histogram; restored jobs count from the
    /// daemon restart, not the original submit).
    pub queued_for: Duration,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    status: JobStatus,
    cells_total: u64,
    completed_cells: BTreeMap<u64, Json>,
    result: Option<Json>,
    error: Option<String>,
    events: Vec<JobEvent>,
    cancel: Arc<AtomicBool>,
    submitted_at: Instant,
    started_at: Option<Instant>,
    last_cell_at: Option<Instant>,
    /// Cells finished by *this* run (resumed checkpoint cells excluded),
    /// the denominator the ETA extrapolates from.
    cells_run: u64,
    writes_done: u64,
    rate_wps: f64,
}

impl JobEntry {
    fn new(spec: JobSpec, cells_total: u64) -> Self {
        Self {
            spec,
            status: JobStatus::Queued,
            cells_total,
            completed_cells: BTreeMap::new(),
            result: None,
            error: None,
            events: vec![JobEvent::Queued],
            cancel: Arc::new(AtomicBool::new(false)),
            submitted_at: Instant::now(),
            started_at: None,
            last_cell_at: None,
            cells_run: 0,
            writes_done: 0,
            rate_wps: 0.0,
        }
    }

    /// The optional progress triple (writes, EWMA rate, ETA) for
    /// snapshots and `CellDone` events. All three stay `None` until a
    /// cell finishes, so pre-progress frames keep their old shape; the
    /// ETA additionally disappears once the job is terminal.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    fn progress(&self) -> (Option<u64>, Option<f64>, Option<u64>) {
        if self.cells_run == 0 {
            return (None, None, None);
        }
        let writes = Some(self.writes_done);
        // One decimal is plenty for a throughput readout and keeps the
        // JSON encoding short and stable.
        let rate = Some((self.rate_wps * 10.0).round() / 10.0);
        let eta = match (self.status, self.started_at) {
            (JobStatus::Running, Some(started)) => {
                let done = self.completed_cells.len() as u64;
                let remaining = self.cells_total.saturating_sub(done);
                if remaining == 0 {
                    None
                } else {
                    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                    let per_cell_ms = elapsed_ms / self.cells_run as f64;
                    Some((per_cell_ms * remaining as f64).round() as u64)
                }
            }
            _ => None,
        };
        (writes, rate, eta)
    }

    fn snapshot(&self, job_id: u64) -> JobSnapshot {
        let (writes_done, rate_wps, eta_ms) = self.progress();
        JobSnapshot {
            job_id,
            kind: self.spec.kind.label().to_owned(),
            status: self.status.label().to_owned(),
            cells_done: self.completed_cells.len() as u64,
            cells_total: self.cells_total,
            writes_done,
            rate_wps,
            eta_ms,
            error: self.error.clone(),
        }
    }
}

#[derive(Debug)]
struct State {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    shutting_down: bool,
}

/// The bounded job queue shared by connections and workers.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<State>,
    takers: Condvar,
    watchers: Condvar,
    capacity: usize,
    retry_after_ms: u64,
}

/// Terminal information handed to a stream once a job finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct Finished {
    /// The terminal status.
    pub status: JobStatus,
    /// The result document, if the job completed.
    pub result: Option<Json>,
    /// The failure message, if it did not.
    pub error: Option<String>,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` pending jobs.
    #[must_use]
    pub fn new(capacity: usize, retry_after_ms: u64) -> Self {
        Self {
            state: Mutex::new(State {
                next_id: 1,
                pending: VecDeque::new(),
                jobs: BTreeMap::new(),
                shutting_down: false,
            }),
            takers: Condvar::new(),
            watchers: Condvar::new(),
            capacity: capacity.max(1),
            retry_after_ms,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn publish_depth(state: &State) {
        let depth = i64::try_from(state.pending.len()).unwrap_or(i64::MAX);
        gauge!("twl.service.queue.depth").set(depth);
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// Rejects (without blocking) when the queue is full or the daemon
    /// is draining; the rejection carries a retry-after hint.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitRejection> {
        let mut state = self.lock();
        if state.shutting_down {
            counter!("twl.service.jobs.rejected").inc();
            return Err(SubmitRejection {
                reason: "daemon is shutting down".to_owned(),
                retry_after_ms: self.retry_after_ms,
            });
        }
        if state.pending.len() >= self.capacity {
            counter!("twl.service.jobs.rejected").inc();
            return Err(SubmitRejection {
                reason: format!("queue full ({} pending jobs)", state.pending.len()),
                retry_after_ms: self.retry_after_ms,
            });
        }
        let job_id = state.next_id;
        state.next_id += 1;
        let cells_total = spec.cell_count() as u64;
        state.jobs.insert(job_id, JobEntry::new(spec, cells_total));
        state.pending.push_back(job_id);
        counter!("twl.service.jobs.queued").inc();
        Self::publish_depth(&state);
        drop(state);
        self.takers.notify_one();
        self.watchers.notify_all();
        Ok(job_id)
    }

    /// Re-registers a job from a checkpoint at daemon start. Non-terminal
    /// jobs (queued or interrupted mid-run) are re-enqueued; terminal
    /// ones are registered so `status`/`stream` still answer for them.
    pub fn restore(
        &self,
        job_id: u64,
        spec: JobSpec,
        status: JobStatus,
        completed_cells: BTreeMap<u64, Json>,
        result: Option<Json>,
        error: Option<String>,
    ) {
        let mut state = self.lock();
        state.next_id = state.next_id.max(job_id + 1);
        let (status, requeue) = if status.is_terminal() {
            (status, false)
        } else {
            // A job that was `running` when the daemon died restarts as
            // queued; its completed cells are kept so only missing ones
            // re-run.
            (JobStatus::Queued, true)
        };
        let cells_total = spec.cell_count() as u64;
        let mut entry = JobEntry::new(spec, cells_total);
        entry.status = status;
        entry.completed_cells = completed_cells;
        entry.result = result;
        entry.error = error;
        if status.is_terminal() {
            entry.events.push(JobEvent::Finished {
                status: status.label().to_owned(),
            });
        }
        state.jobs.insert(job_id, entry);
        if requeue {
            state.pending.push_back(job_id);
            counter!("twl.service.jobs.queued").inc();
        }
        Self::publish_depth(&state);
        drop(state);
        self.takers.notify_one();
    }

    /// Blocks until a job is available and claims it, or returns `None`
    /// once the daemon is shutting down (queued jobs stay persisted; a
    /// worker never starts new work while draining).
    pub fn claim(&self) -> Option<ClaimedJob> {
        let mut state = self.lock();
        loop {
            if state.shutting_down {
                return None;
            }
            if let Some(job_id) = state.pending.pop_front() {
                Self::publish_depth(&state);
                let entry = state.jobs.get_mut(&job_id).expect("pending job exists");
                return Some(ClaimedJob {
                    job_id,
                    spec: entry.spec.clone(),
                    completed_cells: entry.completed_cells.clone(),
                    cancel: Arc::clone(&entry.cancel),
                    queued_for: entry.submitted_at.elapsed(),
                });
            }
            state = self
                .takers
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks a claimed job running, starts its progress clock, and
    /// publishes the `Started` event.
    pub fn mark_running(&self, job_id: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job_id) {
            entry.status = JobStatus::Running;
            entry.started_at = Some(Instant::now());
            entry.last_cell_at = None;
            entry.cells_run = 0;
            entry.events.push(JobEvent::Started);
        }
        drop(state);
        self.watchers.notify_all();
    }

    /// Records one finished cell (with the device writes it performed),
    /// folds the writes into the job's EWMA throughput, and publishes a
    /// progress-carrying `CellDone` event.
    #[allow(clippy::cast_precision_loss)]
    pub fn record_cell(
        &self,
        job_id: u64,
        cell: u64,
        report: Json,
        scheme: String,
        workload: String,
        device_writes: u64,
    ) {
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job_id) {
            let now = Instant::now();
            entry.completed_cells.insert(cell, report);
            entry.writes_done = entry.writes_done.saturating_add(device_writes);
            // Instantaneous rate over this cell's interval, smoothed
            // exponentially so one slow cell doesn't whipsaw the ETA.
            let since = entry.last_cell_at.or(entry.started_at).unwrap_or(now);
            let dt = now.duration_since(since).as_secs_f64().max(1e-6);
            let inst = device_writes as f64 / dt;
            entry.rate_wps = if entry.cells_run == 0 {
                inst
            } else {
                0.7 * entry.rate_wps + 0.3 * inst
            };
            entry.last_cell_at = Some(now);
            entry.cells_run += 1;
            let total = entry.cells_total;
            let (writes_done, rate_wps, eta_ms) = entry.progress();
            entry.events.push(JobEvent::CellDone {
                cell,
                total,
                scheme,
                workload,
                writes_done,
                rate_wps,
                eta_ms,
            });
        }
        drop(state);
        self.watchers.notify_all();
    }

    /// Publishes a `Checkpointed` event after the executor persisted
    /// progress.
    pub fn record_checkpoint(&self, job_id: u64, cells_done: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job_id) {
            entry.events.push(JobEvent::Checkpointed { cells_done });
        }
        drop(state);
        self.watchers.notify_all();
    }

    /// Moves a job to a terminal state and publishes `Finished`.
    ///
    /// # Panics
    ///
    /// Panics if `status` is not terminal.
    pub fn finish(
        &self,
        job_id: u64,
        status: JobStatus,
        result: Option<Json>,
        error: Option<String>,
    ) {
        assert!(status.is_terminal(), "finish needs a terminal status");
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job_id) {
            entry.status = status;
            entry.result = result;
            entry.error = error;
            entry.events.push(JobEvent::Finished {
                status: status.label().to_owned(),
            });
        }
        drop(state);
        match status {
            JobStatus::Completed => counter!("twl.service.jobs.completed").inc(),
            JobStatus::Failed => counter!("twl.service.jobs.failed").inc(),
            JobStatus::Cancelled => counter!("twl.service.jobs.cancelled").inc(),
            JobStatus::Queued | JobStatus::Running => unreachable!("terminal asserted above"),
        }
        self.watchers.notify_all();
    }

    /// Requests cancellation. Queued jobs are finished as cancelled on
    /// the spot; running jobs get their flag set and stop at the next
    /// cell boundary. Returns `None` for an unknown job and
    /// `Some(false)` for one already terminal.
    pub fn cancel(&self, job_id: u64) -> Option<bool> {
        let mut state = self.lock();
        let entry = state.jobs.get_mut(&job_id)?;
        match entry.status {
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled => Some(false),
            JobStatus::Running => {
                entry.cancel.store(true, Ordering::Relaxed);
                Some(true)
            }
            JobStatus::Queued => {
                entry.cancel.store(true, Ordering::Relaxed);
                entry.status = JobStatus::Cancelled;
                entry.error = Some("job cancelled".to_owned());
                entry.events.push(JobEvent::Finished {
                    status: JobStatus::Cancelled.label().to_owned(),
                });
                state.pending.retain(|&id| id != job_id);
                counter!("twl.service.jobs.cancelled").inc();
                Self::publish_depth(&state);
                drop(state);
                self.watchers.notify_all();
                Some(true)
            }
        }
    }

    /// Snapshots one job (or all jobs, oldest first).
    #[must_use]
    pub fn snapshot(&self, job_id: Option<u64>) -> Vec<JobSnapshot> {
        let state = self.lock();
        match job_id {
            Some(id) => state
                .jobs
                .get(&id)
                .map(|e| vec![e.snapshot(id)])
                .unwrap_or_default(),
            None => state.jobs.iter().map(|(id, e)| e.snapshot(*id)).collect(),
        }
    }

    /// The job's spec and completed cells, for checkpointing a terminal
    /// transition the executor did not drive (queued-job cancellation).
    #[must_use]
    pub fn job_state(
        &self,
        job_id: u64,
    ) -> Option<(JobSpec, JobStatus, Option<Json>, Option<String>)> {
        let state = self.lock();
        state
            .jobs
            .get(&job_id)
            .map(|e| (e.spec.clone(), e.status, e.result.clone(), e.error.clone()))
    }

    /// Blocks until job `job_id` has events past `cursor` or reaches a
    /// terminal state, then returns the new events, the advanced
    /// cursor, and — once the cursor has drained all events of a
    /// terminal job — the terminal information. Returns `None` for an
    /// unknown job.
    #[must_use]
    pub fn next_events(
        &self,
        job_id: u64,
        cursor: usize,
    ) -> Option<(Vec<JobEvent>, usize, Option<Finished>)> {
        let mut state = self.lock();
        loop {
            let entry = state.jobs.get(&job_id)?;
            if entry.events.len() > cursor {
                let events: Vec<JobEvent> = entry.events[cursor..].to_vec();
                let new_cursor = entry.events.len();
                let done = entry.status.is_terminal().then(|| Finished {
                    status: entry.status,
                    result: entry.result.clone(),
                    error: entry.error.clone(),
                });
                return Some((events, new_cursor, done));
            }
            if entry.status.is_terminal() {
                return Some((
                    Vec::new(),
                    cursor,
                    Some(Finished {
                        status: entry.status,
                        result: entry.result.clone(),
                        error: entry.error.clone(),
                    }),
                ));
            }
            state = self
                .watchers
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pending (not yet claimed) jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().pending.len()
    }

    /// Starts the drain: submits are rejected from now on and workers
    /// stop claiming; jobs already running finish normally.
    pub fn begin_shutdown(&self) {
        let mut state = self.lock();
        state.shutting_down = true;
        drop(state);
        self.takers.notify_all();
        self.watchers.notify_all();
    }

    /// Whether the drain has started.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.lock().shutting_down
    }

    /// The retry hint handed to rejected submitters.
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        self.retry_after_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;
    use twl_lifetime::{SchemeKind, SimLimits};
    use twl_pcm::PcmConfig;

    fn spec() -> JobSpec {
        JobSpec {
            kind: crate::job::JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(64, 500, 3),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::Nowl.into()],
            attacks: vec![AttackKind::Repeat.into()],
            benchmarks: vec![],
            fault: None,
        }
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let queue = JobQueue::new(2, 250);
        assert!(queue.submit(spec()).is_ok());
        assert!(queue.submit(spec()).is_ok());
        let rejection = queue.submit(spec()).unwrap_err();
        assert!(rejection.reason.contains("queue full"));
        assert_eq!(rejection.retry_after_ms, 250);
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn claim_drains_fifo_and_finish_publishes_result() {
        let queue = JobQueue::new(8, 100);
        let first = queue.submit(spec()).unwrap();
        let second = queue.submit(spec()).unwrap();
        let claimed = queue.claim().unwrap();
        assert_eq!(claimed.job_id, first);
        queue.mark_running(first);
        queue.finish(first, JobStatus::Completed, Some(Json::Null), None);
        let (_, _, done) = queue.next_events(first, 0).unwrap();
        assert_eq!(done.unwrap().status, JobStatus::Completed);
        assert_eq!(queue.claim().unwrap().job_id, second);
    }

    #[test]
    fn shutdown_rejects_submits_and_stops_claims() {
        let queue = JobQueue::new(8, 100);
        queue.submit(spec()).unwrap();
        queue.begin_shutdown();
        assert!(queue
            .submit(spec())
            .unwrap_err()
            .reason
            .contains("shutting down"));
        // Even with a pending job, claims stop: queued work is persisted,
        // not started, during a drain.
        assert!(queue.claim().is_none());
    }

    #[test]
    fn cancel_dequeues_queued_jobs() {
        let queue = JobQueue::new(8, 100);
        let id = queue.submit(spec()).unwrap();
        assert_eq!(queue.cancel(id), Some(true));
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.cancel(id), Some(false));
        assert_eq!(queue.cancel(999), None);
        let snap = queue.snapshot(Some(id));
        assert_eq!(snap[0].status, "cancelled");
    }

    #[test]
    fn restore_requeues_interrupted_jobs_and_keeps_terminal_ones() {
        let queue = JobQueue::new(8, 100);
        let mut cells = BTreeMap::new();
        cells.insert(0u64, Json::Null);
        queue.restore(5, spec(), JobStatus::Running, cells.clone(), None, None);
        queue.restore(
            6,
            spec(),
            JobStatus::Completed,
            cells,
            Some(Json::Null),
            None,
        );
        // Interrupted job 5 is queued again with its progress intact.
        let claimed = queue.claim().unwrap();
        assert_eq!(claimed.job_id, 5);
        assert_eq!(claimed.completed_cells.len(), 1);
        // Terminal job 6 is queryable but not runnable.
        assert_eq!(queue.snapshot(Some(6))[0].status, "completed");
        assert_eq!(queue.depth(), 0);
        // New ids keep counting past the restored ones.
        assert_eq!(queue.submit(spec()).unwrap(), 7);
    }

    #[test]
    fn progress_appears_once_cells_complete() {
        let queue = JobQueue::new(8, 100);
        let mut two_cells = spec();
        two_cells.attacks = vec![AttackKind::Repeat.into(), AttackKind::Scan.into()];
        let id = queue.submit(two_cells).unwrap();

        // Queued: no progress fields yet (old snapshot shape).
        let snap = &queue.snapshot(Some(id))[0];
        assert_eq!(snap.writes_done, None);
        assert_eq!(snap.rate_wps, None);
        assert_eq!(snap.eta_ms, None);

        let claimed = queue.claim().unwrap();
        assert!(claimed.queued_for.as_nanos() > 0);
        queue.mark_running(id);
        queue.record_cell(id, 0, Json::Null, "NOWL".into(), "repeat".into(), 5_000);

        // Running with 1 of 2 cells done: all three fields live.
        let snap = &queue.snapshot(Some(id))[0];
        assert_eq!(snap.writes_done, Some(5_000));
        assert!(snap.rate_wps.unwrap() > 0.0);
        assert!(snap.eta_ms.is_some(), "one cell remains, so an ETA exists");
        let JobEvent::CellDone {
            writes_done,
            rate_wps,
            ..
        } = queue.next_events(id, 2).unwrap().0[0].clone()
        else {
            panic!("expected the CellDone event");
        };
        assert_eq!(writes_done, Some(5_000));
        assert!(rate_wps.unwrap() > 0.0);

        queue.record_cell(id, 1, Json::Null, "NOWL".into(), "scan".into(), 7_000);
        queue.finish(id, JobStatus::Completed, Some(Json::Null), None);

        // Terminal: the total sticks, the ETA is gone.
        let snap = &queue.snapshot(Some(id))[0];
        assert_eq!(snap.writes_done, Some(12_000));
        assert_eq!(snap.eta_ms, None);
    }

    #[test]
    fn streams_see_events_in_order_across_threads() {
        let queue = Arc::new(JobQueue::new(8, 100));
        let id = queue.submit(spec()).unwrap();
        let watcher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut seen = Vec::new();
                loop {
                    let (events, next, done) = queue.next_events(id, cursor).unwrap();
                    seen.extend(events);
                    cursor = next;
                    if done.is_some() {
                        return seen;
                    }
                }
            })
        };
        queue.mark_running(id);
        queue.record_cell(id, 0, Json::Null, "NOWL".into(), "repeat".into(), 1_000);
        queue.finish(id, JobStatus::Completed, Some(Json::Null), None);
        let seen = watcher.join().unwrap();
        assert_eq!(seen[0], JobEvent::Queued);
        assert_eq!(seen[1], JobEvent::Started);
        assert!(matches!(seen[2], JobEvent::CellDone { cell: 0, .. }));
        assert!(matches!(seen.last(), Some(JobEvent::Finished { .. })));
    }
}
