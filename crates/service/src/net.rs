//! Connection-robustness helpers shared by every TCP daemon in the
//! workspace (`twl-serviced`, `twl-coordinator`, `twl-blockd`).
//!
//! Two hazards recur in any accept-loop server, whatever its wire
//! format:
//!
//! * **Half-open peers** — a client that stalls mid-request (or never
//!   sends one) would pin a connection thread forever. The fix is a
//!   per-connection read deadline: [`apply_idle_timeout`] arms it and
//!   [`is_idle_timeout`] recognizes its expiry, which surfaces as
//!   `WouldBlock` or `TimedOut` depending on the platform.
//! * **Hostile length prefixes** — a frame header declaring a huge
//!   payload must be refused *before* the payload buffer is allocated,
//!   or a single bogus header forces an arbitrary allocation.
//!   [`guard_frame_len`] is that check, shared by the `twl-wire/v1`
//!   JSON framing and the NBD request reader.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// The idle deadline `ms` milliseconds buys; `None` when disabled (0).
#[must_use]
pub fn idle_deadline(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Arms a connection's read deadline, best-effort: a socket that
/// refuses the option simply keeps the OS default, which degrades
/// reaping, not serving.
pub fn apply_idle_timeout(stream: &TcpStream, idle: Option<Duration>) {
    if let Some(idle) = idle {
        let _ = stream.set_read_timeout(Some(idle));
    }
}

/// Whether an I/O error is a read-timeout expiry (the idle-connection
/// deadline) rather than a real transport failure.
#[must_use]
pub fn is_idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Validates a frame's declared payload length against a protocol
/// ceiling, *before* any allocation. Returns the length as a `usize`
/// on success and the offending length on refusal.
///
/// # Errors
///
/// Returns `Err(len)` when the declared length exceeds `max`.
pub fn guard_frame_len(len: u64, max: usize) -> Result<usize, usize> {
    let as_usize = usize::try_from(len).map_err(|_| usize::MAX)?;
    if as_usize > max {
        return Err(as_usize);
    }
    Ok(as_usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_none_when_disabled() {
        assert_eq!(idle_deadline(0), None);
        assert_eq!(idle_deadline(250), Some(Duration::from_millis(250)));
    }

    #[test]
    fn timeout_kinds_are_recognized() {
        assert!(is_idle_timeout(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_idle_timeout(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(!is_idle_timeout(&io::Error::from(
            io::ErrorKind::ConnectionReset
        )));
    }

    #[test]
    fn frame_guard_accepts_up_to_the_ceiling() {
        assert_eq!(guard_frame_len(0, 16), Ok(0));
        assert_eq!(guard_frame_len(16, 16), Ok(16));
        assert_eq!(guard_frame_len(17, 16), Err(17));
        assert_eq!(guard_frame_len(u64::MAX, 16), Err(usize::MAX));
    }
}
