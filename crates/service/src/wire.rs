//! The `twl-wire/v1` request/response schema.
//!
//! Frames are the length-prefixed JSON documents of [`crate::framing`];
//! this module gives them types. Every frame is an object with a
//! `"type"` discriminant. The protocol is versioned through the
//! `hello` handshake: a client opens with
//! `{"type":"hello","proto":"twl-wire/v1"}` and the daemon refuses
//! mismatched versions before any other traffic.

use twl_telemetry::json::{int, num, str, Json};

use crate::job::{req_str, req_u64, JobSpec};

/// Inserts `key` only when the value is present — optional fields are
/// *omitted*, not nulled, so documents written before the field existed
/// re-encode byte-identically.
fn opt_insert(obj: &mut Json, key: &str, value: Option<Json>) {
    if let (Json::Obj(map), Some(v)) = (obj, value) {
        map.insert(key.to_owned(), v);
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer `{key}`")),
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => f
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric `{key}`")),
    }
}

/// The protocol version this crate speaks.
pub const PROTOCOL: &str = "twl-wire/v1";

/// A client-to-daemon frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first frame on a connection.
    Hello {
        /// The protocol version the client speaks.
        proto: String,
    },
    /// Enqueue a job.
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Snapshot one job (or all jobs) without blocking.
    Status {
        /// Restrict to one job; `None` lists everything.
        job_id: Option<u64>,
    },
    /// Follow one job's progress events until it finishes.
    Stream {
        /// The job to follow.
        job_id: u64,
    },
    /// Ask a queued or running job to stop.
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Fetch a Prometheus text-format snapshot of the daemon's metrics
    /// registry and per-job progress gauges.
    Metrics,
    /// Execute exactly one matrix cell of `spec` and return its encoded
    /// report — the fleet coordinator's worker interface. A plain
    /// daemon serves it inline; saturation comes back as `rejected`.
    RunCell {
        /// The job the cell belongs to.
        spec: JobSpec,
        /// The cell index in matrix order.
        cell: u64,
    },
    /// Add a worker daemon to the fleet (coordinator only). A plain
    /// `twl-serviced` answers with an `error` frame and keeps serving.
    RegisterWorker {
        /// The worker's `host:port`.
        addr: String,
    },
    /// Drain in-flight jobs, persist queued ones, and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as a frame body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Self::Hello { proto } => Json::obj([("type", str("hello")), ("proto", str(proto))]),
            Self::Submit { spec } => Json::obj([("type", str("submit")), ("spec", spec.to_json())]),
            Self::Status { job_id } => match job_id {
                Some(id) => Json::obj([("type", str("status")), ("job_id", int(*id))]),
                None => Json::obj([("type", str("status"))]),
            },
            Self::Stream { job_id } => {
                Json::obj([("type", str("stream")), ("job_id", int(*job_id))])
            }
            Self::Cancel { job_id } => {
                Json::obj([("type", str("cancel")), ("job_id", int(*job_id))])
            }
            Self::Metrics => Json::obj([("type", str("metrics"))]),
            Self::RunCell { spec, cell } => Json::obj([
                ("type", str("run_cell")),
                ("spec", spec.to_json()),
                ("cell", int(*cell)),
            ]),
            Self::RegisterWorker { addr } => {
                Json::obj([("type", str("register_worker")), ("addr", str(addr))])
            }
            Self::Shutdown => Json::obj([("type", str("shutdown"))]),
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// Returns a message naming the problem (unknown type, missing
    /// field, malformed spec).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match req_str(v, "type")? {
            "hello" => Ok(Self::Hello {
                proto: req_str(v, "proto")?.to_owned(),
            }),
            "submit" => Ok(Self::Submit {
                spec: JobSpec::from_json(v.get("spec").ok_or("submit is missing `spec`")?)?,
            }),
            "status" => Ok(Self::Status {
                job_id: match v.get("job_id") {
                    None | Some(Json::Null) => None,
                    Some(id) => Some(id.as_u64().ok_or("non-integer `job_id`")?),
                },
            }),
            "stream" => Ok(Self::Stream {
                job_id: req_u64(v, "job_id")?,
            }),
            "cancel" => Ok(Self::Cancel {
                job_id: req_u64(v, "job_id")?,
            }),
            "metrics" => Ok(Self::Metrics),
            "run_cell" => Ok(Self::RunCell {
                spec: JobSpec::from_json(v.get("spec").ok_or("run_cell is missing `spec`")?)?,
                cell: req_u64(v, "cell")?,
            }),
            "register_worker" => Ok(Self::RegisterWorker {
                addr: req_str(v, "addr")?.to_owned(),
            }),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }
}

/// A point-in-time view of one job, as reported by `status`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// The job's daemon-assigned id.
    pub job_id: u64,
    /// The job kind label.
    pub kind: String,
    /// `queued`, `running`, `completed`, `failed`, or `cancelled`.
    pub status: String,
    /// Matrix cells finished so far.
    pub cells_done: u64,
    /// Total matrix cells.
    pub cells_total: u64,
    /// Device writes completed so far; absent until the job has run at
    /// least one cell (and on frames from daemons that predate it).
    pub writes_done: Option<u64>,
    /// Smoothed (EWMA) device-write throughput in writes/s; same
    /// presence rules as `writes_done`.
    pub rate_wps: Option<f64>,
    /// Estimated milliseconds until the job finishes; absent when no
    /// estimate exists (not started, finished, or pre-PR-6 daemon).
    pub eta_ms: Option<u64>,
    /// The failure message, if the job failed.
    pub error: Option<String>,
}

impl JobSnapshot {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("job_id", int(self.job_id)),
            ("kind", str(&self.kind)),
            ("status", str(&self.status)),
            ("cells_done", int(self.cells_done)),
            ("cells_total", int(self.cells_total)),
            ("error", self.error.as_deref().map_or(Json::Null, str)),
        ]);
        opt_insert(&mut obj, "writes_done", self.writes_done.map(int));
        opt_insert(&mut obj, "rate_wps", self.rate_wps.map(num));
        opt_insert(&mut obj, "eta_ms", self.eta_ms.map(int));
        obj
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            job_id: req_u64(v, "job_id")?,
            kind: req_str(v, "kind")?.to_owned(),
            status: req_str(v, "status")?.to_owned(),
            cells_done: req_u64(v, "cells_done")?,
            cells_total: req_u64(v, "cells_total")?,
            writes_done: opt_u64(v, "writes_done")?,
            rate_wps: opt_f64(v, "rate_wps")?,
            eta_ms: opt_u64(v, "eta_ms")?,
            error: match v.get("error") {
                None | Some(Json::Null) => None,
                Some(e) => Some(e.as_str().ok_or("non-string `error`")?.to_owned()),
            },
        })
    }
}

/// One progress event on a streamed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job entered the queue.
    Queued,
    /// A worker picked the job up.
    Started,
    /// One matrix cell finished.
    CellDone {
        /// Cell index in matrix order.
        cell: u64,
        /// Total cells in the matrix.
        total: u64,
        /// The cell's scheme label.
        scheme: String,
        /// The cell's workload name.
        workload: String,
        /// Cumulative device writes after this cell; absent on frames
        /// from daemons that predate progress reporting.
        writes_done: Option<u64>,
        /// Smoothed device-write throughput in writes/s.
        rate_wps: Option<f64>,
        /// Estimated milliseconds to job completion.
        eta_ms: Option<u64>,
    },
    /// Progress was persisted to the checkpoint directory.
    Checkpointed {
        /// Cells covered by the checkpoint.
        cells_done: u64,
    },
    /// The job reached a terminal state.
    Finished {
        /// The terminal status label.
        status: String,
    },
}

impl JobEvent {
    fn to_json(&self) -> Json {
        match self {
            Self::Queued => Json::obj([("what", str("queued"))]),
            Self::Started => Json::obj([("what", str("started"))]),
            Self::CellDone {
                cell,
                total,
                scheme,
                workload,
                writes_done,
                rate_wps,
                eta_ms,
            } => {
                let mut obj = Json::obj([
                    ("what", str("cell_done")),
                    ("cell", int(*cell)),
                    ("total", int(*total)),
                    ("scheme", str(scheme)),
                    ("workload", str(workload)),
                ]);
                opt_insert(&mut obj, "writes_done", writes_done.map(int));
                opt_insert(&mut obj, "rate_wps", rate_wps.map(num));
                opt_insert(&mut obj, "eta_ms", eta_ms.map(int));
                obj
            }
            Self::Checkpointed { cells_done } => Json::obj([
                ("what", str("checkpointed")),
                ("cells_done", int(*cells_done)),
            ]),
            Self::Finished { status } => {
                Json::obj([("what", str("finished")), ("status", str(status))])
            }
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        match req_str(v, "what")? {
            "queued" => Ok(Self::Queued),
            "started" => Ok(Self::Started),
            "cell_done" => Ok(Self::CellDone {
                cell: req_u64(v, "cell")?,
                total: req_u64(v, "total")?,
                scheme: req_str(v, "scheme")?.to_owned(),
                workload: req_str(v, "workload")?.to_owned(),
                writes_done: opt_u64(v, "writes_done")?,
                rate_wps: opt_f64(v, "rate_wps")?,
                eta_ms: opt_u64(v, "eta_ms")?,
            }),
            "checkpointed" => Ok(Self::Checkpointed {
                cells_done: req_u64(v, "cells_done")?,
            }),
            "finished" => Ok(Self::Finished {
                status: req_str(v, "status")?.to_owned(),
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

/// A daemon-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake succeeded.
    HelloOk {
        /// The protocol version the daemon speaks.
        proto: String,
        /// Parallel `run_cell` executions the daemon will accept;
        /// absent on frames from daemons that predate the fleet
        /// protocol (treat as unknown, not zero).
        slots: Option<u64>,
    },
    /// The job was queued.
    Submitted {
        /// The assigned job id.
        job_id: u64,
    },
    /// The queue is full (or draining); try again later.
    Rejected {
        /// Why the job was not queued.
        reason: String,
        /// Suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// Status snapshots.
    StatusOk {
        /// One entry per known job, oldest first.
        jobs: Vec<JobSnapshot>,
    },
    /// One progress event on a streamed job.
    Event {
        /// The job the event belongs to.
        job_id: u64,
        /// The event.
        event: JobEvent,
    },
    /// A streamed job completed; this is the final frame.
    JobResult {
        /// The finished job.
        job_id: u64,
        /// The result document (`{"kind":...,"reports":[...]}`).
        result: Json,
    },
    /// A streamed job failed or was cancelled; this is the final frame.
    JobFailed {
        /// The failed job.
        job_id: u64,
        /// What went wrong.
        error: String,
    },
    /// Outcome of a cancel request.
    CancelOk {
        /// The targeted job.
        job_id: u64,
        /// `false` if the job had already reached a terminal state.
        cancelled: bool,
    },
    /// A Prometheus text-format metrics page.
    MetricsOk {
        /// The exposition page (text format v0.0.4).
        text: String,
    },
    /// One cell finished (reply to `run_cell`).
    CellOk {
        /// The cell index that ran.
        cell: u64,
        /// The encoded report (`f64`s round-trip bit-exactly).
        report: Json,
        /// Device writes the cell absorbed.
        device_writes: u64,
    },
    /// A worker joined the fleet (reply to `register_worker`).
    WorkerOk {
        /// The worker's `host:port` as registered.
        addr: String,
        /// The worker's advertised `run_cell` parallelism.
        slots: u64,
    },
    /// The daemon is draining and will exit.
    ShutdownOk,
    /// The request could not be served; the connection stays usable
    /// unless the error was a protocol violation.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a frame body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Self::HelloOk { proto, slots } => {
                let mut obj = Json::obj([("type", str("hello_ok")), ("proto", str(proto))]);
                opt_insert(&mut obj, "slots", slots.map(int));
                obj
            }
            Self::Submitted { job_id } => {
                Json::obj([("type", str("submitted")), ("job_id", int(*job_id))])
            }
            Self::Rejected {
                reason,
                retry_after_ms,
            } => Json::obj([
                ("type", str("rejected")),
                ("reason", str(reason)),
                ("retry_after_ms", int(*retry_after_ms)),
            ]),
            Self::StatusOk { jobs } => Json::obj([
                ("type", str("status_ok")),
                (
                    "jobs",
                    Json::Arr(jobs.iter().map(JobSnapshot::to_json).collect()),
                ),
            ]),
            Self::Event { job_id, event } => Json::obj([
                ("type", str("event")),
                ("job_id", int(*job_id)),
                ("event", event.to_json()),
            ]),
            Self::JobResult { job_id, result } => Json::obj([
                ("type", str("result")),
                ("job_id", int(*job_id)),
                ("result", result.clone()),
            ]),
            Self::JobFailed { job_id, error } => Json::obj([
                ("type", str("job_failed")),
                ("job_id", int(*job_id)),
                ("error", str(error)),
            ]),
            Self::CancelOk { job_id, cancelled } => Json::obj([
                ("type", str("cancel_ok")),
                ("job_id", int(*job_id)),
                ("cancelled", Json::Bool(*cancelled)),
            ]),
            Self::MetricsOk { text } => {
                Json::obj([("type", str("metrics_ok")), ("text", str(text))])
            }
            Self::CellOk {
                cell,
                report,
                device_writes,
            } => Json::obj([
                ("type", str("cell_ok")),
                ("cell", int(*cell)),
                ("report", report.clone()),
                ("device_writes", int(*device_writes)),
            ]),
            Self::WorkerOk { addr, slots } => Json::obj([
                ("type", str("worker_ok")),
                ("addr", str(addr)),
                ("slots", int(*slots)),
            ]),
            Self::ShutdownOk => Json::obj([("type", str("shutdown_ok"))]),
            Self::Error { message } => {
                Json::obj([("type", str("error")), ("message", str(message))])
            }
        }
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// Returns a message naming the problem.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match req_str(v, "type")? {
            "hello_ok" => Ok(Self::HelloOk {
                proto: req_str(v, "proto")?.to_owned(),
                slots: opt_u64(v, "slots")?,
            }),
            "submitted" => Ok(Self::Submitted {
                job_id: req_u64(v, "job_id")?,
            }),
            "rejected" => Ok(Self::Rejected {
                reason: req_str(v, "reason")?.to_owned(),
                retry_after_ms: req_u64(v, "retry_after_ms")?,
            }),
            "status_ok" => Ok(Self::StatusOk {
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or("status_ok is missing `jobs`")?
                    .iter()
                    .map(JobSnapshot::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "event" => Ok(Self::Event {
                job_id: req_u64(v, "job_id")?,
                event: JobEvent::from_json(v.get("event").ok_or("event frame missing `event`")?)?,
            }),
            "result" => Ok(Self::JobResult {
                job_id: req_u64(v, "job_id")?,
                result: v
                    .get("result")
                    .ok_or("result frame missing `result`")?
                    .clone(),
            }),
            "job_failed" => Ok(Self::JobFailed {
                job_id: req_u64(v, "job_id")?,
                error: req_str(v, "error")?.to_owned(),
            }),
            "cancel_ok" => Ok(Self::CancelOk {
                job_id: req_u64(v, "job_id")?,
                cancelled: match v.get("cancelled") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err("missing or non-boolean `cancelled`".into()),
                },
            }),
            "metrics_ok" => Ok(Self::MetricsOk {
                text: req_str(v, "text")?.to_owned(),
            }),
            "cell_ok" => Ok(Self::CellOk {
                cell: req_u64(v, "cell")?,
                report: v
                    .get("report")
                    .ok_or("cell_ok frame missing `report`")?
                    .clone(),
                device_writes: req_u64(v, "device_writes")?,
            }),
            "worker_ok" => Ok(Self::WorkerOk {
                addr: req_str(v, "addr")?.to_owned(),
                slots: req_u64(v, "slots")?,
            }),
            "shutdown_ok" => Ok(Self::ShutdownOk),
            "error" => Ok(Self::Error {
                message: req_str(v, "message")?.to_owned(),
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;
    use twl_lifetime::{SchemeKind, SimLimits};
    use twl_pcm::PcmConfig;

    fn spec() -> JobSpec {
        JobSpec {
            kind: crate::job::JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(128, 2_000, 8),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::TwlSwp.into()],
            attacks: vec![AttackKind::Repeat.into()],
            benchmarks: vec![],
            fault: None,
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Hello {
                proto: PROTOCOL.to_owned(),
            },
            Request::Submit { spec: spec() },
            Request::Status { job_id: None },
            Request::Status { job_id: Some(3) },
            Request::Stream { job_id: 5 },
            Request::Cancel { job_id: 5 },
            Request::Metrics,
            Request::RunCell {
                spec: spec(),
                cell: 3,
            },
            Request::RegisterWorker {
                addr: "127.0.0.1:7782".to_owned(),
            },
            Request::Shutdown,
        ];
        for req in requests {
            let text = req.to_json().to_compact();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::HelloOk {
                proto: PROTOCOL.to_owned(),
                slots: None,
            },
            Response::HelloOk {
                proto: PROTOCOL.to_owned(),
                slots: Some(8),
            },
            Response::CellOk {
                cell: 2,
                report: Json::obj([("years", num(4.25))]),
                device_writes: 123_456,
            },
            Response::WorkerOk {
                addr: "127.0.0.1:7782".to_owned(),
                slots: 8,
            },
            Response::Submitted { job_id: 1 },
            Response::Rejected {
                reason: "queue full".to_owned(),
                retry_after_ms: 500,
            },
            Response::StatusOk {
                jobs: vec![
                    JobSnapshot {
                        job_id: 1,
                        kind: "attack_matrix".to_owned(),
                        status: "running".to_owned(),
                        cells_done: 2,
                        cells_total: 4,
                        writes_done: None,
                        rate_wps: None,
                        eta_ms: None,
                        error: None,
                    },
                    JobSnapshot {
                        job_id: 2,
                        kind: "attack_matrix".to_owned(),
                        status: "running".to_owned(),
                        cells_done: 2,
                        cells_total: 4,
                        writes_done: Some(1_500_000),
                        rate_wps: Some(125_000.5),
                        eta_ms: Some(12_000),
                        error: None,
                    },
                ],
            },
            Response::Event {
                job_id: 1,
                event: JobEvent::CellDone {
                    cell: 2,
                    total: 4,
                    scheme: "TWL_swp".to_owned(),
                    workload: "repeat".to_owned(),
                    writes_done: None,
                    rate_wps: None,
                    eta_ms: None,
                },
            },
            Response::Event {
                job_id: 2,
                event: JobEvent::CellDone {
                    cell: 2,
                    total: 4,
                    scheme: "TWL_swp".to_owned(),
                    workload: "repeat".to_owned(),
                    writes_done: Some(1_500_000),
                    rate_wps: Some(125_000.5),
                    eta_ms: Some(12_000),
                },
            },
            Response::MetricsOk {
                text: "# TYPE twl_service_queue_depth gauge\ntwl_service_queue_depth 0\n"
                    .to_owned(),
            },
            Response::Event {
                job_id: 1,
                event: JobEvent::Checkpointed { cells_done: 3 },
            },
            Response::JobResult {
                job_id: 1,
                result: Json::obj([("kind", str("attack_matrix"))]),
            },
            Response::JobFailed {
                job_id: 1,
                error: "boom".to_owned(),
            },
            Response::CancelOk {
                job_id: 1,
                cancelled: true,
            },
            Response::ShutdownOk,
            Response::Error {
                message: "nope".to_owned(),
            },
        ];
        for resp in responses {
            let text = resp.to_json().to_compact();
            let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn progress_fields_are_optional_and_omitted_when_absent() {
        // Frames exactly as a pre-PR-6 daemon wrote them: no
        // writes_done / rate_wps / eta_ms keys anywhere.
        let old_event =
            r#"{"cell":1,"scheme":"NOWL","total":4,"what":"cell_done","workload":"repeat"}"#;
        let event = JobEvent::from_json(&Json::parse(old_event).unwrap()).unwrap();
        assert!(matches!(
            event,
            JobEvent::CellDone {
                writes_done: None,
                rate_wps: None,
                eta_ms: None,
                ..
            }
        ));
        assert_eq!(event.to_json().to_compact(), old_event);

        let old_snapshot = concat!(
            r#"{"cells_done":2,"cells_total":4,"error":null,"#,
            r#""job_id":1,"kind":"attack_matrix","status":"running"}"#
        );
        let snap = JobSnapshot::from_json(&Json::parse(old_snapshot).unwrap()).unwrap();
        assert_eq!(snap.writes_done, None);
        assert_eq!(snap.rate_wps, None);
        assert_eq!(snap.eta_ms, None);
        assert_eq!(snap.to_json().to_compact(), old_snapshot);

        // A pre-fleet daemon's handshake has no `slots`; it decodes as
        // unknown capacity and re-encodes without the key.
        let old_hello = r#"{"proto":"twl-wire/v1","type":"hello_ok"}"#;
        let hello = Response::from_json(&Json::parse(old_hello).unwrap()).unwrap();
        assert_eq!(
            hello,
            Response::HelloOk {
                proto: PROTOCOL.to_owned(),
                slots: None,
            }
        );
        assert_eq!(hello.to_json().to_compact(), old_hello);
    }

    #[test]
    fn unknown_types_are_rejected() {
        let v = Json::obj([("type", str("frobnicate"))]);
        assert!(Request::from_json(&v).is_err());
        assert!(Response::from_json(&v).is_err());
        assert!(Request::from_json(&Json::Null).is_err());
    }
}
