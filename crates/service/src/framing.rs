//! Length-prefixed JSON framing for the `twl-wire` protocol.
//!
//! Every frame on the wire is a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 encoded compact JSON. The
//! length prefix makes message boundaries explicit, so a reader can
//! tell a cleanly closed connection ([`FrameError::Closed`]) from one
//! that died mid-frame ([`FrameError::Truncated`]), and can refuse an
//! absurd length ([`FrameError::Oversized`]) *before* allocating or
//! reading the payload.

use std::fmt;
use std::io::{self, Read, Write};

use twl_telemetry::json::Json;

use crate::net::guard_frame_len;

/// Hard ceiling on a single frame's payload (4 MiB). Large matrix
/// results stay well under this; anything bigger is a protocol error.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The connection ended mid-header or mid-payload.
    Truncated,
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared payload length.
        len: usize,
    },
    /// The payload is not valid UTF-8.
    Utf8,
    /// The payload is not valid JSON.
    Json(String),
    /// An I/O error other than EOF.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Truncated => write!(f, "connection closed mid-frame"),
            Self::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                )
            }
            Self::Utf8 => write!(f, "frame payload is not UTF-8"),
            Self::Json(e) => write!(f, "frame payload is not JSON: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
///
/// # Panics
///
/// Panics if the encoded frame exceeds [`MAX_FRAME_BYTES`] — outgoing
/// frames are produced by this crate, so an oversized one is a bug, not
/// a peer behaving badly.
pub fn write_frame(w: &mut impl Write, frame: &Json) -> io::Result<()> {
    let payload = frame.to_compact();
    let bytes = payload.as_bytes();
    assert!(
        bytes.len() <= MAX_FRAME_BYTES,
        "outgoing frame of {} bytes exceeds MAX_FRAME_BYTES",
        bytes.len()
    );
    let len = u32::try_from(bytes.len()).expect("MAX_FRAME_BYTES fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads until `buf` is full or EOF; returns the number of bytes read.
fn fill(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one frame.
///
/// # Errors
///
/// Returns [`FrameError::Closed`] on clean EOF before any header byte,
/// and the other variants for truncated, oversized, or malformed
/// payloads. The oversized check happens before the payload is read, so
/// a hostile length prefix cannot force a large allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    let mut header = [0u8; 4];
    match fill(r, &mut header) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) if n < header.len() => return Err(FrameError::Truncated),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = guard_frame_len(u64::from(u32::from_be_bytes(header)), MAX_FRAME_BYTES)
        .map_err(|len| FrameError::Oversized { len })?;
    let mut payload = vec![0u8; len];
    match fill(r, &mut payload) {
        Ok(n) if n < len => return Err(FrameError::Truncated),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    let text = String::from_utf8(payload).map_err(|_| FrameError::Utf8)?;
    Json::parse(&text).map_err(FrameError::Json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_telemetry::json::{int, str};

    #[test]
    fn frames_round_trip() {
        let frame = Json::obj([("type", str("hello")), ("n", int(7))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn partial_header_is_truncated() {
        let partial: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut { partial }),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn partial_payload_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("type", str("hello"))])).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut buf = Vec::new();
        let len = u32::try_from(MAX_FRAME_BYTES + 1).unwrap();
        buf.extend_from_slice(&len.to_be_bytes());
        // No payload follows — the length check alone must reject it.
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn non_utf8_and_non_json_are_distinguished() {
        let mut bad_utf8 = Vec::new();
        bad_utf8.extend_from_slice(&2u32.to_be_bytes());
        bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_frame(&mut bad_utf8.as_slice()),
            Err(FrameError::Utf8)
        ));

        let mut bad_json = Vec::new();
        bad_json.extend_from_slice(&3u32.to_be_bytes());
        bad_json.extend_from_slice(b"{{{");
        assert!(matches!(
            read_frame(&mut bad_json.as_slice()),
            Err(FrameError::Json(_))
        ));
    }
}
