//! Metrics exposition over the wire: a live daemon's `metrics` scrape
//! must lint clean as Prometheus text format v0.0.4, carry the global
//! registry (counters, worker gauges, job histograms), and expose
//! per-job progress gauges once a job has run — and the consumer
//! binaries (`twl-top --once`, `twl-ctl metrics --lint`) must accept
//! the same page end-to-end.

mod common;

use std::time::Duration;

use twl_attacks::AttackKind;
use twl_lifetime::{SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::JobKind;
use twl_service::{Client, JobSpec, SubmitOutcome};
use twl_telemetry::prom::{parse_exposition, scalar_samples};

fn small_spec() -> JobSpec {
    JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(64, 500, 3),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into()],
        benchmarks: vec![],
        fault: None,
    }
}

#[test]
fn metrics_scrape_lints_and_carries_job_progress() {
    let mut daemon = common::Daemon::spawn(&["--workers", "1"], &[]);
    let mut client = Client::connect(&daemon.addr).expect("connect");

    // An idle daemon already serves a lintable page with worker gauges.
    let idle = client.metrics().expect("idle scrape");
    let idle_flat = scalar_samples(&parse_exposition(&idle).expect("idle page lints"));
    assert_eq!(idle_flat["twl_service_workers_total"], 1.0);

    let job_id = match client.submit(&small_spec()).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };
    client.wait(job_id, |_| {}).expect("job result");

    // The worker records its wall-time histogram before publishing the
    // result, so the first scrape should already carry it; the loop is
    // only defense against scheduler stalls.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let text = loop {
        let text = client.metrics().expect("scrape after job");
        if text.contains("twl_service_job_wall_ms_count") || std::time::Instant::now() > deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let samples = parse_exposition(&text).expect("page lints clean");
    let flat = scalar_samples(&samples);
    assert!(flat["twl_service_jobs_completed"] >= 1.0);
    assert!(
        flat.contains_key("twl_service_job_wall_ms_count"),
        "job wall-time histogram missing: {text}"
    );
    assert!(
        flat.contains_key("twl_service_job_queue_wait_ms_count"),
        "queue-wait histogram missing: {text}"
    );

    // Per-job progress gauges, labeled with this job's id.
    let id_label = job_id.to_string();
    let gauge = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.label("job") == Some(id_label.as_str()))
            .unwrap_or_else(|| panic!("no {name} sample for job {job_id} in:\n{text}"))
            .value
    };
    assert_eq!(gauge("twl_service_job_cells_done"), 2.0);
    assert_eq!(gauge("twl_service_job_cells_total"), 2.0);
    assert!(gauge("twl_service_job_writes_done") > 0.0);
    assert!(gauge("twl_service_job_rate_wps") > 0.0);
    let info = samples
        .iter()
        .find(|s| s.name == "twl_service_job_info" && s.label("job") == Some(id_label.as_str()))
        .expect("job info gauge");
    assert_eq!(info.label("status"), Some("completed"));
    assert_eq!(info.label("kind"), Some("attack_matrix"));

    // The dashboard renders one frame from the same daemon.
    let top = std::process::Command::new(env!("CARGO_BIN_EXE_twl-top"))
        .args(["--addr", &daemon.addr, "--once"])
        .output()
        .expect("run twl-top");
    assert!(top.status.success(), "twl-top failed: {top:?}");
    let frame = String::from_utf8(top.stdout).expect("utf8 frame");
    assert!(frame.contains("workers"), "header missing: {frame}");
    assert!(frame.contains("attack_matrix"), "job row missing: {frame}");
    assert!(
        frame.contains("[################] 100%"),
        "bar missing: {frame}"
    );

    // And the CLI lint accepts the page.
    let lint = std::process::Command::new(env!("CARGO_BIN_EXE_twl-ctl"))
        .args(["--addr", &daemon.addr, "metrics", "--lint"])
        .output()
        .expect("run twl-ctl metrics");
    assert!(
        lint.status.success(),
        "twl-ctl metrics --lint failed: {lint:?}"
    );
    assert!(
        String::from_utf8_lossy(&lint.stdout).contains("twl_service_job_cells_done"),
        "lint output missing progress gauges"
    );

    client.shutdown().expect("shutdown");
    let status = daemon.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
}
