//! Shared helpers for the service integration tests: spawning the real
//! `twl-serviced` binary and scratch directories.
#![allow(dead_code)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// A spawned `twl-serviced` child bound to an OS-assigned port.
pub struct Daemon {
    child: Child,
    /// The `host:port` the daemon announced.
    pub addr: String,
}

impl Daemon {
    /// Spawns the daemon on `127.0.0.1:0` with extra flags and
    /// environment variables, and parses the announced address.
    pub fn spawn(extra_args: &[&str], envs: &[(&str, String)]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_twl-serviced"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn twl-serviced");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the listening line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in the listening line")
            .to_owned();
        assert!(addr.contains(':'), "unexpected announce line: {line:?}");
        Self { child, addr }
    }

    /// Waits (bounded) for the daemon to exit on its own.
    ///
    /// Panics — which kills the child via `Drop` — if it is still
    /// running when the timeout expires.
    pub fn wait_exit(&mut self, timeout: Duration) -> ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait daemon") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A fresh per-process scratch directory under the system temp dir.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twl-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
