//! Loopback integration: a real `twl-serviced` process on an
//! OS-assigned port, driven through the [`twl_service::Client`] library
//! and the `twl-ctl` binary, must return results bit-identical to
//! calling the simulation cells directly in-process.

mod common;

use std::time::Duration;

use twl_attacks::AttackKind;
use twl_lifetime::{run_attack_cell, SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::JobKind;
use twl_service::{decode_result, Client, JobReports, JobSpec, SubmitOutcome};
use twl_telemetry::json::Json;

fn small_spec() -> JobSpec {
    JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(64, 500, 3),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
        benchmarks: vec![],
        fault: None,
    }
}

fn direct_reports(spec: &JobSpec) -> Vec<twl_lifetime::LifetimeReport> {
    let mut reports = Vec::new();
    for scheme in &spec.schemes {
        for attack in &spec.attacks {
            reports.push(run_attack_cell(&spec.pcm, *scheme, attack, &spec.limits));
        }
    }
    reports
}

#[test]
fn attack_matrix_over_loopback_matches_direct_run() {
    let mut daemon = common::Daemon::spawn(&["--workers", "1"], &[]);
    let spec = small_spec();

    let mut client = Client::connect(&daemon.addr).expect("connect");
    let job_id = match client.submit(&spec).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };

    let mut events = Vec::new();
    let result = client
        .wait(job_id, |e| events.push(format!("{e:?}")))
        .expect("job result");
    let JobReports::Lifetime(remote) = decode_result(&result).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    assert_eq!(
        remote,
        direct_reports(&spec),
        "loopback result differs from the direct in-process run"
    );
    assert!(
        events.iter().any(|e| e.contains("CellDone")),
        "expected progress events, got {events:?}"
    );

    // A clean shutdown drains and exits zero.
    let mut closer = Client::connect(&daemon.addr).expect("second connection");
    closer.shutdown().expect("shutdown");
    let status = daemon.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
}

#[test]
fn twl_ctl_submit_wait_emits_bit_identical_json() {
    let daemon = common::Daemon::spawn(&["--workers", "1"], &[]);

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_twl-ctl"))
        .args([
            "--addr",
            &daemon.addr,
            "submit",
            "--kind",
            "attack_matrix",
            "--pages",
            "64",
            "--endurance",
            "500",
            "--seed",
            "3",
            "--schemes",
            "NOWL,TWL_swp",
            "--attacks",
            "repeat,scan",
            "--wait",
            "--format",
            "json",
        ])
        .output()
        .expect("run twl-ctl");
    assert!(
        output.status.success(),
        "twl-ctl failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let doc = Json::parse(stdout.trim()).expect("twl-ctl emitted invalid JSON");
    let JobReports::Lifetime(remote) = decode_result(&doc).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    // The CLI flag path builds the same config as PcmConfig::scaled.
    let spec = small_spec();
    assert_eq!(
        remote,
        direct_reports(&spec),
        "twl-ctl JSON output differs from the direct in-process run"
    );
}

#[test]
fn status_and_cancel_round_trip() {
    let daemon = common::Daemon::spawn(&["--workers", "1"], &[]);
    let mut client = Client::connect(&daemon.addr).expect("connect");

    let job_id = match client.submit(&small_spec()).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };
    let result = client.wait(job_id, |_| {}).expect("job result");
    assert!(result.get("reports").is_some());

    let jobs = client.status(None).expect("status");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].job_id, job_id);
    assert_eq!(jobs[0].status, "completed");
    assert_eq!(jobs[0].cells_done, jobs[0].cells_total);

    // Cancelling a finished job reports `false` rather than erroring.
    assert!(!client.cancel(job_id).expect("cancel reply"));
}
