//! Wire back-compat: job specs and checkpoints written by the PR-4-era
//! daemon (bare scheme-kind labels, no params) must keep working after
//! the [`SchemeSpec`] refactor — they parse as default-params specs,
//! re-encode byte-identically, and their stored cell reports match what
//! the refactored engine computes today. Parameterized specs must make
//! the same trip (submit → checkpoint → kill → resume) losslessly.

mod common;

use std::time::Duration;

use twl_attacks::AttackKind;
use twl_lifetime::{run_attack_cell, SchemeKind, SchemeSpec, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::{encode_result, JobKind};
use twl_service::{
    decode_result, Checkpoint, Client, JobReports, JobSpec, SubmitOutcome,
    EXIT_AFTER_CHECKPOINTS_ENV,
};
use twl_telemetry::json::Json;

/// A job-spec document exactly as the PR-4 daemon wrote it: schemes are
/// bare label strings.
const PR4_SPEC: &str = include_str!("fixtures/pr4_job_spec.json");

/// A partial checkpoint (3 of 4 cells done, status `running`) written
/// by the PR-4 daemon, with the cell reports it actually computed.
const PR4_CHECKPOINT: &str = include_str!("fixtures/pr4_checkpoint.json");

/// A job-spec document as the PR-9 daemon wrote it, straddling the
/// refactor boundary: schemes are already SchemeSpec-encoded (one
/// parameterized object, one bare label) while the workload axes are
/// still bare strings.
const PR9_SPEC: &str = include_str!("fixtures/pr9_job_spec.json");

/// A completed checkpoint written by the PR-9 daemon for a 2×2
/// `TWL_swp[ti=8]`/`NOWL` × repeat/scan matrix, with the reports it
/// actually computed.
const PR9_CHECKPOINT: &str = include_str!("fixtures/pr9_checkpoint.json");

/// Progress-carrying frames as the PR-6 daemon writes them: a
/// `status_ok` snapshot and a `cell_done` event, both with the optional
/// `writes_done` / `rate_wps` / `eta_ms` fields present.
const PR6_PROGRESS: &str = include_str!("fixtures/pr6_progress_frames.jsonl");

/// Fleet-protocol frames as the PR-7 coordinator and workers exchange
/// them: `run_cell` / `register_worker` requests and the `hello_ok`
/// (with `slots`), `cell_ok`, and `worker_ok` responses.
const PR7_FLEET: &str = include_str!("fixtures/pr7_fleet_frames.jsonl");

#[test]
fn pr4_job_specs_still_parse_and_reencode_byte_identically() {
    let spec = JobSpec::from_json(&Json::parse(PR4_SPEC.trim()).expect("fixture JSON"))
        .expect("PR-4 spec decodes");
    spec.validate().expect("PR-4 spec is still valid");

    // Bare kind labels become default-params specs.
    let expect: Vec<SchemeSpec> = vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()];
    assert_eq!(spec.schemes, expect);
    assert!(spec.schemes.iter().all(SchemeSpec::is_default));

    // Default specs re-encode as the same bare strings, so the whole
    // document round-trips byte-for-byte: a PR-4 client reading a new
    // daemon's output sees exactly the schema it was built against.
    assert_eq!(spec.to_json().to_compact(), PR4_SPEC.trim());
}

#[test]
fn pr9_job_specs_still_parse_and_reencode_byte_identically() {
    use twl_workloads::WorkloadSpec;

    let spec = JobSpec::from_json(&Json::parse(PR9_SPEC.trim()).expect("fixture JSON"))
        .expect("PR-9 spec decodes");
    spec.validate().expect("PR-9 spec is still valid");

    // Bare workload strings become default-params specs; the scheme
    // axis keeps its parameterized entry.
    assert!(spec.attacks.iter().all(WorkloadSpec::is_default));
    assert!(spec.benchmarks.iter().all(WorkloadSpec::is_default));
    assert_eq!(spec.schemes[0].to_string(), "TWL_swp[ti=8]");
    assert!(!spec.schemes[0].is_default());

    // Default workload specs re-encode as the same bare strings, so
    // the whole document round-trips byte-for-byte: a PR-9 client
    // reading a new daemon's output sees exactly the schema it was
    // built against.
    assert_eq!(spec.to_json().to_compact(), PR9_SPEC.trim());
}

#[test]
fn pr9_checkpoints_reencode_byte_identically_and_match_the_engine() {
    let cp = Checkpoint::from_json(&Json::parse(PR9_CHECKPOINT.trim()).expect("fixture JSON"))
        .expect("PR-9 checkpoint decodes");
    assert_eq!(cp.status, "completed");
    assert_eq!(
        cp.completed_cells.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );

    // The checkpoint document survives the WorkloadSpec re-typing of
    // its spec byte-for-byte.
    assert_eq!(cp.to_json().to_compact(), PR9_CHECKPOINT.trim());

    // Every stored cell is byte-identical to what the refactored
    // engine computes for the same spec and index today, and carries
    // the canonical workload label.
    for (&index, stored) in &cp.completed_cells {
        let (fresh, _writes) = cp.spec.run_cell(usize::try_from(index).unwrap());
        assert_eq!(
            fresh.to_compact(),
            stored.to_compact(),
            "cell {index} drifted from the PR-9 run"
        );
    }
    let labels: Vec<_> = (0..cp.spec.cell_count())
        .map(|i| cp.spec.describe_cell(i).1)
        .collect();
    assert_eq!(labels, ["repeat", "scan", "repeat", "scan"]);
}

#[test]
fn pr9_checkpoint_resumes_through_the_daemon() {
    let dir = common::temp_dir("compat-pr9");
    std::fs::write(dir.join("job-1.json"), PR9_CHECKPOINT.trim()).expect("seed checkpoint");
    let dir_str = dir.to_string_lossy().into_owned();

    let mut daemon = common::Daemon::spawn(
        &["--workers", "1", "--checkpoint-dir", dir_str.as_str()],
        &[],
    );
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let result = client.wait(1, |_| {}).expect("resumed PR-9 job result");
    let JobReports::Lifetime(resumed) = decode_result(&result).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    // The stored result is served as-is — and it equals a fresh run of
    // the same matrix under the refactored engine.
    let cp = Checkpoint::from_json(&Json::parse(PR9_CHECKPOINT.trim()).unwrap()).unwrap();
    let mut direct = Vec::new();
    for scheme in &cp.spec.schemes {
        for attack in &cp.spec.attacks {
            direct.push(run_attack_cell(
                &cp.spec.pcm,
                *scheme,
                attack,
                &cp.spec.limits,
            ));
        }
    }
    assert_eq!(resumed, direct, "PR-9 result differs from a fresh run");

    client.shutdown().expect("shutdown");
    let status = daemon.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pr6_progress_frames_roundtrip_byte_identically() {
    use twl_service::wire::{JobEvent, Response};

    for line in PR6_PROGRESS.lines().filter(|l| !l.trim().is_empty()) {
        let frame =
            Response::from_json(&Json::parse(line).expect("fixture JSON")).expect("frame decodes");
        assert_eq!(frame.to_json().to_compact(), line);
    }

    // The extended fields really decoded (not silently dropped).
    let first = PR6_PROGRESS.lines().next().expect("snapshot line");
    let Response::StatusOk { jobs } = Response::from_json(&Json::parse(first).unwrap()).unwrap()
    else {
        panic!("first fixture line is not status_ok");
    };
    assert_eq!(jobs[0].writes_done, Some(150_000_000));
    assert_eq!(jobs[0].rate_wps, Some(1_234_567.5));
    assert_eq!(jobs[0].eta_ms, Some(45_210));

    let second = PR6_PROGRESS.lines().nth(1).expect("event line");
    let Response::Event { event, .. } = Response::from_json(&Json::parse(second).unwrap()).unwrap()
    else {
        panic!("second fixture line is not an event");
    };
    let JobEvent::CellDone {
        writes_done,
        rate_wps,
        eta_ms,
        ..
    } = event
    else {
        panic!("event is not cell_done");
    };
    assert_eq!(writes_done, Some(150_000_000));
    assert_eq!(rate_wps, Some(1_234_567.5));
    assert_eq!(eta_ms, Some(45_210));
}

#[test]
fn pr7_fleet_frames_roundtrip_byte_identically() {
    use twl_service::wire::{Request, Response};

    for line in PR7_FLEET.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line).expect("fixture JSON");
        // Frames are a mix of requests and responses; every line must
        // decode as exactly one of them and re-encode byte-for-byte.
        let text = match Request::from_json(&v) {
            Ok(req) => req.to_json().to_compact(),
            Err(_) => Response::from_json(&v)
                .expect("frame decodes as request or response")
                .to_json()
                .to_compact(),
        };
        assert_eq!(text, line);
    }

    // The load-bearing fields really decoded (not silently dropped).
    let mut lines = PR7_FLEET.lines();
    let Request::RunCell { spec, cell } =
        Request::from_json(&Json::parse(lines.next().unwrap()).unwrap()).unwrap()
    else {
        panic!("first fixture line is not run_cell");
    };
    assert_eq!(cell, 0);
    assert_eq!(spec.schemes[0].to_string(), "TWL_swp[ti=8]");

    let hello = Response::from_json(&Json::parse(lines.nth(1).unwrap()).unwrap()).unwrap();
    assert_eq!(
        hello,
        Response::HelloOk {
            proto: "twl-wire/v1".to_owned(),
            slots: Some(8),
        }
    );

    let Response::CellOk {
        cell,
        report,
        device_writes,
    } = Response::from_json(&Json::parse(lines.next().unwrap()).unwrap()).unwrap()
    else {
        panic!("fourth fixture line is not cell_ok");
    };
    assert_eq!((cell, device_writes), (0, 123_456_789));
    // The f64 payload survives the trip bit-exactly — the property the
    // cache's bit-identical-replay guarantee rests on.
    assert_eq!(
        report.get("lifetime_years").and_then(Json::as_f64),
        Some(4.256_789_012_345_678)
    );
}

#[test]
fn pr4_checkpoint_cells_match_the_refactored_engine() {
    let cp = Checkpoint::from_json(&Json::parse(PR4_CHECKPOINT.trim()).expect("fixture JSON"))
        .expect("PR-4 checkpoint decodes");
    assert_eq!(cp.job_id, 1);
    assert_eq!(cp.status, "running");
    assert_eq!(
        cp.completed_cells.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 2],
        "fixture is a partial checkpoint"
    );
    assert!(cp.result.is_none());

    // Every stored cell must be byte-identical to what the refactored
    // engine computes for the same spec and index today.
    for (&index, stored) in &cp.completed_cells {
        let (fresh, _writes) = cp.spec.run_cell(usize::try_from(index).unwrap());
        assert_eq!(
            fresh.to_compact(),
            stored.to_compact(),
            "cell {index} drifted from the PR-4 run"
        );
    }

    // Completing the missing cell assembles a result identical to an
    // uninterrupted run of the whole matrix.
    let mut cells: Vec<Json> = cp.completed_cells.values().cloned().collect();
    cells.push(cp.spec.run_cell(3).0);
    let JobReports::Lifetime(resumed) =
        decode_result(&encode_result(cp.spec.kind, cells)).expect("decode assembled result")
    else {
        panic!("attack matrix returned non-lifetime reports");
    };
    let mut direct = Vec::new();
    for scheme in &cp.spec.schemes {
        for attack in &cp.spec.attacks {
            direct.push(run_attack_cell(
                &cp.spec.pcm,
                *scheme,
                attack,
                &cp.spec.limits,
            ));
        }
    }
    assert_eq!(resumed, direct);
}

#[test]
fn pr4_checkpoint_resumes_through_the_daemon() {
    let dir = common::temp_dir("compat");
    std::fs::write(dir.join("job-1.json"), PR4_CHECKPOINT.trim()).expect("seed checkpoint");
    let dir_str = dir.to_string_lossy().into_owned();

    let mut daemon = common::Daemon::spawn(
        &["--workers", "1", "--checkpoint-dir", dir_str.as_str()],
        &[],
    );
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let result = client.wait(1, |_| {}).expect("resumed PR-4 job result");
    let JobReports::Lifetime(resumed) = decode_result(&result).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    let cp = Checkpoint::from_json(&Json::parse(PR4_CHECKPOINT.trim()).unwrap()).unwrap();
    let mut direct = Vec::new();
    for scheme in &cp.spec.schemes {
        for attack in &cp.spec.attacks {
            direct.push(run_attack_cell(
                &cp.spec.pcm,
                *scheme,
                attack,
                &cp.spec.limits,
            ));
        }
    }
    assert_eq!(resumed, direct, "resumed PR-4 job differs from a fresh run");

    client.shutdown().expect("shutdown");
    let status = daemon.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parameterized_spec_survives_kill_and_resume_bit_identically() {
    let dir = common::temp_dir("compat-param");
    let dir_str = dir.to_string_lossy().into_owned();
    let schemes: Vec<SchemeSpec> = ["TWL_swp[ti=8]", "TWL_swp[ti=64]"]
        .iter()
        .map(|l| l.parse().expect("parameterized label"))
        .collect();
    let spec = JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(128, 2_000, 8),
        limits: SimLimits::default(),
        schemes: schemes.clone(),
        attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
        benchmarks: vec![],
        fault: None,
    };

    let flags = [
        "--workers",
        "1",
        "--checkpoint-dir",
        dir_str.as_str(),
        "--checkpoint-interval-writes",
        "1",
    ];
    let mut daemon = common::Daemon::spawn(&flags, &[(EXIT_AFTER_CHECKPOINTS_ENV, "2".to_owned())]);
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let job_id = match client.submit(&spec) {
        Ok(SubmitOutcome::Accepted(id)) => id,
        Ok(SubmitOutcome::Rejected { reason, .. }) => panic!("submit rejected: {reason}"),
        Err(_) => 1,
    };
    let status = daemon.wait_exit(Duration::from_secs(120));
    assert_eq!(status.code(), Some(83), "expected the simulated crash exit");
    drop(client);

    // The partial checkpoint on disk carries the parameterized specs
    // losslessly: overrides survive the spec → JSON → spec round trip.
    let text = std::fs::read_to_string(dir.join(format!("job-{job_id}.json")))
        .expect("checkpoint file after crash");
    let partial = Checkpoint::from_json(&Json::parse(&text).expect("checkpoint JSON"))
        .expect("decode checkpoint");
    assert_eq!(partial.spec, spec);
    assert_eq!(partial.spec.schemes, schemes);
    assert!(partial.spec.schemes.iter().all(|s| !s.is_default()));

    // Resume: the result is bit-identical to a direct run, and every
    // report is stamped with the full parameterized label.
    let mut daemon2 = common::Daemon::spawn(&flags, &[]);
    let mut client2 = Client::connect(&daemon2.addr).expect("reconnect");
    let result = client2.wait(job_id, |_| {}).expect("resumed job result");
    let JobReports::Lifetime(resumed) = decode_result(&result).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    let mut direct = Vec::new();
    for scheme in &spec.schemes {
        for attack in &spec.attacks {
            direct.push(run_attack_cell(&spec.pcm, *scheme, attack, &spec.limits));
        }
    }
    assert_eq!(resumed, direct);
    let labels: Vec<&str> = resumed.iter().map(|r| r.scheme.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "TWL_swp[ti=8]",
            "TWL_swp[ti=8]",
            "TWL_swp[ti=64]",
            "TWL_swp[ti=64]"
        ]
    );

    client2.shutdown().expect("shutdown");
    let status = daemon2.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}
