//! Protocol robustness: malformed, truncated, and oversized frames —
//! including proptest-generated random byte blobs — must at worst cost
//! the offending connection. The daemon keeps serving throughout.
//!
//! These tests run the server in-process (one shared instance for the
//! whole binary) and poke it with raw TCP writes.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::OnceLock;

use proptest::prelude::*;

use twl_service::{Client, Server, ServiceConfig, MAX_FRAME_BYTES};
use twl_telemetry::json::Json;

/// Binds one shared in-process server for every test in this binary
/// and returns its address. The server thread dies with the process.
fn shared_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let config = ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            ..ServiceConfig::default()
        };
        let server = Server::bind(&config).expect("bind in-process server");
        let addr = server.local_addr().expect("local addr").to_string();
        std::thread::spawn(move || {
            let _ = server.run();
        });
        addr
    })
}

/// Binds a second in-process server with an aggressive idle timeout so
/// the half-open-connection tests finish in milliseconds instead of the
/// five-minute production default.
fn short_idle_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let config = ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            idle_timeout_ms: 250,
            ..ServiceConfig::default()
        };
        let server = Server::bind(&config).expect("bind short-idle server");
        let addr = server.local_addr().expect("local addr").to_string();
        std::thread::spawn(move || {
            let _ = server.run();
        });
        addr
    })
}

/// Writes raw bytes, half-closes, and drains whatever the server sends
/// back before it drops the connection.
fn poke(bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(shared_addr()).expect("connect raw");
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

/// Decodes a single response frame, if the reply holds one.
fn decode_reply(reply: &[u8]) -> Option<Json> {
    if reply.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([reply[0], reply[1], reply[2], reply[3]]) as usize;
    let payload = reply.get(4..4 + len)?;
    Json::parse(std::str::from_utf8(payload).ok()?).ok()
}

/// The daemon must still complete a full handshake.
fn assert_still_serving() {
    let client = Client::connect(shared_addr());
    assert!(client.is_ok(), "daemon stopped serving: {:?}", client.err());
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let declared = u32::try_from(MAX_FRAME_BYTES).unwrap() + 1;
    let reply = poke(&declared.to_be_bytes());
    let frame = decode_reply(&reply).expect("an error frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_still_serving();
}

#[test]
fn truncated_frame_closes_only_that_connection() {
    // Header promises 100 bytes; only 5 arrive before the half-close.
    let mut bytes = 100u32.to_be_bytes().to_vec();
    bytes.extend_from_slice(b"hello");
    let reply = poke(&bytes);
    if let Some(frame) = decode_reply(&reply) {
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    }
    assert_still_serving();
}

#[test]
fn non_json_payload_gets_a_protocol_error() {
    let payload = b"\xff\xfe not json";
    let mut bytes = u32::try_from(payload.len()).unwrap().to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    let reply = poke(&bytes);
    let frame = decode_reply(&reply).expect("an error frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_still_serving();
}

#[test]
fn valid_json_with_unknown_type_gets_a_protocol_error() {
    let payload = br#"{"type":"frobnicate"}"#;
    let mut bytes = u32::try_from(payload.len()).unwrap().to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    let reply = poke(&bytes);
    let frame = decode_reply(&reply).expect("an error frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_still_serving();
}

#[test]
fn half_open_connection_is_reaped_after_the_idle_timeout() {
    use std::time::{Duration, Instant};

    // A peer that completes the handshake and then goes silent — the
    // classic half-open connection — must be closed by the daemon, not
    // pin a connection thread forever.
    let mut stream = TcpStream::connect(short_idle_addr()).expect("connect");
    let hello = br#"{"proto":"twl-wire/v1","type":"hello"}"#;
    let mut bytes = u32::try_from(hello.len()).unwrap().to_be_bytes().to_vec();
    bytes.extend_from_slice(hello);
    stream.write_all(&bytes).expect("send hello");

    // Do NOT half-close: keep the write side open and just stop talking.
    // The server must hang up on its own within the idle window.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let start = Instant::now();
    let mut reply = Vec::new();
    stream
        .read_to_end(&mut reply)
        .expect("server closed the connection (EOF), not a client-side timeout");
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "server took {:?} to reap an idle connection",
        start.elapsed()
    );

    // The reply holds the hello_ok plus a best-effort idle-timeout
    // error frame; the error is advisory, so only check it when the
    // bytes made it out before the close.
    let frame = decode_reply(&reply).expect("hello_ok frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("hello_ok"));

    let client = Client::connect(short_idle_addr());
    assert!(client.is_ok(), "daemon stopped serving: {:?}", client.err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary byte blobs — empty, partial headers, garbage payloads,
    /// wild length prefixes — never take the daemon down.
    #[test]
    fn random_byte_frames_never_kill_the_daemon(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = poke(&bytes);
        let client = Client::connect(shared_addr());
        prop_assert!(client.is_ok(), "daemon stopped serving: {:?}", client.err());
    }

    /// Half-open connections parked mid-frame — any prefix of garbage,
    /// never closed by the client — cost exactly that connection: the
    /// idle timeout reaps each one and the daemon keeps serving.
    #[test]
    fn half_open_connections_only_cost_themselves(
        bytes in proptest::collection::vec(any::<u8>(), 0..16)
    ) {
        use std::time::Duration;

        let mut stream = TcpStream::connect(short_idle_addr()).expect("connect");
        let _ = stream.write_all(&bytes);
        // No shutdown, no further bytes: the connection idles mid-frame
        // until the server's timeout reaps it.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        let mut reply = Vec::new();
        // EOF is a graceful close; a reset means the server closed with
        // our unread garbage still buffered. Both count as hanging up —
        // only a client-side timeout would mean the connection leaked.
        let hung_up = match stream.read_to_end(&mut reply) {
            Ok(_) => true,
            Err(e) => !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
        };
        prop_assert!(hung_up, "server never hung up within the client timeout");

        let client = Client::connect(short_idle_addr());
        prop_assert!(client.is_ok(), "daemon stopped serving: {:?}", client.err());
    }
}
