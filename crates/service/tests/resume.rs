//! Kill-and-resume: a daemon that dies mid-job (simulated via the
//! `TWL_SERVICED_EXIT_AFTER_CHECKPOINTS` test hook) must, after a
//! restart over the same checkpoint directory, finish the job with a
//! result bit-identical to an uninterrupted run.

mod common;

use std::time::Duration;

use twl_attacks::AttackKind;
use twl_lifetime::{run_attack_cell, SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::JobKind;
use twl_service::{
    decode_result, Checkpoint, Client, JobReports, JobSpec, SubmitOutcome,
    EXIT_AFTER_CHECKPOINTS_ENV,
};
use twl_telemetry::json::Json;

#[test]
fn killed_daemon_resumes_bit_identical() {
    let dir = common::temp_dir("resume");
    let dir_str = dir.to_string_lossy().into_owned();
    let spec = JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(128, 2_000, 8),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
        benchmarks: vec![],
        fault: None,
    };

    // Interval of one device write => a checkpoint after every cell;
    // the hook kills the process right after the second one.
    let flags = [
        "--workers",
        "1",
        "--checkpoint-dir",
        dir_str.as_str(),
        "--checkpoint-interval-writes",
        "1",
    ];
    let mut daemon = common::Daemon::spawn(&flags, &[(EXIT_AFTER_CHECKPOINTS_ENV, "2".to_owned())]);
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let job_id = match client.submit(&spec) {
        Ok(SubmitOutcome::Accepted(id)) => id,
        Ok(SubmitOutcome::Rejected { reason, .. }) => panic!("submit rejected: {reason}"),
        // The daemon may die before the submit reply escapes; the
        // first job id is deterministic and the worker's running
        // checkpoint has already persisted the spec.
        Err(_) => 1,
    };
    let status = daemon.wait_exit(Duration::from_secs(120));
    assert_eq!(status.code(), Some(83), "expected the simulated crash exit");
    drop(client);

    // The crash left a partial checkpoint behind: some cells done,
    // not all, and the job is non-terminal.
    let text = std::fs::read_to_string(dir.join(format!("job-{job_id}.json")))
        .expect("checkpoint file after crash");
    let partial = Checkpoint::from_json(&Json::parse(&text).expect("checkpoint JSON"))
        .expect("decode checkpoint");
    assert_eq!(partial.job_id, job_id);
    assert_eq!(partial.spec, spec);
    assert!(
        !partial.completed_cells.is_empty() && partial.completed_cells.len() < spec.cell_count(),
        "expected a partial checkpoint, got {}/{} cells",
        partial.completed_cells.len(),
        spec.cell_count()
    );
    assert!(partial.result.is_none());

    // Restart (no crash hook): the job is restored, the missing cells
    // re-run, and the assembled result is bit-identical to a direct
    // uninterrupted run.
    let mut daemon2 = common::Daemon::spawn(&flags, &[]);
    let mut client2 = Client::connect(&daemon2.addr).expect("reconnect");
    let result = client2.wait(job_id, |_| {}).expect("resumed job result");
    let JobReports::Lifetime(resumed) = decode_result(&result).expect("decode result") else {
        panic!("attack matrix returned non-lifetime reports");
    };

    let mut direct = Vec::new();
    for scheme in &spec.schemes {
        for attack in &spec.attacks {
            direct.push(run_attack_cell(&spec.pcm, *scheme, attack, &spec.limits));
        }
    }
    assert_eq!(
        resumed, direct,
        "resumed result differs from the uninterrupted run"
    );

    client2.shutdown().expect("shutdown");
    let status = daemon2.wait_exit(Duration::from_secs(60));
    assert!(status.success(), "daemon exited with {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}
