#![warn(missing_docs)]

//! Prior wear-leveling schemes the DAC'17 paper compares against.
//!
//! All schemes implement [`twl_wl_core::WearLeveler`] and run on the same
//! [`twl_pcm::PcmDevice`] substrate as TWL:
//!
//! * [`SecurityRefresh`] — Seong, Woo & Lee (ISCA 2010): dynamically
//!   randomized address mapping via per-region XOR keys with gradual
//!   two-level refresh. The paper's representative of *traditional*
//!   (PV-unaware) wear leveling ("SR" in Figs. 6, 8, 9).
//! * [`BloomFilterWl`] — Yun, Lee & Yoo (DATE 2012): PV-aware
//!   prediction-based leveling using counting Bloom filters and dynamic
//!   thresholds to detect hot/cold pages ("BWL" in Figs. 6, 8, 9); the
//!   paper's state-of-the-art PV-aware victim of the inconsistent-write
//!   attack.
//! * [`WearRateLeveling`] — Dong et al. (DAC 2011): the canonical
//!   prediction–swap–running flow of Fig. 1, with a full write-number
//!   table and epoch-end sorting. Used to illustrate the attack (§3.2).
//! * [`StartGap`] — Qureshi et al. (MICRO 2009): gap rotation plus static
//!   Feistel address randomization. Not in the paper's evaluation but the
//!   ancestor of SR and the source of TWL's RNG; included for
//!   completeness.
//! * [`OnDemandPagePairing`] — Asadinia et al. (DAC 2014), the paper's
//!   reference \[1\]: graceful degradation by re-pairing failed pages onto
//!   healthy hosts on demand.
//! * [`CountingBloomFilter`] / [`BloomFilter`] — the probabilistic
//!   membership substrate BWL is built on.
//!
//! # Examples
//!
//! ```
//! use twl_baselines::{SecurityRefresh, SrConfig};
//! use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
//! use twl_wl_core::WearLeveler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pcm = PcmConfig::builder().pages(256).mean_endurance(100_000).seed(1).build()?;
//! let mut device = PcmDevice::new(&pcm);
//! let mut sr = SecurityRefresh::new(&SrConfig::for_pages(256)?, 256)?;
//! sr.write(LogicalPageAddr::new(3), &mut device)?;
//! # Ok(())
//! # }
//! ```

mod adaptive;
mod bloom;
mod bwl;
mod od3p;
mod security_refresh;
mod start_gap;
mod wrl;

pub use adaptive::AdaptiveSecurityRefresh;
pub use bloom::{BloomFilter, CountingBloomFilter};
pub use bwl::{BloomFilterWl, BwlConfig};
pub use od3p::{Od3pConfig, OnDemandPagePairing};
pub use security_refresh::{SecurityRefresh, SrConfig, SrError};
pub use start_gap::{StartGap, StartGapConfig};
pub use wrl::{WearRateLeveling, WrlConfig};
