//! Bloom-filter-based dynamic wear leveling (Yun, Lee & Yoo, DATE 2012).
//!
//! "BWL" in the paper's figures — the state-of-the-art PV-aware scheme
//! and the headline victim of the inconsistent-write attack (it "breaks
//! down in 98 seconds", §5.2).
//!
//! Instead of a full write-number table, BWL detects hot pages with a
//! counting Bloom filter and a *dynamic threshold*, and keeps a bounded
//! hot list plus a recency sample for cold candidates. At every epoch
//! boundary it remaps detected-hot logical pages onto the frames with
//! the most remaining endurance and detected-cold pages onto the weakest
//! frames — the same prediction-consistency assumption as wear-rate
//! leveling, hence the same vulnerability, but with two Bloom-filter
//! accesses and a list access *on every write* (which is why its
//! performance overhead is the largest in Fig. 9).

use crate::{BloomFilter, CountingBloomFilter};
use serde::{Deserialize, Serialize};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_wl_core::{BatchOutcome, ReadOutcome, RemappingTable, WearLeveler, WlStats, WriteOutcome};

/// A persistent hot-list entry: survives epochs until it misses the
/// (halved) threshold three times in a row, which damps boundary
/// flicker and the migration churn it would cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct HotEntry {
    la: LogicalPageAddr,
    estimate: u64,
    misses: u8,
}

/// Configuration of [`BloomFilterWl`].
///
/// # Examples
///
/// ```
/// use twl_baselines::BwlConfig;
///
/// let config = BwlConfig::for_pages(1024);
/// assert!(config.epoch_writes > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BwlConfig {
    /// Writes per detection epoch (filters reset at the boundary).
    pub epoch_writes: u64,
    /// Counting-Bloom-filter counters.
    pub cbf_counters: usize,
    /// Bits of the written-membership Bloom filter.
    pub membership_bits: usize,
    /// Epochs between membership-filter resets. A window longer than
    /// one epoch keeps a stable footprint's tail classified as written,
    /// so parked cold pages are not churned every epoch.
    pub membership_epochs: u64,
    /// Counting-Bloom-filter hash functions.
    pub cbf_hashes: u32,
    /// Initial hot-detection threshold (estimated writes within an
    /// epoch); adapts dynamically.
    pub initial_hot_threshold: u64,
    /// Hot list / cold sample capacity.
    pub max_tracked: usize,
    /// Engine cycles per Bloom-filter or list access. Every write costs
    /// three accesses (two filters + the cold-hot list, per §5.3); each
    /// access is a multi-hash probe / associative search, i.e. several
    /// dependent SRAM reads. The default is calibrated so BWL's Fig. 9
    /// overhead dominates the other schemes' as in the paper.
    pub access_latency: u64,
    /// Enable the band-repair pass: each epoch, decisively-warm
    /// squatters on the weakest-frame band are swapped out against the
    /// coldest mid-zone residents. Roughly doubles BWL's lifetime on
    /// smooth zipf workloads (bringing it to the paper's Fig. 8 level)
    /// while leaving the inconsistent-write vulnerability intact; the
    /// `ablation` bench quantifies both. On by default.
    pub band_repair: bool,
}

impl BwlConfig {
    /// Defaults scaled to a device of `pages` pages.
    #[must_use]
    pub fn for_pages(pages: u64) -> Self {
        Self {
            epoch_writes: (pages * 8).max(512),
            cbf_counters: (pages as usize * 4).max(1024),
            membership_bits: (pages as usize * 8).max(2048),
            membership_epochs: 2,
            cbf_hashes: 4,
            initial_hot_threshold: 8,
            max_tracked: (pages as usize / 4).max(4),
            access_latency: 30,
            band_repair: true,
        }
    }

    /// The naive variant without the band-repair pass (prediction
    /// trusting only; ~half the benign lifetime).
    #[must_use]
    pub fn naive(pages: u64) -> Self {
        Self {
            band_repair: false,
            ..Self::for_pages(pages)
        }
    }
}

/// Epoch-boundary scratch and the incrementally-maintained frame
/// ranking, reused across epochs.
///
/// Everything here is re-derivable from the device and the filters, so
/// it is never serialized, and a default (empty) scratch is always
/// valid — the next epoch simply rebuilds the ranking in full.
#[derive(Debug, Clone, Default)]
struct EpochScratch {
    /// Per-slot remaining endurance as of the last ranking.
    prev_rem: Vec<u64>,
    /// Fresh per-slot remaining endurance (scratch for the diff).
    rem: Vec<u64>,
    /// Managed frames ordered by (remaining desc, index asc).
    frames: Vec<u32>,
    /// Rank of every managed frame within `frames`.
    frame_rank: Vec<u32>,
    /// Changed frames re-keyed for the sorted merge.
    dirty: Vec<(u64, u32)>,
    /// Merge output, swapped with `frames`.
    merge: Vec<u32>,
    /// Bitmap of logical pages currently on the hot list.
    hot_logical: Vec<bool>,
    /// Free migration targets within a band.
    free: Vec<u32>,
}

impl EpochScratch {
    /// Rebuilds `frames`/`frame_rank` so the `n` managed frames are
    /// ordered by (remaining endurance desc, index asc) — exactly the
    /// order a stable descending-remaining sort over index-ordered
    /// frames produces.
    ///
    /// The ranking is maintained incrementally: frames whose remaining
    /// endurance is unchanged since the last call keep their relative
    /// order (their sort keys are unchanged), so only the changed
    /// frames are re-sorted (O(d log d)) and merged back in one pass
    /// (O(n)). A narrow attack dirties a handful of frames per epoch;
    /// a full O(n log n) rebuild happens only on the first call or
    /// when a large fraction of the device changed.
    fn rank(&mut self, device: &PcmDevice, n: usize) {
        device.remaining_table(&mut self.rem);
        let rem = &self.rem[..n];
        let mut rebuild = self.prev_rem.is_empty();
        if !rebuild {
            let prev = &self.prev_rem[..n];
            self.dirty.clear();
            self.dirty.extend(
                (0..n)
                    .filter(|&pa| rem[pa] != prev[pa])
                    .map(|pa| (rem[pa], pa as u32)),
            );
            rebuild = self.dirty.len() * 4 > n;
        }
        if rebuild {
            self.frames.clear();
            self.frames.extend(0..n as u32);
            self.frames
                .sort_unstable_by_key(|&pa| (std::cmp::Reverse(rem[pa as usize]), pa));
        } else if !self.dirty.is_empty() {
            self.dirty
                .sort_unstable_by_key(|&(r, pa)| (std::cmp::Reverse(r), pa));
            self.merge.clear();
            let prev = &self.prev_rem[..n];
            let mut di = 0;
            for &pa in &self.frames {
                if rem[pa as usize] != prev[pa as usize] {
                    continue; // re-enters in key order via `dirty`
                }
                let key = (std::cmp::Reverse(rem[pa as usize]), pa);
                while di < self.dirty.len() {
                    let (dr, dpa) = self.dirty[di];
                    if (std::cmp::Reverse(dr), dpa) < key {
                        self.merge.push(dpa);
                        di += 1;
                    } else {
                        break;
                    }
                }
                self.merge.push(pa);
            }
            for &(_, dpa) in &self.dirty[di..] {
                self.merge.push(dpa);
            }
            std::mem::swap(&mut self.frames, &mut self.merge);
        }
        std::mem::swap(&mut self.prev_rem, &mut self.rem);
        self.frame_rank.clear();
        self.frame_rank.resize(n, 0);
        for (rank, &pa) in self.frames.iter().enumerate() {
            self.frame_rank[pa as usize] = rank as u32;
        }
    }
}

/// Bloom-filter wear leveling (see the module docs above).
#[derive(Debug, Clone)]
pub struct BloomFilterWl {
    config: BwlConfig,
    rt: RemappingTable,
    cbf: CountingBloomFilter,
    /// Membership filter over addresses written this epoch — Yun's
    /// second Bloom filter. Cold candidacy requires *written but below
    /// threshold*: an address nobody writes needs no re-parking, and
    /// treating untouched pages as cold would let an attacker hide its
    /// victims among them.
    written: BloomFilter,
    hot_list: Vec<HotEntry>,
    /// Rotating cold-scan pointer: at each epoch boundary the scheme
    /// walks the logical space from here, querying the filter for
    /// addresses whose estimate stayed below the cold threshold. A
    /// filter query per scanned address is cheap hardware; the pointer
    /// rotates so all pages are eventually considered.
    cold_scan: u64,
    hot_threshold: u64,
    epoch_write_count: u64,
    epochs: u64,
    /// (hot promotions, cold parks, band repairs) — cumulative, for
    /// diagnostics and tests.
    action_counts: (u64, u64, u64),
    /// Cold-candidate count at the last epoch boundary (diagnostics).
    last_cold_len: usize,
    stats: WlStats,
    /// Epoch-boundary scratch + incremental frame-rank cache.
    scratch: EpochScratch,
}

impl BloomFilterWl {
    /// Creates the scheme over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`, the epoch length is zero, or
    /// `max_tracked * 2 > pages`.
    #[must_use]
    pub fn new(config: &BwlConfig, pages: u64) -> Self {
        assert!(pages > 0, "device must have pages");
        assert!(config.epoch_writes > 0, "epoch must be positive");
        assert!(
            config.max_tracked as u64 * 2 <= pages,
            "hot and cold tracking must not cover the whole device"
        );
        Self {
            config: config.clone(),
            rt: RemappingTable::identity(pages),
            cbf: CountingBloomFilter::new(config.cbf_counters, config.cbf_hashes),
            written: BloomFilter::new(config.membership_bits, config.cbf_hashes),
            hot_list: Vec::with_capacity(config.max_tracked),
            cold_scan: 0,
            hot_threshold: config.initial_hot_threshold,
            epoch_write_count: 0,
            epochs: 0,
            action_counts: (0, 0, 0),
            last_cold_len: 0,
            stats: WlStats::new(),
            scratch: EpochScratch::default(),
        }
    }

    /// Cumulative (hot promotions, cold parks, band repairs).
    #[must_use]
    pub fn action_counts(&self) -> (u64, u64, u64) {
        self.action_counts
    }

    /// Cold-candidate count at the last epoch boundary.
    #[must_use]
    pub fn last_cold_len(&self) -> usize {
        self.last_cold_len
    }

    /// Diagnostic snapshot for a logical page: (epoch estimate,
    /// written-in-window, in hot list).
    #[must_use]
    pub fn classify(&self, la: LogicalPageAddr) -> (u64, bool, bool) {
        (
            self.cbf.estimate(la.index()),
            self.written.contains(la.index()),
            self.hot_list.iter().any(|e| e.la == la),
        )
    }

    /// Number of completed detection epochs.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Current (dynamic) hot threshold.
    #[must_use]
    pub fn hot_threshold(&self) -> u64 {
        self.hot_threshold
    }

    /// The live remapping table (for invariant tests).
    #[must_use]
    pub fn remapping_table(&self) -> &RemappingTable {
        &self.rt
    }

    /// Epoch boundary: remap hot→strong and cold→weak, adapt the
    /// threshold, reset the filters. Returns `(migrations, blocking)`.
    fn epoch_swap(&mut self, device: &mut PcmDevice) -> Result<(u32, u64), PcmError> {
        self.epochs += 1;
        let migrate = device.config().timing.migrate_latency();
        let mut migrations = 0u32;
        let mut blocking = 0u64;

        // Refresh the persistent hot list: entries that fell below half
        // the threshold three epochs in a row retire; the rest update
        // their estimates.
        let retire_below = (self.hot_threshold / 2).max(2);
        for entry in &mut self.hot_list {
            let current = self.cbf.estimate(entry.la.index());
            if current >= retire_below {
                entry.estimate = current;
                entry.misses = 0;
            } else {
                entry.misses += 1;
            }
        }
        self.hot_list.retain(|e| e.misses < 3);

        // Rank frames by remaining life: (remaining desc, index asc),
        // maintained incrementally across epochs (see
        // `EpochScratch::rank`).
        let pages = self.rt.len() as usize;
        self.scratch.rank(device, pages);
        let half = pages / 2;

        // Hot pages (sorted by estimated heat) into the strongest-frame
        // band. Hysteresis: a hot page already anywhere in the strong
        // half stays put — re-ranking inside it would be pure churn.
        self.hot_list
            .sort_by_key(|e| (std::cmp::Reverse(e.estimate), e.la));
        let hot: Vec<LogicalPageAddr> = self.hot_list.iter().map(|e| e.la).collect();
        self.scratch.hot_logical.clear();
        self.scratch.hot_logical.resize(pages, false);
        for &la in &hot {
            self.scratch.hot_logical[la.as_usize()] = true;
        }
        {
            let band = &self.scratch.frames[..hot.len().min(half)];
            self.scratch.free.clear();
            for &pa in band {
                let resident = self.rt.reverse(PhysicalPageAddr::new(u64::from(pa)));
                if !self.scratch.hot_logical[resident.as_usize()] {
                    self.scratch.free.push(pa);
                }
            }
            self.scratch.free.reverse(); // pop strongest first
            for &la in &hot {
                let current = self.rt.translate(la);
                if self.scratch.frame_rank[current.as_usize()] < half as u32 {
                    continue;
                }
                let Some(target) = self.scratch.free.pop() else {
                    break;
                };
                let target = PhysicalPageAddr::new(u64::from(target));
                device.write_page(current)?;
                device.write_page(target)?;
                self.rt.swap_physical(current, target);
                migrations += 2;
                blocking += 2 * migrate;
                self.action_counts.0 += 1;
            }
        }

        // Cold candidates: walk the logical space from the rotating
        // scan pointer and keep addresses whose epoch estimate stayed
        // well below the mean per-page write rate — these go onto the
        // weakest frames. (This cold→weak parking is exactly what the
        // inconsistent-write attacker farms.)
        let pages = self.rt.len();
        let cold_threshold = (self.config.epoch_writes / pages / 2).max(2);
        let mut cold: Vec<(LogicalPageAddr, u64)> = Vec::new();
        // Two contiguous ranges instead of a modulo per step; the scan
        // still starts at the rotating pointer and covers every page.
        // The membership test and the estimate share one fused filter
        // probe (identical hash values, identical short-circuit).
        for la in (self.cold_scan..pages).chain(0..self.cold_scan) {
            if self.scratch.hot_logical[la as usize] {
                continue;
            }
            let Some(est) = self.cbf.estimate_if_written(&self.written, la) else {
                continue;
            };
            if est <= cold_threshold {
                cold.push((LogicalPageAddr::new(la), est));
            }
        }
        // Coldest first, so the least-written page lands on the weakest
        // frame. (est, la) is a total order, so the unstable sort is
        // deterministic.
        cold.sort_unstable_by_key(|&(la, est)| (est, la));
        cold.truncate(self.config.max_tracked);
        self.last_cold_len = cold.len();
        // Only *deep*-cold pages (at most one observed write) are worth
        // actively parking: anything warmer flickers across the cold
        // threshold and would churn the weakest frames with re-parking
        // writes. The full cold list still protects parked residents.
        let deep_cold: Vec<LogicalPageAddr> = cold
            .iter()
            .copied()
            .filter_map(|(la, est)| (est <= 1).then_some(la))
            .collect();
        let cold: Vec<LogicalPageAddr> = cold.into_iter().map(|(la, _)| la).collect();
        self.cold_scan = (self.cold_scan + 1) % pages;
        // Cold pages into the weakest-frame band (cold -> weakest is
        // the "vice versa" of Fig. 1, and precisely what the
        // inconsistent-write attacker farms). A cold page already inside
        // the band stays put. A frame is a free target unless its
        // resident is itself evidence-backed cold
        // (written within the window, low count): those stay. An
        // untouched resident is evicted — the PV-aware flow prefers
        // *observed*-cold pages on the weakest frames (Fig. 1's
        // "vice versa").
        {
            let frame_count = self.scratch.frames.len();
            let band = &self.scratch.frames[frame_count - deep_cold.len().max(1)..];
            self.scratch.free.clear();
            for &pa in band {
                let resident = self.rt.reverse(PhysicalPageAddr::new(u64::from(pa)));
                let parked_cold = self
                    .cbf
                    .estimate_if_written(&self.written, resident.index())
                    .is_some_and(|est| est <= cold_threshold);
                if !parked_cold {
                    self.scratch.free.push(pa);
                }
            }
            let band_start_rank = (frame_count - band.len()) as u32;
            // band is sorted strongest-to-weakest; pop weakest first.
            for &la in &deep_cold {
                let current = self.rt.translate(la);
                if self.scratch.frame_rank[current.as_usize()] >= band_start_rank {
                    continue;
                }
                let Some(target) = self.scratch.free.pop() else {
                    break;
                };
                let target = PhysicalPageAddr::new(u64::from(target));
                device.write_page(current)?;
                device.write_page(target)?;
                self.rt.swap_physical(current, target);
                migrations += 2;
                blocking += 2 * migrate;
                self.action_counts.1 += 1;
            }
        }

        // Band repair (optional extension, see `BwlConfig::band_repair`):
        // a warm page can land on a weakest-band frame as
        // the evictee of a hot promotion (the swap must put it
        // somewhere). Such squatters grind down exactly the frames the
        // scheme most needs to protect, so each epoch they are swapped
        // out against the coldest residents of the mid zone (between
        // the halfway mark and the band) — there is always someone
        // colder than a decisively-warm squatter out there.
        if self.config.band_repair {
            let frame_count = self.scratch.frames.len();
            let band_size = cold
                .len()
                .max(self.config.max_tracked / 4)
                .min(frame_count / 4)
                .max(1);
            let band_start = frame_count - band_size;
            // Mid-zone replacements are only needed once a squatter is
            // found, and most epochs have none — build them lazily so
            // the common case skips thousands of filter estimates. The
            // estimates are pure reads, so deferring them changes
            // nothing observable.
            let mut replacements: Option<Vec<(u64, PhysicalPageAddr)>> = None;
            for &frame in self.scratch.frames[band_start..].iter().rev() {
                let frame = PhysicalPageAddr::new(u64::from(frame));
                let resident = self.rt.reverse(frame);
                // Decisively warm only (2x the cold threshold): a
                // parked cold page's Poisson flicker must not trigger
                // repair churn on exactly the weakest frames. The
                // membership test and estimate fuse into one probe.
                let Some(resident_est) = self
                    .cbf
                    .estimate_if_written(&self.written, resident.index())
                else {
                    continue;
                };
                if resident_est <= 2 * cold_threshold {
                    continue;
                }
                let replacements = replacements.get_or_insert_with(|| {
                    // Mid-zone residents, coldest last (so pop()
                    // yields them). (est, pa) is a total order, so the
                    // unstable sort is deterministic.
                    let mut r: Vec<(u64, PhysicalPageAddr)> = self.scratch.frames[half..band_start]
                        .iter()
                        .map(|&pa| {
                            let pa = PhysicalPageAddr::new(u64::from(pa));
                            (self.cbf.estimate(self.rt.reverse(pa).index()), pa)
                        })
                        .collect();
                    r.sort_unstable_by_key(|&(est, pa)| (std::cmp::Reverse(est), pa));
                    r
                });
                // Only repair when the replacement is clearly colder,
                // otherwise the swap would be churn.
                let Some(&(est, from)) = replacements.last() else {
                    break;
                };
                if est.saturating_mul(2) > resident_est {
                    break;
                }
                replacements.pop();
                device.write_page(from)?;
                device.write_page(frame)?;
                self.rt.swap_physical(from, frame);
                migrations += 2;
                blocking += 2 * migrate;
                self.action_counts.2 += 1;
            }
        }

        // Dynamic threshold adaptation: keep the hot list busy but not
        // overflowing.
        if self.hot_list.len() >= self.config.max_tracked {
            self.hot_threshold = self.hot_threshold.saturating_mul(2);
        } else if self.hot_list.len() < self.config.max_tracked / 4 {
            self.hot_threshold = (self.hot_threshold / 2).max(2);
        }

        self.cbf.clear();
        if self.epochs.is_multiple_of(self.config.membership_epochs) {
            self.written.clear();
        }
        Ok((migrations, blocking))
    }
}

impl WearLeveler for BloomFilterWl {
    fn name(&self) -> &str {
        "BWL"
    }

    fn page_count(&self) -> u64 {
        self.rt.len()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.rt.translate(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // Strictly before the epoch boundary every logical write is a
        // single device write, so the only unbounded wear source (the
        // epoch migration burst) is excluded by stopping one write
        // short of the boundary. A batch that includes the boundary
        // write is capped at that single write, which is the same
        // granularity the per-write reference loop observes.
        let to_epoch = self.config.epoch_writes - self.epoch_write_count;
        wear_margin
            .saturating_sub(1)
            .min(to_epoch.saturating_sub(1))
            .max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        // Two Bloom filters + cold-hot list, every write (§5.3).
        let engine_cycles = 3 * self.config.access_latency;
        let mut device_writes = 1u32;
        let mut blocking_cycles = 0u64;
        let mut swapped = false;

        let pa = self.rt.translate(la);
        device.write_page(pa)?;

        // Detection path.
        self.written.insert(la.index());
        let est = self.cbf.insert(la.index());
        if est >= self.hot_threshold
            && self.hot_list.len() < self.config.max_tracked
            && !self.hot_list.iter().any(|e| e.la == la)
        {
            self.hot_list.push(HotEntry {
                la,
                estimate: est,
                misses: 0,
            });
        }
        self.epoch_write_count += 1;
        if self.epoch_write_count >= self.config.epoch_writes {
            self.epoch_write_count = 0;
            let (migrations, blocking) = self.epoch_swap(device)?;
            device_writes += migrations;
            blocking_cycles += blocking;
            swapped = migrations > 0;
            twl_telemetry::counter!("twl.baselines.bwl.epochs").inc();
            twl_telemetry::counter!("twl.baselines.bwl.migrations").add(u64::from(migrations));
        }

        let outcome = WriteOutcome {
            pa,
            device_writes,
            swapped,
            engine_cycles,
            blocking_cycles,
        };
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        let mut batch = BatchOutcome::default();
        let mut remaining = n;
        while remaining > 0 {
            // Everything strictly before the epoch boundary is a plain
            // write plus detection-state updates that all have exact
            // O(k) bulk forms: the membership insert is idempotent, the
            // CBF collapses via `insert_n`, and the hot-list push
            // condition is monotone in the estimate, so checking it once
            // at the segment end selects the same pages the per-write
            // path would (the list itself cannot change mid-segment).
            let to_epoch = self.config.epoch_writes - self.epoch_write_count;
            let plain = remaining.min(to_epoch - 1);
            if plain > 0 {
                let pa = self.rt.translate(la);
                let bulk = device.write_page_n(pa, plain);
                if bulk.landed > 0 {
                    self.written.insert(la.index());
                    let est = self.cbf.insert_n(la.index(), bulk.landed);
                    if est >= self.hot_threshold
                        && self.hot_list.len() < self.config.max_tracked
                        && !self.hot_list.iter().any(|e| e.la == la)
                    {
                        self.hot_list.push(HotEntry {
                            la,
                            estimate: est,
                            misses: 0,
                        });
                    }
                    self.epoch_write_count += bulk.landed;
                    let outcome = WriteOutcome {
                        pa,
                        device_writes: 1,
                        swapped: false,
                        engine_cycles: 3 * self.config.access_latency,
                        blocking_cycles: 0,
                    };
                    self.stats.record_write_n(&outcome, bulk.landed);
                    batch.serviced += bulk.landed;
                    batch.last = Some(outcome);
                }
                if let Some(e) = bulk.failure {
                    batch.failure = Some(e);
                    return batch;
                }
                remaining -= plain;
                if remaining == 0 {
                    break;
                }
            }
            // The epoch-closing write runs through the scalar path.
            match self.write(la, device) {
                Ok(outcome) => {
                    batch.serviced += 1;
                    batch.last = Some(outcome);
                    remaining -= 1;
                }
                Err(e) => {
                    batch.failure = Some(e);
                    return batch;
                }
            }
        }
        batch
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.rt.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.access_latency,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_rng::{SimRng, Xoshiro256StarStar};

    fn setup(pages: u64) -> (PcmDevice, BloomFilterWl) {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(1_000_000)
            .seed(17)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        let bwl = BloomFilterWl::new(&BwlConfig::for_pages(pages), pages);
        (device, bwl)
    }

    #[test]
    fn hot_page_is_detected_and_promoted() {
        let (mut device, mut bwl) = setup(64);
        let hot = LogicalPageAddr::new(5);
        let epoch = bwl.config.epoch_writes;
        for i in 0..epoch {
            let la = if i % 2 == 0 {
                hot
            } else {
                LogicalPageAddr::new(i % 64)
            };
            bwl.write(la, &mut device).unwrap();
        }
        assert_eq!(bwl.epochs(), 1);
        // The hot page must sit inside the strong band (top max_tracked
        // frames by remaining endurance).
        let mut frames: Vec<PhysicalPageAddr> = (0..64).map(PhysicalPageAddr::new).collect();
        frames.sort_by_key(|&pa| std::cmp::Reverse(device.remaining(pa)));
        let rank = frames
            .iter()
            .position(|&pa| pa == bwl.translate(hot))
            .unwrap();
        // With the strong-half hysteresis, "promoted" means anywhere in
        // the stronger half of the remaining-endurance ranking.
        assert!(
            rank < 32,
            "hottest page must sit in the strong half, got rank {rank}"
        );
    }

    #[test]
    fn cold_pages_park_on_weak_frames() {
        let (mut device, mut bwl) = setup(64);
        let epoch = bwl.config.epoch_writes;
        // Touch LA60..63 exactly once early (cold), then hammer others.
        for i in 0..4u64 {
            bwl.write(LogicalPageAddr::new(60 + i), &mut device)
                .unwrap();
        }
        for i in 0..epoch - 4 {
            bwl.write(LogicalPageAddr::new(i % 16), &mut device)
                .unwrap();
        }
        assert_eq!(bwl.epochs(), 1);
        // The weakest frames should now host low-traffic pages.
        let mut frames: Vec<PhysicalPageAddr> = (0..64).map(PhysicalPageAddr::new).collect();
        frames.sort_by_key(|&pa| device.remaining(pa));
        let weakest_resident = bwl.remapping_table().reverse(frames[0]);
        assert!(
            weakest_resident.index() >= 16,
            "a hammered page must not sit on the weakest frame, got {weakest_resident}"
        );
    }

    #[test]
    fn threshold_adapts_upward_under_broad_heat() {
        let (mut device, mut bwl) = setup(256);
        let initial = bwl.hot_threshold();
        // Hammer more distinct pages per epoch than the hot list can
        // hold, so it saturates and the threshold doubles.
        let broad = bwl.config.max_tracked as u64 * 2;
        for _ in 0..4u64 {
            let epoch = bwl.config.epoch_writes;
            for i in 0..epoch {
                bwl.write(LogicalPageAddr::new(i % broad), &mut device)
                    .unwrap();
            }
        }
        assert!(bwl.hot_threshold() > initial, "threshold must rise");
    }

    #[test]
    fn per_write_engine_cost_is_constant_and_high() {
        let (mut device, mut bwl) = setup(64);
        let out = bwl.write(LogicalPageAddr::new(0), &mut device).unwrap();
        assert_eq!(
            out.engine_cycles, 90,
            "two filters + list at 30 cycles each"
        );
    }

    #[test]
    fn write_batch_matches_sequential_writes() {
        let (mut dev_bulk, mut bulk) = setup(64);
        let (mut dev_seq, mut seq) = setup(64);
        // Mix addresses so the hot list and epoch machinery engage, with
        // batch sizes straddling the 512-write epoch.
        for (i, &n) in [3u64, 500, 9, 512, 1, 700, 64].iter().enumerate() {
            let la = LogicalPageAddr::new((i % 4) as u64);
            let batch = bulk.write_batch(la, n, &mut dev_bulk);
            assert_eq!(batch.serviced, n);
            let mut last = None;
            for _ in 0..n {
                last = Some(seq.write(la, &mut dev_seq).unwrap());
            }
            assert_eq!(batch.last, last, "n = {n}");
        }
        assert_eq!(bulk.stats(), seq.stats());
        assert_eq!(bulk.epochs(), seq.epochs());
        assert_eq!(bulk.hot_threshold(), seq.hot_threshold());
        assert_eq!(bulk.remapping_table(), seq.remapping_table());
        assert_eq!(dev_bulk.wear_counters(), dev_seq.wear_counters());
        assert!(bulk.epochs() >= 3, "the stress actually crossed epochs");
    }

    #[test]
    fn mapping_stays_bijective_under_random_traffic() {
        let (mut device, mut bwl) = setup(128);
        let mut rng = Xoshiro256StarStar::seed_from(3);
        for _ in 0..20_000 {
            bwl.write(LogicalPageAddr::new(rng.next_bounded(128)), &mut device)
                .unwrap();
        }
        assert!(bwl.remapping_table().is_bijective());
        assert_eq!(bwl.stats().device_writes, device.total_writes());
    }
}
