//! Start-Gap wear leveling (Qureshi et al., MICRO 2009).
//!
//! The ancestor of the randomized-remapping family: one spare frame (the
//! *gap*) rotates through the address space, shifting every logical page
//! by one frame per full rotation, on top of a static Feistel address
//! randomization. Not part of the DAC'17 evaluation, but included as the
//! origin of both Security Refresh's design and TWL's Feistel RNG, and
//! as an extra PV-unaware baseline for the benches.

use serde::{Deserialize, Serialize};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_rng::FeistelPermutation;
use twl_wl_core::{BatchOutcome, ReadOutcome, WearLeveler, WlStats, WriteOutcome};

/// Configuration of [`StartGap`].
///
/// # Examples
///
/// ```
/// use twl_baselines::StartGapConfig;
///
/// let config = StartGapConfig::default();
/// assert_eq!(config.gap_interval, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGapConfig {
    /// Writes between gap movements (the paper's ψ = 100).
    pub gap_interval: u64,
    /// Key for the static Feistel randomization.
    pub seed: u64,
    /// Disable the static randomization (ablation: plain rotation only).
    pub randomize: bool,
    /// Engine cycles per request for gap/start arithmetic.
    pub remap_latency: u64,
}

impl Default for StartGapConfig {
    fn default() -> Self {
        Self {
            gap_interval: 100,
            seed: 0x57A7_16AF,
            randomize: true,
            remap_latency: 2,
        }
    }
}

/// Start-Gap wear leveling (see the module docs above).
///
/// Manages `frames − 1` logical pages over `frames` physical frames; the
/// remaining frame is the moving gap.
///
/// Start-Gap moves a hammered address to a new frame only once per full
/// gap rotation (`frames x gap_interval` writes), so a repeat attack
/// defeats it whenever that round exceeds the page endurance — a known
/// limitation of the original design (its successors, Security Refresh
/// and the PV-aware schemes, exist in part to fix it), reproduced
/// faithfully here.
#[derive(Debug, Clone)]
pub struct StartGap {
    config: StartGapConfig,
    /// frame_of[l] = current physical frame of logical page l.
    frame_of: Vec<u64>,
    /// resident[f] = logical page currently in frame f (None = the gap).
    resident: Vec<Option<u64>>,
    gap: u64,
    perm: Option<FeistelPermutation>,
    writes: u64,
    gap_moves: u64,
    stats: WlStats,
}

impl StartGap {
    /// Creates the scheme over a device of `frames` physical frames
    /// (managing `frames − 1` logical pages).
    ///
    /// # Panics
    ///
    /// Panics if `frames < 2` or `gap_interval == 0`.
    #[must_use]
    pub fn new(config: &StartGapConfig, frames: u64) -> Self {
        assert!(
            frames >= 2,
            "start-gap needs at least one page plus the gap"
        );
        assert!(config.gap_interval > 0, "gap interval must be positive");
        let logical = frames - 1;
        // Static randomization domain: the next power of two ≥ logical;
        // out-of-range values cycle-walk back into range.
        let bits = {
            let b = 64 - (logical - 1).leading_zeros().min(63);
            // Feistel needs an even width ≥ 2.
            let b = b.max(2);
            if b.is_multiple_of(2) {
                b
            } else {
                b + 1
            }
        };
        let perm = config
            .randomize
            .then(|| FeistelPermutation::new(bits, config.seed, 4));
        let mut scheme = Self {
            config: *config,
            frame_of: vec![0; logical as usize],
            resident: vec![None; frames as usize],
            gap: frames - 1,
            perm,

            writes: 0,
            gap_moves: 0,
            stats: WlStats::new(),
        };
        for l in 0..logical {
            let f = scheme.randomized(l);
            scheme.frame_of[l as usize] = f;
            scheme.resident[f as usize] = Some(l);
        }
        scheme
    }

    /// Static randomization of a logical index into `[0, logical)`,
    /// via cycle-walking the Feistel permutation.
    fn randomized(&self, l: u64) -> u64 {
        let logical = self.frame_of.len() as u64;
        match &self.perm {
            None => l,
            Some(perm) => {
                let mut v = l;
                loop {
                    v = perm.permute(v);
                    if v < logical {
                        return v;
                    }
                }
            }
        }
    }

    /// Number of gap movements so far.
    #[must_use]
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Current gap frame.
    #[must_use]
    pub fn gap(&self) -> PhysicalPageAddr {
        PhysicalPageAddr::new(self.gap)
    }

    /// Moves the gap one frame backwards, migrating the displaced page.
    fn move_gap(&mut self, device: &mut PcmDevice) -> Result<u64, PcmError> {
        let frames = self.resident.len() as u64;
        let neighbor = (self.gap + frames - 1) % frames;
        if let Some(l) = self.resident[neighbor as usize] {
            device.write_page(PhysicalPageAddr::new(self.gap))?;
            self.frame_of[l as usize] = self.gap;
            self.resident[self.gap as usize] = Some(l);
        }
        self.resident[neighbor as usize] = None;
        self.gap = neighbor;
        self.gap_moves += 1;
        twl_telemetry::counter!("twl.baselines.start_gap.gap_moves").inc();
        Ok(device.config().timing.migrate_latency())
    }
}

impl WearLeveler for StartGap {
    fn name(&self) -> &str {
        "StartGap"
    }

    fn page_count(&self) -> u64 {
        self.frame_of.len() as u64
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        PhysicalPageAddr::new(self.frame_of[la.as_usize()])
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // Worst case per logical write on any one frame: the request
        // write plus the gap-rotation write landing on the same frame.
        (wear_margin.saturating_sub(1) / 2).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let mut device_writes = 1u32;
        let mut blocking_cycles = 0u64;
        let mut swapped = false;

        let pa = self.translate(la);
        device.write_page(pa)?;

        self.writes += 1;
        if self.writes.is_multiple_of(self.config.gap_interval) {
            blocking_cycles += self.move_gap(device)?;
            device_writes += 1;
            swapped = true;
        }

        let outcome = WriteOutcome {
            pa,
            device_writes,
            swapped,
            engine_cycles: self.config.remap_latency,
            blocking_cycles,
        };
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        let mut batch = BatchOutcome::default();
        let mut remaining = n;
        while remaining > 0 {
            // Between gap movements the translation is frozen, so every
            // write up to (not including) the next interval boundary is
            // a plain wear bump on the same frame.
            let to_gap = self.config.gap_interval - self.writes % self.config.gap_interval;
            let plain = remaining.min(to_gap - 1);
            if plain > 0 {
                let pa = self.translate(la);
                let bulk = device.write_page_n(pa, plain);
                self.writes += bulk.landed;
                if bulk.landed > 0 {
                    let outcome = WriteOutcome {
                        pa,
                        device_writes: 1,
                        swapped: false,
                        engine_cycles: self.config.remap_latency,
                        blocking_cycles: 0,
                    };
                    self.stats.record_write_n(&outcome, bulk.landed);
                    batch.serviced += bulk.landed;
                    batch.last = Some(outcome);
                }
                if let Some(e) = bulk.failure {
                    batch.failure = Some(e);
                    return batch;
                }
                remaining -= plain;
                if remaining == 0 {
                    break;
                }
            }
            // The gap-moving write runs through the scalar path.
            match self.write(la, device) {
                Ok(outcome) => {
                    batch.serviced += 1;
                    batch.last = Some(outcome);
                    remaining -= 1;
                }
                Err(e) => {
                    batch.failure = Some(e);
                    return batch;
                }
            }
        }
        batch
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.remap_latency,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_rng::{SimRng, Xoshiro256StarStar};

    fn setup(frames: u64) -> (PcmDevice, StartGap) {
        let pcm = PcmConfig::builder()
            .pages(frames)
            .mean_endurance(1_000_000)
            .seed(4)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        let sg = StartGap::new(&StartGapConfig::default(), frames);
        (device, sg)
    }

    #[test]
    fn initial_layout_is_consistent() {
        let (_, sg) = setup(64);
        for l in 0..63u64 {
            let f = sg.translate(LogicalPageAddr::new(l));
            assert_eq!(sg.resident[f.as_usize()], Some(l));
        }
        assert_eq!(sg.resident[sg.gap as usize], None);
    }

    #[test]
    fn gap_rotates_and_mapping_stays_consistent() {
        let (mut device, mut sg) = setup(64);
        let mut rng = Xoshiro256StarStar::seed_from(2);
        for _ in 0..20_000 {
            let la = LogicalPageAddr::new(rng.next_bounded(63));
            sg.write(la, &mut device).unwrap();
        }
        assert_eq!(sg.gap_moves(), 200);
        // Consistency: every logical page has exactly one frame, and the
        // gap frame is empty.
        let mut seen = [false; 64];
        for l in 0..63u64 {
            let f = sg.translate(LogicalPageAddr::new(l)).as_usize();
            assert!(!seen[f]);
            seen[f] = true;
        }
        assert!(!seen[sg.gap().as_usize()]);
    }

    #[test]
    fn write_batch_matches_sequential_writes() {
        let (mut dev_bulk, mut bulk) = setup(64);
        let (mut dev_seq, mut seq) = setup(64);
        let la = LogicalPageAddr::new(7);
        // Sizes straddling the 100-write gap interval.
        for &n in &[1u64, 50, 49, 100, 101, 250] {
            let batch = bulk.write_batch(la, n, &mut dev_bulk);
            assert_eq!(batch.serviced, n);
            let mut last = None;
            for _ in 0..n {
                last = Some(seq.write(la, &mut dev_seq).unwrap());
            }
            assert_eq!(batch.last, last, "n = {n}");
        }
        assert_eq!(bulk.stats(), seq.stats());
        assert_eq!(bulk.gap_moves(), seq.gap_moves());
        assert_eq!(bulk.gap(), seq.gap());
        assert_eq!(dev_bulk.wear_counters(), dev_seq.wear_counters());
        assert!(bulk.gap_moves() >= 5, "the stress actually moved the gap");
    }

    #[test]
    fn repeat_traffic_spreads_over_rotation() {
        let pcm = PcmConfig::builder()
            .pages(16)
            .mean_endurance(100_000_000)
            .seed(1)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let config = StartGapConfig {
            gap_interval: 4,
            ..StartGapConfig::default()
        };
        let mut sg = StartGap::new(&config, 16);
        let la = LogicalPageAddr::new(0);
        // One full rotation needs frames × interval writes.
        for _ in 0..16 * 4 * 4 {
            sg.write(la, &mut device).unwrap();
        }
        let touched = device.wear_counters().iter().filter(|&&w| w > 0).count();
        assert!(
            touched > 8,
            "rotation must spread a repeat attack, touched {touched}"
        );
    }
}
